//! The paper's evaluation workload at example scale: mine the WBCD-like
//! 30-attribute dataset under a total memory cap, then contrast the DARs
//! with generalized quantitative association rules (Dfn 4.4) mined over the
//! same clusters.
//!
//! Run with: `cargo run --release --example wbcd_mining`

use interval_rules::birch::BirchConfig;
use interval_rules::datagen::wbcd::wbcd_relation;
use interval_rules::mining::describe::describe_rule;
use interval_rules::mining::gqar::{mine_gqar, GqarConfig};
use interval_rules::prelude::*;

fn main() {
    let relation = wbcd_relation(20_000, 0.1, 20260707);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);

    // The paper's setup: adaptive thresholds from fully precise, 5 MB total
    // memory across the 30 per-attribute trees, 3% frequency threshold.
    let config = DarConfig {
        birch: BirchConfig {
            initial_threshold: 0.0,
            ..BirchConfig::with_total_budget(5 << 20, 30)
        },
        min_support_frac: 0.03,
        max_cliques: 10_000,
        // Calibrated Phase II leniency for this workload (see the
        // dar-bench crate and EXPERIMENTS.md).
        query: RuleQuery {
            density: DensitySpec::Auto { factor: 4.0 },
            max_antecedent: 2,
            max_consequent: 1,
            max_pair_work: 1_000_000,
            ..RuleQuery::default()
        },
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");
    let s = &result.stats;
    println!(
        "Phase I: {:?} — {} clusters ({} frequent), {} rebuilds, {:.1} MB of trees",
        s.phase1,
        s.clusters_total,
        s.clusters_frequent,
        s.forest.total_rebuilds(),
        s.forest.total_memory_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "Phase II: {:?} — {} edges, {} non-trivial cliques, {} DARs\n",
        s.phase2, s.graph_edges, s.nontrivial_cliques, s.rules
    );

    println!("Strongest distance-based rules:");
    for rule in result.rules.iter().take(5) {
        println!(
            "  {}",
            describe_rule(rule, result.graph.clusters(), relation.schema(), &partitioning)
        );
    }

    // Same clusters, classical support/confidence semantics (Dfn 4.4).
    let gqar = mine_gqar(
        &relation,
        &partitioning,
        result.graph.clusters(),
        &GqarConfig { min_support: s.s0, min_confidence: 0.7, max_len: 3 },
    );
    println!("\nGQAR baseline over the same clusters: {} rules at confidence ≥ 0.7", gqar.len());
    assert!(s.rules > 0, "the correlated WBCD structure must yield DARs");
}
