//! The paper's Section 5.2 application: an insurer mining which driver
//! characteristics determine annual claims. N:1 distance-based rules
//! target a single consequent attribute set (Claims) from combinations of
//! the others — "an insurance agent wants to find associations between
//! driver characteristics and a specific variable".
//!
//! Run with: `cargo run --release --example insurance_rules`

use interval_rules::datagen::insurance::{insurance_relation, CLAIMS};
use interval_rules::mining::describe::describe_rule;
use interval_rules::prelude::*;

fn main() {
    let relation = insurance_relation(10_000, 7);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);

    let config = DarConfig {
        initial_thresholds: Some(vec![2.0, 1.5, 2_000.0]),
        min_support_frac: 0.08,
        query: RuleQuery { max_antecedent: 2, max_consequent: 1, ..RuleQuery::default() },
        rescan_candidate_frequency: true,
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");

    println!(
        "{} tuples → {} clusters, {} frequent; {} rules\n",
        relation.len(),
        result.stats.clusters_total,
        result.stats.clusters_frequent,
        result.stats.rules
    );

    println!("Rules determining Claims (strongest association first):");
    let clusters = result.graph.clusters();
    let mut shown = 0;
    for (i, rule) in result.rules.iter().enumerate() {
        let targets_claims =
            rule.consequent.len() == 1 && clusters[rule.consequent[0]].set == CLAIMS;
        if !targets_claims {
            continue;
        }
        println!(
            "  {}  [exact frequency {}]",
            describe_rule(rule, clusters, relation.schema(), &partitioning),
            result.rule_frequencies[i]
        );
        shown += 1;
        if shown >= 8 {
            break;
        }
    }
    assert!(shown > 0, "claims rules must be found");
}
