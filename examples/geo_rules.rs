//! Multi-attribute sets: clustering latitude and longitude **jointly**.
//!
//! Section 5.2 of the paper: a multi-attribute set is only meaningful when
//! a joint distance metric exists — latitude/longitude with Euclidean
//! distance being its example. This example partitions a listings relation
//! into the 2-D set {lat, lon} and the 1-D set {price}, mines DARs, and
//! shows location-box ⇒ price-band rules.
//!
//! Run with: `cargo run --release --example geo_rules`

use interval_rules::core::AttrSet;
use interval_rules::datagen::geo::{geo_relation, HOTSPOTS, LAT, LON, PRICE};
use interval_rules::mining::describe::describe_rule;
use interval_rules::prelude::*;

fn main() {
    let relation = geo_relation(20_000, 11);

    // One 2-D spatial set, one 1-D price set — the user-supplied
    // partitioning of Section 4.3 footnote 2.
    let partitioning = Partitioning::new(
        relation.schema(),
        vec![
            AttrSet { attrs: vec![LAT, LON], metric: Metric::Euclidean },
            AttrSet { attrs: vec![PRICE], metric: Metric::Euclidean },
        ],
    )
    .expect("disjoint sets");

    let config = DarConfig {
        // Degrees of lat/lon vs dollars: per-set thresholds.
        initial_thresholds: Some(vec![0.06, 60_000.0]),
        min_support_frac: 0.1,
        query: RuleQuery { max_antecedent: 1, max_consequent: 1, ..RuleQuery::default() },
        rescan_candidate_frequency: true,
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");

    println!(
        "{} clusters ({} frequent), {} edges, {} rules\n",
        result.stats.clusters_total,
        result.stats.clusters_frequent,
        result.stats.graph_edges,
        result.stats.rules
    );
    let clusters = result.graph.clusters();
    println!("Location ⇒ price rules:");
    for (i, rule) in result.rules.iter().enumerate() {
        if clusters[rule.antecedent[0]].set == 0 && clusters[rule.consequent[0]].set == 1 {
            println!(
                "  {}  [frequency {}]",
                describe_rule(rule, clusters, relation.schema(), &partitioning),
                result.rule_frequencies[i]
            );
        }
    }

    // Each hotspot must be recovered as a spatial cluster implying a price
    // band containing its true price level.
    for &(lat, lon, price) in &HOTSPOTS {
        let found = result.rules.iter().any(|rule| {
            let ant = &clusters[rule.antecedent[0]];
            let cons = &clusters[rule.consequent[0]];
            ant.set == 0
                && cons.set == 1
                && ant.bbox().contains(&[lat, lon])
                && cons.bbox().contains(&[price])
        });
        println!("hotspot ({lat:.2}, {lon:.2}) ⇒ ~${price}: {found}");
        assert!(found, "hotspot rule must be mined");
    }
}
