//! The paper's motivating examples, end to end:
//!
//! 1. Figure 1 — equi-depth partitioning (the SA96 quantitative-rule
//!    baseline) groups distant salaries together; distance-based
//!    partitioning does not.
//! 2. Figure 2 — classical support/confidence cannot distinguish relations
//!    R1 and R2 for the rule `Job=DBA ∧ Age=30 ⇒ Salary=40,000`, but the
//!    distance-based degree of association can.
//!
//! Run with: `cargo run --example salary_partitioning`

use interval_rules::classic::{equi_depth, gap_partition};
use interval_rules::core::Metric;
use interval_rules::datagen::salary::{figure1_salaries, relation_r1, relation_r2, JOB_DBA};
use interval_rules::mining::interest::{
    confidence, degree_exact, satisfying_rows, support, Predicate,
};

fn main() {
    // ---- Figure 1 ----------------------------------------------------
    let salaries = figure1_salaries();
    println!("Salary values: {salaries:?}\n");
    println!("Equi-depth (depth 2):      {:?}", equi_depth(&salaries, 2));
    println!("Distance-based (gap 5K):   {:?}\n", gap_partition(&salaries, 5_000.0));

    // ---- Figure 2 ----------------------------------------------------
    let antecedent = [Predicate::Eq(0, JOB_DBA), Predicate::Eq(1, 30.0)];
    let consequent = [Predicate::Eq(2, 40_000.0)];
    for (name, relation) in [("R1", relation_r1()), ("R2", relation_r2())] {
        let s = support(&relation, &antecedent, &consequent);
        let c = confidence(&relation, &antecedent, &consequent).unwrap();
        let cx = satisfying_rows(&relation, &antecedent);
        let cy = satisfying_rows(&relation, &consequent);
        let degree = degree_exact(&relation, &cx, &cy, &[2], Metric::Euclidean).unwrap();
        println!(
            "{name}: support {:.0}%, confidence {:.0}%, degree of association ${degree:.0}",
            100.0 * s,
            100.0 * c
        );
    }
    println!(
        "\nClassical measures are identical; the degree of association is ~37x\n\
         smaller in R2, capturing that 41K/42K are *near* 40,000 (Goals 2–3)."
    );
}
