//! Quickstart: mine distance-based association rules from a small relation.
//!
//! Run with: `cargo run --example quickstart`

use interval_rules::mining::describe::describe_rule;
use interval_rules::prelude::*;

fn main() {
    // A tiny employees relation: two salary bands that co-occur with two
    // age bands.
    let schema = Schema::new(vec![Attribute::interval("Age"), Attribute::interval("Salary")]);
    let mut builder = RelationBuilder::new(schema);
    for i in 0..200 {
        let jitter = (i % 10) as f64 * 0.1;
        if i % 2 == 0 {
            // Junior cohort: ~28 years, ~$45K.
            builder.push_row(&[28.0 + jitter, 45_000.0 + 300.0 * jitter]).unwrap();
        } else {
            // Senior cohort: ~52 years, ~$110K.
            builder.push_row(&[52.0 + jitter, 110_000.0 + 300.0 * jitter]).unwrap();
        }
    }
    let relation = builder.finish();

    // One attribute set per attribute; Euclidean distance within each.
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);

    // Ages move in years, salaries in dollars: give each its own initial
    // diameter threshold.
    let config = DarConfig {
        initial_thresholds: Some(vec![3.0, 3_000.0]),
        min_support_frac: 0.2,
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");

    println!(
        "Phase I found {} clusters ({} frequent at s0 = {}); \
         Phase II built a graph with {} edges and mined {} rules:\n",
        result.stats.clusters_total,
        result.stats.clusters_frequent,
        result.stats.s0,
        result.stats.graph_edges,
        result.stats.rules,
    );
    for rule in &result.rules {
        println!(
            "  {}",
            describe_rule(rule, result.graph.clusters(), relation.schema(), &partitioning)
        );
    }
    assert!(result.stats.rules >= 2, "both cohorts should yield rules");
}
