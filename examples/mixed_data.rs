//! Mixed nominal + interval mining — the paper's Section 8 extension
//! ("we are currently extending our techniques to consider the mining of
//! rules over mixed variable data including interval and qualitative
//! data").
//!
//! Nominal attributes use the discrete 0/1 metric, under which clusters
//! with diameter 0 are exactly the classical 1-itemsets (Theorem 5.1) and
//! the degree of association is exactly `1 − confidence` (Theorem 5.2) —
//! so one DAR run mines classical rules on the nominal side and
//! distance-based rules on the interval side simultaneously.
//!
//! Run with: `cargo run --example mixed_data`

use interval_rules::datagen::SeededRng;
use interval_rules::mining::describe::describe_rule;
use interval_rules::prelude::*;

fn main() {
    // Employees: Job (nominal: 0=Engineer, 1=Manager, 2=Analyst),
    // Age and Salary (interval). Engineers are young and mid-paid,
    // managers older and highly paid, analysts young and lower-paid.
    let schema = Schema::new(vec![
        Attribute::nominal("Job"),
        Attribute::interval("Age"),
        Attribute::interval("Salary"),
    ]);
    let mut rng = SeededRng::new(1234);
    let mut builder = RelationBuilder::new(schema);
    for _ in 0..6_000 {
        let (job, age_mu, sal_mu) = match rng.index(3) {
            0 => (0.0, 30.0, 85_000.0),
            1 => (1.0, 48.0, 140_000.0),
            _ => (2.0, 27.0, 60_000.0),
        };
        builder.push_row(&[job, rng.normal(age_mu, 2.0), rng.normal(sal_mu, 4_000.0)]).unwrap();
    }
    let relation = builder.finish();

    // Per-attribute partitioning: nominal attributes automatically get the
    // discrete metric.
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    assert_eq!(partitioning.set(0).metric, Metric::Discrete);

    let config = DarConfig {
        // Job: threshold 0 keeps each category its own cluster (Thm 5.1);
        // Age in years; Salary in dollars.
        initial_thresholds: Some(vec![0.0, 3.0, 6_000.0]),
        min_support_frac: 0.15,
        query: RuleQuery { max_antecedent: 2, max_consequent: 1, ..RuleQuery::default() },
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");

    println!(
        "{} clusters ({} frequent), {} rules\n",
        result.stats.clusters_total, result.stats.clusters_frequent, result.stats.rules
    );
    let clusters = result.graph.clusters();
    // Nominal clusters are value groups: exactly the three job codes.
    let job_clusters: Vec<_> = clusters.iter().filter(|c| c.set == 0).collect();
    assert_eq!(job_clusters.len(), 3, "Thm 5.1: one cluster per job code");
    assert!(job_clusters.iter().all(|c| c.diameter() == 0.0));

    println!("Rules involving Job:");
    for rule in result.rules.iter().take(40) {
        let involves_job =
            rule.antecedent.iter().chain(&rule.consequent).any(|&i| clusters[i].set == 0);
        if involves_job {
            println!("  {}", describe_rule(rule, clusters, relation.schema(), &partitioning));
        }
    }
    assert!(result.stats.rules > 0);
}
