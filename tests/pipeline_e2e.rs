//! Cross-crate integration tests: the full two-phase miner end to end.

use interval_rules::birch::BirchConfig;
use interval_rules::datagen::csv::{from_csv_str, to_csv_string};
use interval_rules::datagen::grid::grid_spec;
use interval_rules::datagen::insurance::insurance_relation;
use interval_rules::prelude::*;

fn planted_miner() -> DarMiner {
    DarMiner::new(DarConfig {
        birch: BirchConfig { memory_budget: 1 << 20, ..BirchConfig::default() },
        initial_thresholds: Some(vec![2.0, 1.5, 2_000.0]),
        min_support_frac: 0.1,
        query: RuleQuery { max_antecedent: 2, max_consequent: 1, ..RuleQuery::default() },
        rescan_candidate_frequency: true,
        ..DarConfig::default()
    })
}

#[test]
fn mining_is_deterministic() {
    let relation = insurance_relation(5_000, 11);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let a = planted_miner().mine(&relation, &partitioning).expect("valid partitioning");
    let b = planted_miner().mine(&relation, &partitioning).expect("valid partitioning");
    assert_eq!(a.rules, b.rules);
    assert_eq!(a.rule_frequencies, b.rule_frequencies);
    assert_eq!(a.stats.clusters_total, b.stats.clusters_total);
    assert_eq!(a.stats.graph_edges, b.stats.graph_edges);
}

#[test]
fn csv_roundtrip_preserves_mining_results() {
    let relation = insurance_relation(3_000, 5);
    let roundtripped = from_csv_str(&to_csv_string(&relation)).unwrap();
    // CSV uses exact decimal formatting of f64, so the relation survives
    // bit-for-bit and mining results must be identical.
    assert_eq!(relation, roundtripped);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let a = planted_miner().mine(&relation, &partitioning).expect("valid partitioning");
    let b = planted_miner().mine(&roundtripped, &partitioning).expect("valid partitioning");
    assert_eq!(a.rules, b.rules);
}

#[test]
fn grid_structure_is_fully_recovered() {
    // 4 clusters on 3 attributes, Latin-square layout, no outliers: Phase I
    // must find exactly 4 clusters per attribute, and Phase II must connect
    // co-occurring ones.
    let spec = grid_spec(3, 4, 100.0, 1.0, 0.0);
    let relation = spec.generate(4_000, 99);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let config = DarConfig {
        birch: BirchConfig {
            initial_threshold: 8.0,
            memory_budget: usize::MAX,
            ..BirchConfig::default()
        },
        min_support_frac: 0.1,
        query: RuleQuery { max_antecedent: 2, max_consequent: 1, ..RuleQuery::default() },
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");
    assert_eq!(result.stats.clusters_total, 12, "4 clusters × 3 attributes");
    assert_eq!(result.stats.clusters_frequent, 12);
    // Each latent component joins its three per-attribute clusters into a
    // triangle: 4 components × 3 edges.
    assert_eq!(result.stats.graph_edges, 12);
    assert_eq!(result.stats.nontrivial_cliques, 4);
    assert!(result.stats.rules > 0);
    // Every rule's member clusters must belong to one latent component:
    // centroids on each attribute must be consistent with the Latin square.
    let clusters = result.graph.clusters();
    for rule in &result.rules {
        let members: Vec<usize> = rule.antecedent.iter().chain(&rule.consequent).copied().collect();
        // Recover each member's component index from its centroid.
        let comps: Vec<i64> = members
            .iter()
            .map(|&m| {
                let c = &clusters[m];
                let centroid = c.acf.centroid_on(c.set).unwrap()[0];
                let grid_pos = (centroid / 100.0).round() as i64;
                // Latin square: mean(attr j, comp c) = 100·((c + j) mod 4).
                (grid_pos - c.set as i64).rem_euclid(4)
            })
            .collect();
        assert!(comps.windows(2).all(|w| w[0] == w[1]), "rule mixes components: {comps:?}");
    }
}

#[test]
fn outliers_do_not_invent_rules() {
    // Same grid plus 20% uniform noise: structure recovery must survive,
    // and noise clusters must not pass the frequency threshold.
    let spec = grid_spec(3, 4, 100.0, 1.0, 0.2);
    let relation = spec.generate(6_000, 3);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let config = DarConfig {
        birch: BirchConfig {
            initial_threshold: 8.0,
            memory_budget: 32 << 10,
            ..BirchConfig::default()
        },
        min_support_frac: 0.08,
        query: RuleQuery {
            max_antecedent: 2,
            max_consequent: 1,
            // Noise members inflate image radii (uniform background mixed
            // into every cluster's projections); pin the Phase II thresholds
            // between the inflated same-component D2 (~45-65) and the
            // cross-component D2 (>= the 100-unit grid spacing).
            density: DensitySpec::Explicit(vec![75.0, 75.0, 75.0]),
            ..RuleQuery::default()
        },
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");
    assert_eq!(
        result.stats.clusters_frequent, 12,
        "only the 12 planted clusters are frequent: {:?}",
        result.stats
    );
    // Noise can contribute a couple of weak extra edges, but each of the 4
    // planted components must surface as a full 3-clique, and the graph
    // must stay in that vicinity rather than densifying.
    let clusters = result.graph.clusters();
    let component_of = |m: usize| -> i64 {
        let c = &clusters[m];
        let centroid = c.acf.centroid_on(c.set).unwrap()[0];
        ((centroid / 100.0).round() as i64 - c.set as i64).rem_euclid(4)
    };
    let full_component_cliques = result
        .cliques
        .iter()
        .filter(|q| q.len() == 3 && q.iter().all(|&m| component_of(m) == component_of(q[0])))
        .count();
    assert_eq!(full_component_cliques, 4, "cliques: {:?}", result.cliques);
    assert!(
        (4..=8).contains(&result.stats.nontrivial_cliques),
        "graph densified unexpectedly: {:?}",
        result.stats
    );
}

#[test]
fn memory_budget_bounds_the_trees_during_the_scan() {
    use interval_rules::birch::AcfForest;
    let spec = grid_spec(5, 8, 50.0, 2.0, 0.1);
    let relation = spec.generate(20_000, 17);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let budget = 8 << 10; // deliberately tiny: forces constant adaptation
    let config =
        BirchConfig { initial_threshold: 0.0, memory_budget: budget, ..BirchConfig::default() };
    let mut forest = AcfForest::new(partitioning, &config);
    for row in 0..relation.len() {
        forest.insert_row(&relation, row);
        if row % 1_000 == 999 {
            for tree in forest.stats().trees {
                assert!(
                    tree.memory_bytes <= budget,
                    "tree {} exceeded its budget at row {row}: {} > {budget}",
                    tree.set,
                    tree.memory_bytes
                );
            }
        }
    }
    // No tuples were lost to the adaptation.
    let per_set = forest.finish();
    for clusters in per_set {
        let total: u64 = clusters.iter().map(|c| c.n()).sum();
        assert_eq!(total, relation.len() as u64);
    }
}

#[test]
fn rescan_frequencies_are_bounded_by_assignment_counts() {
    use interval_rules::mining::assign::CentroidIndex;
    let relation = insurance_relation(4_000, 23);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let result = planted_miner().mine(&relation, &partitioning).expect("valid partitioning");
    assert_eq!(result.rule_frequencies.len(), result.rules.len());

    // The rescan assigns every tuple to its nearest *frequent* cluster per
    // set (Section 4.3.2 — this may differ from insertion-time membership),
    // so a rule's frequency is bounded by the assignment count of each of
    // its member clusters, not by their Phase I supports.
    let clusters = result.graph.clusters();
    let mut assigned = vec![0u64; clusters.len()];
    for set in 0..partitioning.num_sets() {
        let index = CentroidIndex::new(clusters, set, partitioning.set(set).metric);
        for row in 0..relation.len() {
            let point = relation.project(row, &partitioning.set(set).attrs);
            if let Some((pos, _)) = index.nearest(&point) {
                assigned[pos] += 1;
            }
        }
    }
    for (rule, &freq) in result.rules.iter().zip(&result.rule_frequencies) {
        let bound =
            rule.antecedent.iter().chain(&rule.consequent).map(|&pos| assigned[pos]).min().unwrap();
        assert!(freq <= bound, "rule frequency {freq} exceeds assignment bound {bound}");
    }
    // Every tuple lands somewhere: per set, assignments sum to |r|.
    let per_set_total: u64 = assigned.iter().sum();
    assert_eq!(per_set_total, (relation.len() * partitioning.num_sets()) as u64);
}

#[test]
fn stats_are_internally_consistent() {
    let relation = insurance_relation(4_000, 29);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let result = planted_miner().mine(&relation, &partitioning).expect("valid partitioning");
    let s = &result.stats;
    assert_eq!(s.tuples, relation.len());
    assert_eq!(s.rules, result.rules.len());
    assert_eq!(s.cliques, result.cliques.len());
    assert_eq!(s.clusters_total, result.clusters.len());
    assert_eq!(s.clusters_frequent, result.graph.clusters().len());
    assert!(s.clusters_frequent <= s.clusters_total);
    assert_eq!(s.density_thresholds.len(), partitioning.num_sets());
    // Total tuples across Phase I clusters equals the relation size, per set.
    for set in 0..partitioning.num_sets() {
        let total: u64 = result.clusters.iter().filter(|c| c.set == set).map(|c| c.support()).sum();
        assert_eq!(total, relation.len() as u64);
    }
}
