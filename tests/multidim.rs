//! End-to-end coverage of multi-attribute sets (the paper's Section 5.2
//! latitude/longitude case) and of the persisted-summary Phase II path.

use interval_rules::core::AttrSet;
use interval_rules::datagen::geo::{geo_relation, HOTSPOTS, LAT, LON, PRICE};
use interval_rules::mining::persist::{read_clusters, write_clusters};
use interval_rules::prelude::*;

fn geo_setup() -> (Relation, Partitioning, DarConfig) {
    let relation = geo_relation(8_000, 21);
    let partitioning = Partitioning::new(
        relation.schema(),
        vec![
            AttrSet { attrs: vec![LAT, LON], metric: Metric::Euclidean },
            AttrSet { attrs: vec![PRICE], metric: Metric::Euclidean },
        ],
    )
    .expect("disjoint sets");
    let config = DarConfig {
        initial_thresholds: Some(vec![0.06, 60_000.0]),
        min_support_frac: 0.1,
        query: RuleQuery { max_antecedent: 1, max_consequent: 1, ..RuleQuery::default() },
        ..DarConfig::default()
    };
    (relation, partitioning, config)
}

#[test]
fn two_dimensional_sets_mine_hotspot_rules() {
    let (relation, partitioning, config) = geo_setup();
    let result = DarMiner::new(config).mine(&relation, &partitioning).unwrap();
    // Every spatial cluster's bounding box is 2-D.
    for c in result.graph.clusters() {
        if c.set == 0 {
            assert_eq!(c.bbox().dims(), 2);
        }
    }
    for &(lat, lon, price) in &HOTSPOTS {
        let found = result.rules.iter().any(|rule| {
            let clusters = result.graph.clusters();
            let ant = &clusters[rule.antecedent[0]];
            let cons = &clusters[rule.consequent[0]];
            ant.set == 0
                && cons.set == 1
                && ant.bbox().contains(&[lat, lon])
                && cons.bbox().contains(&[price])
        });
        assert!(found, "hotspot ({lat}, {lon}) ⇒ {price} not mined");
    }
}

#[test]
fn persisted_summaries_reproduce_phase_two() {
    use interval_rules::mining::clique::maximal_cliques;
    use interval_rules::mining::graph::{ClusteringGraph, GraphConfig};
    use interval_rules::mining::rules::generate_dars;

    let (relation, partitioning, config) = geo_setup();
    let result = DarMiner::new(config.clone()).mine(&relation, &partitioning).unwrap();

    // Round-trip ALL clusters through the text format.
    let text = write_clusters(&result.clusters).unwrap();
    let reloaded = read_clusters(&text).unwrap();
    assert_eq!(result.clusters, reloaded);

    // Re-run Phase II from the reloaded summaries with the same thresholds;
    // the rules must be identical.
    let s0 = result.stats.s0;
    let frequent: Vec<_> = reloaded.into_iter().filter(|c| c.is_frequent(s0)).collect();
    let graph = ClusteringGraph::build(
        frequent,
        &GraphConfig {
            metric: config.metric,
            density_thresholds: result.stats.density_thresholds.clone(),
            prune_poor_density: config.prune_poor_density,
        },
    );
    assert_eq!(graph.edges, result.stats.graph_edges);
    let (cliques, _) = maximal_cliques(graph.adjacency(), config.max_cliques);
    let rules = generate_dars(
        &graph,
        &cliques,
        &config.query.rule_config(config.metric, &result.stats.density_thresholds),
    );
    // Graph positions may be permuted relative to the original run, so
    // compare by cluster ids.
    let keyed = |rules: &[interval_rules::mining::Dar],
                 clusters: &[interval_rules::core::ClusterSummary]| {
        let mut keys: Vec<(Vec<u32>, Vec<u32>)> = rules
            .iter()
            .map(|r| {
                (
                    r.antecedent.iter().map(|&i| clusters[i].id.0).collect(),
                    r.consequent.iter().map(|&i| clusters[i].id.0).collect(),
                )
            })
            .collect();
        keys.sort();
        keys
    };
    assert_eq!(keyed(&rules, graph.clusters()), keyed(&result.rules, result.graph.clusters()));
}

#[test]
fn joint_metric_beats_separate_axes_on_diagonal_structure() {
    // A diagonal ridge: lat and lon individually span the whole range (no
    // 1-D structure), but jointly form two tight 2-D clusters. This is why
    // the paper supports clustering multi-attribute sets directly.
    let mut b =
        RelationBuilder::new(Schema::new(vec![Attribute::interval("x"), Attribute::interval("y")]));
    for i in 0..400 {
        let t = (i % 100) as f64 / 100.0;
        if i % 2 == 0 {
            b.push_row(&[t, t]).unwrap(); // ridge A: y = x
        } else {
            b.push_row(&[t, t + 5.0]).unwrap(); // ridge B: y = x + 5
        }
    }
    let relation = b.finish();
    // Joint 2-D clustering separates the ridges by their y−x offset
    // because the cluster diameter in 2-D sees the 5-unit gap.
    let joint = Partitioning::new(
        relation.schema(),
        vec![AttrSet { attrs: vec![0, 1], metric: Metric::Euclidean }],
    )
    .unwrap();
    let config = DarConfig {
        initial_thresholds: Some(vec![1.2]),
        min_support_frac: 0.2,
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(&relation, &joint).unwrap();
    // The ridges are elongated (length ~1.4 diagonal), so each splits into
    // a few clusters — but no cluster may MIX the two ridges.
    assert!(result.stats.clusters_total >= 2);
    for c in &result.clusters {
        let bbox = c.bbox();
        let spread_y_minus_x = (bbox.interval(1).hi - bbox.interval(0).lo)
            - (bbox.interval(1).lo - bbox.interval(0).hi);
        // Any cluster containing points of both ridges would have a y−x
        // range of ≥ 5; within one ridge it stays below ~3.
        assert!(spread_y_minus_x.abs() < 4.0, "cluster mixes ridges: bbox {bbox}");
    }
}
