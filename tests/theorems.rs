//! Property-based tests for the paper's formal claims: Theorems 5.1 and
//! 5.2, and the consistency of the moment-based (CF/ACF) statistics with
//! their exact tuple-level definitions.

use interval_rules::core::exact::PointSet;
use interval_rules::core::{Acf, AcfLayout, Cf, Metric, RelationBuilder, Schema};
use interval_rules::mining::interest::theorem_5_2_pair;
use proptest::prelude::*;

/// Theorem 5.1: a non-empty cluster has diameter 0 under the discrete
/// metric iff all its members agree on the attribute.
#[test]
fn theorem_5_1_property() {
    proptest!(|(values in prop::collection::vec(0u8..5, 1..40))| {
        let set = PointSet::from_scalars(
            &values.iter().map(|&v| v as f64).collect::<Vec<_>>(),
        );
        let all_equal = values.iter().all(|&v| v == values[0]);
        let diameter = set.diameter(Metric::Discrete);
        prop_assert_eq!(diameter == 0.0, all_equal,
            "diameter {} for values {:?}", diameter, values);
    });
}

/// Theorem 5.2: for nominal clusters `C_A = σ_{A=a}(r)`, `C_B = σ_{B=b}(r)`
/// under the discrete metric, the rule `A=a ⇒ B=b` holds with confidence
/// `c0` iff the DAR `C_A ⇒ C_B` holds with degree `1 − c0`.
#[test]
fn theorem_5_2_property() {
    proptest!(|(rows in prop::collection::vec((0u8..3, 0u8..3), 1..60),
                a_val in 0u8..3, b_val in 0u8..3)| {
        let mut builder = RelationBuilder::new(Schema::interval_attrs(2));
        for (a, b) in &rows {
            builder.push_row(&[*a as f64, *b as f64]).unwrap();
        }
        let relation = builder.finish();
        match theorem_5_2_pair(&relation, 0, a_val as f64, 1, b_val as f64) {
            Ok((degree, confidence)) => {
                prop_assert!((degree - (1.0 - confidence)).abs() < 1e-9,
                    "degree {} vs 1-conf {}", degree, 1.0 - confidence);
            }
            Err(_) => {
                // One of the clusters was empty; the theorem does not apply.
                let has_a = rows.iter().any(|(a, _)| *a == a_val);
                let has_b = rows.iter().any(|(_, b)| *b == b_val);
                prop_assert!(!has_a || !has_b);
            }
        }
    });
}

/// CF diameter equals the exact average pairwise *squared* Euclidean
/// distance (its moment-computable RMS form), and the CF D2 equals the
/// exact RMS inter-cluster distance.
#[test]
fn cf_statistics_match_exact_definitions() {
    proptest!(|(pa in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..25),
                pb in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..25))| {
        let to_points = |v: &Vec<(f64, f64)>| -> Vec<Vec<f64>> {
            v.iter().map(|&(x, y)| vec![x, y]).collect()
        };
        let (pa, pb) = (to_points(&pa), to_points(&pb));
        let mut ca = Cf::empty(2);
        for p in &pa { ca.add_point(p); }
        let mut cb = Cf::empty(2);
        for p in &pb { cb.add_point(p); }
        let sa = PointSet::new(pa.clone()).unwrap();
        let sb = PointSet::new(pb.clone()).unwrap();

        // Diameter²: brute force over ordered pairs.
        if pa.len() >= 2 {
            let n = pa.len() as f64;
            let mut acc = 0.0;
            for x in &pa {
                for y in &pa {
                    acc += Metric::Euclidean.distance_sq(x, y);
                }
            }
            let exact = acc / (n * (n - 1.0));
            prop_assert!((ca.diameter_sq() - exact).abs() < 1e-6 * (1.0 + exact));
        }
        // D2 RMS.
        let d2_exact = sa.d2_rms(&sb).unwrap();
        let d2_cf = ca.d2(&cb).unwrap();
        prop_assert!((d2_cf - d2_exact).abs() < 1e-6 * (1.0 + d2_exact));
        // D1: Manhattan centroid distance.
        let d1_exact = sa.d1(&sb).unwrap();
        let d1_cf = ca.d1(&cb).unwrap();
        prop_assert!((d1_cf - d1_exact).abs() < 1e-6 * (1.0 + d1_exact));
    });
}

/// ACF additivity (the extension of BIRCH's Additivity Theorem that makes
/// Theorem 6.1 work): merging the ACFs of a partition of the rows equals
/// the ACF of all rows, on every image.
#[test]
fn acf_additivity_property() {
    proptest!(|(rows in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0), 2..30),
                split in 1usize..29)| {
        prop_assume!(split < rows.len());
        let layout = AcfLayout::new(vec![1, 2]);
        let project = |r: &(f64, f64, f64)| vec![vec![r.0], vec![r.1, r.2]];

        let mut all = Acf::empty(&layout, 0);
        for r in &rows { all.add_row(&project(r)); }

        let mut left = Acf::empty(&layout, 0);
        for r in &rows[..split] { left.add_row(&project(r)); }
        let mut right = Acf::empty(&layout, 0);
        for r in &rows[split..] { right.add_row(&project(r)); }
        left.merge(&right).unwrap();

        prop_assert_eq!(left.n(), all.n());
        for set in 0..2 {
            let ca = left.centroid_on(set).unwrap();
            let cb = all.centroid_on(set).unwrap();
            for (x, y) in ca.iter().zip(&cb) {
                prop_assert!((x - y).abs() < 1e-9, "set {}: {} vs {}", set, x, y);
            }
            prop_assert!((left.diameter_on(set) - all.diameter_on(set)).abs() < 1e-6);
        }
        // Bounding boxes agree too.
        prop_assert_eq!(left.bbox(), all.bbox());
    });
}

/// The RMS (moment) diameter upper-bounds the exact arithmetic-mean
/// diameter (Jensen's inequality) — the precise sense in which the
/// summary-based density test is conservative.
#[test]
fn rms_diameter_dominates_arithmetic_diameter() {
    proptest!(|(values in prop::collection::vec(-100.0f64..100.0, 2..40))| {
        let set = PointSet::from_scalars(&values);
        let mut cf = Cf::empty(1);
        for v in &values { cf.add_point(&[*v]); }
        prop_assert!(cf.diameter() + 1e-9 >= set.diameter(Metric::Euclidean));
    });
}
