//! Integration tests of the adaptive behaviour (Section 3's operating
//! constraint): precision under memory budgets, outlier handling, and the
//! quality/memory trade-off.

use interval_rules::birch::{AcfForest, BirchConfig};
use interval_rules::datagen::grid::grid_spec;
use interval_rules::datagen::wbcd::wbcd_relation;
use interval_rules::prelude::*;

fn cluster_count(relation: &Relation, budget: usize) -> (usize, usize, f64) {
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let config =
        BirchConfig { initial_threshold: 0.0, memory_budget: budget, ..BirchConfig::default() };
    let mut forest = AcfForest::new(partitioning, &config);
    forest.scan(relation);
    let stats = forest.stats();
    let rebuilds = stats.total_rebuilds();
    let max_threshold = stats.trees.iter().map(|t| t.threshold).fold(0.0f64, f64::max);
    (forest.finish().iter().map(Vec::len).sum(), rebuilds, max_threshold)
}

#[test]
fn more_memory_means_finer_clusters() {
    let relation = wbcd_relation(8_000, 0.1, 31);
    let budgets = [16 << 10, 64 << 10, 512 << 10];
    let results: Vec<(usize, usize, f64)> =
        budgets.iter().map(|&b| cluster_count(&relation, b)).collect();
    // Cluster counts must be non-decreasing in the budget...
    assert!(results[0].0 <= results[1].0, "{results:?}");
    assert!(results[1].0 <= results[2].0, "{results:?}");
    // ...and final thresholds non-increasing (coarser under pressure).
    // (Rebuild *counts* are not monotone: a tight budget raises the
    // threshold in larger jumps and may converge in fewer rebuilds.)
    assert!(results[0].2 >= results[2].2, "{results:?}");
    assert!(results[0].1 > 0, "tight budget must have adapted at all");
}

#[test]
fn adaptation_never_loses_tuples() {
    let relation = wbcd_relation(5_000, 0.2, 7);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    for budget in [8 << 10, 32 << 10, 1 << 20] {
        let config = BirchConfig {
            initial_threshold: 0.0,
            memory_budget: budget,
            outlier_entry_limit: 10,
            ..BirchConfig::default()
        };
        let mut forest = AcfForest::new(partitioning.clone(), &config);
        forest.scan(&relation);
        for clusters in forest.finish() {
            let total: u64 = clusters.iter().map(|c| c.n()).sum();
            assert_eq!(total, relation.len() as u64, "budget {budget}");
        }
    }
}

#[test]
fn outlier_paging_does_not_break_cluster_recovery() {
    // Heavy planted structure + scattered noise, tight budget, aggressive
    // outlier paging: the planted clusters must still dominate the output.
    let spec = grid_spec(2, 3, 100.0, 1.0, 0.15);
    let relation = spec.generate(9_000, 13);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let config = BirchConfig {
        initial_threshold: 0.0,
        memory_budget: 16 << 10,
        outlier_entry_limit: 50,
        ..BirchConfig::default()
    };
    let mut forest = AcfForest::new(partitioning, &config);
    forest.scan(&relation);
    let per_set = forest.finish();
    for (set, clusters) in per_set.iter().enumerate() {
        // The three planted centers must each be represented by a cluster
        // holding a large population.
        for comp in 0..3 {
            let center = 100.0 * ((comp + set) % 3) as f64;
            let found = clusters
                .iter()
                .any(|c| c.n() > 1_500 && (c.centroid_on(set).unwrap()[0] - center).abs() < 20.0);
            assert!(found, "set {set}: no heavy cluster near {center}");
        }
    }
}

#[test]
fn quality_degrades_gracefully_not_catastrophically() {
    // Even at a punishing budget, the recovered cluster count stays within
    // sane bounds (neither 1 nor unbounded) and the planted structure at a
    // generous budget is exact.
    let spec = grid_spec(2, 4, 100.0, 1.0, 0.0);
    let relation = spec.generate(6_000, 41);
    let (tight, _, _) = cluster_count(&relation, 4 << 10);
    let (roomy, _, _) = cluster_count(&relation, 4 << 20);
    assert!(tight >= 2, "tight budget collapsed to {tight} clusters");
    assert!(roomy >= tight);
}
