//! Cross-checks between the three rule formulations on shared workloads:
//! classical Apriori, quantitative association rules (SA96), generalized
//! quantitative association rules (Dfn 4.4), and distance-based rules.

use interval_rules::birch::BirchConfig;
use interval_rules::classic::{
    apriori, generate_rules, mine_qar, AprioriConfig, ItemId, QarConfig, TransactionSet,
};
use interval_rules::mining::gqar::{mine_gqar, GqarConfig};
use interval_rules::prelude::*;
use proptest::prelude::*;

/// Support is anti-monotone: every subset of a frequent itemset is frequent
/// with at least the same support (the property Apriori exploits).
#[test]
fn apriori_support_is_anti_monotone() {
    proptest!(|(raw in prop::collection::vec(
        prop::collection::vec(0u32..8, 0..6), 1..50))| {
        let mut tx = TransactionSet::new();
        for items in &raw {
            tx.push(items.iter().map(|&i| ItemId(i)).collect());
        }
        let freq = apriori(&tx, &AprioriConfig { min_support: 2, max_len: 0 });
        for (itemset, support) in freq.iter() {
            if itemset.len() < 2 {
                continue;
            }
            for skip in 0..itemset.len() {
                let sub: Vec<ItemId> = itemset
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &v)| v)
                    .collect();
                let sub_support = freq.support(&sub);
                prop_assert!(sub_support.is_some(), "subset of frequent must be frequent");
                prop_assert!(sub_support.unwrap() >= support);
            }
        }
    });
}

/// Rule confidence from `generate_rules` always equals
/// `supp(union)/supp(antecedent)` recomputed from the itemsets.
#[test]
fn rule_confidence_consistency() {
    proptest!(|(raw in prop::collection::vec(
        prop::collection::vec(0u32..6, 1..5), 5..40))| {
        let mut tx = TransactionSet::new();
        for items in &raw {
            tx.push(items.iter().map(|&i| ItemId(i)).collect());
        }
        let freq = apriori(&tx, &AprioriConfig { min_support: 2, max_len: 0 });
        for rule in generate_rules(&freq, 0.0) {
            let mut union = rule.antecedent.clone();
            union.extend(&rule.consequent);
            union.sort_unstable();
            let u = freq.support(&union).unwrap();
            let a = freq.support(&rule.antecedent).unwrap();
            prop_assert_eq!(u, rule.support);
            prop_assert!((rule.confidence - u as f64 / a as f64).abs() < 1e-12);
        }
    });
}

/// A two-block relation where all three quantitative formulations must
/// discover the cross-attribute association.
fn two_block_relation() -> Relation {
    let mut builder = RelationBuilder::new(Schema::interval_attrs(2));
    for i in 0..100 {
        let jitter = (i % 10) as f64 * 0.05;
        if i % 2 == 0 {
            builder.push_row(&[10.0 + jitter, 500.0 + jitter]).unwrap();
        } else {
            builder.push_row(&[90.0 + jitter, 900.0 + jitter]).unwrap();
        }
    }
    builder.finish()
}

#[test]
fn qar_gqar_and_dar_agree_on_block_structure() {
    let relation = two_block_relation();
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);

    // --- SA96 QAR ---
    let qar_rules = mine_qar(
        &relation,
        &[0, 1],
        &QarConfig { min_support_frac: 0.3, min_confidence: 0.9, ..QarConfig::default() },
    );
    let qar_found = qar_rules.iter().any(|r| {
        r.antecedent.iter().any(|(a, iv)| *a == 0 && iv.contains(10.0))
            && r.consequent.iter().any(|(a, iv)| *a == 1 && iv.contains(500.0))
    });
    assert!(qar_found, "QAR misses the block: {qar_rules:?}");

    // --- DAR ---
    let config = DarConfig {
        birch: BirchConfig { memory_budget: usize::MAX, ..BirchConfig::default() },
        initial_thresholds: Some(vec![2.0, 2.0]),
        min_support_frac: 0.3,
        query: RuleQuery { max_antecedent: 1, max_consequent: 1, ..RuleQuery::default() },
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");
    let clusters = result.graph.clusters();
    let dar_found = result.rules.iter().any(|r| {
        let ant = &clusters[r.antecedent[0]];
        let cons = &clusters[r.consequent[0]];
        ant.set == 0
            && cons.set == 1
            && ant.bbox().contains(&[10.0])
            && cons.bbox().contains(&[500.0])
    });
    assert!(dar_found, "DAR misses the block");

    // --- GQAR over the DAR clusters ---
    let gqar = mine_gqar(
        &relation,
        &partitioning,
        clusters,
        &GqarConfig { min_support: 30, min_confidence: 0.9, max_len: 2 },
    );
    assert!(!gqar.is_empty(), "GQAR over the same clusters must find rules");
    // GQAR confidences on this clean block structure are 1.0.
    assert!(gqar.iter().any(|r| r.confidence > 0.99));
}

/// On clean block data, the DAR degree and the GQAR confidence must agree
/// directionally: the strongest DAR connects the same clusters as a
/// confidence-1.0 GQAR.
#[test]
fn dar_and_gqar_rank_the_same_association_first() {
    let relation = two_block_relation();
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let config = DarConfig {
        birch: BirchConfig { memory_budget: usize::MAX, ..BirchConfig::default() },
        initial_thresholds: Some(vec![2.0, 2.0]),
        min_support_frac: 0.3,
        query: RuleQuery { max_antecedent: 1, max_consequent: 1, ..RuleQuery::default() },
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");
    assert!(!result.rules.is_empty());
    let best = &result.rules[0];
    let gqar = mine_gqar(
        &relation,
        &partitioning,
        result.graph.clusters(),
        &GqarConfig { min_support: 30, min_confidence: 0.0, max_len: 2 },
    );
    let matching =
        gqar.iter().find(|g| g.antecedent == best.antecedent && g.consequent == best.consequent);
    let m = matching.expect("the strongest DAR must exist as a GQAR too");
    assert!(m.confidence > 0.99, "clean blocks: confidence {}", m.confidence);
}
