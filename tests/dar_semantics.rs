//! Soundness of rule generation against Definition 5.3: every emitted DAR
//! must satisfy, by direct recomputation from the summaries,
//!
//! 1. `D(C_Yj[Yj], C_Xi[Yj]) ≤ D0_Yj` for every antecedent–consequent pair
//!    (the degree condition);
//! 2. mutual closeness among antecedent clusters and among consequent
//!    clusters on both projections (the clique/edge conditions);
//! 3. pairwise-disjoint attribute sets across the whole rule.

use interval_rules::core::{Acf, AcfLayout, ClusterId, ClusterSummary};
use interval_rules::datagen::SeededRng;
use interval_rules::mining::clique::maximal_cliques;
use interval_rules::mining::graph::{ClusterDistance, ClusteringGraph, GraphConfig};
use interval_rules::mining::rules::{generate_dars, RuleConfig};

/// Random cluster population over `num_sets` attribute sets: each cluster
/// picks a latent component; within a component images coincide, across
/// components they are far — plus fully random "noise" clusters.
fn random_clusters(seed: u64, num_sets: usize, per_set: usize) -> Vec<ClusterSummary> {
    let mut rng = SeededRng::new(seed);
    let layout = AcfLayout::new(vec![1; num_sets]);
    let mut out = Vec::new();
    let mut id = 0u32;
    for set in 0..num_sets {
        for _ in 0..per_set {
            let component = rng.index(3) as f64;
            let noise = rng.uniform() < 0.3;
            let mut acf = Acf::empty(&layout, set);
            for _ in 0..20 {
                let projections: Vec<Vec<f64>> = (0..num_sets)
                    .map(|_| {
                        let base =
                            if noise { rng.uniform_in(-50.0, 50.0) } else { 10.0 * component };
                        let sd = 0.4 + 2.0 * rng.uniform();
                        vec![base + rng.normal(0.0, sd)]
                    })
                    .collect();
                acf.add_row(&projections);
            }
            out.push(ClusterSummary { id: ClusterId(id), set, acf });
            id += 1;
        }
    }
    out
}

#[test]
fn every_emitted_rule_satisfies_definition_5_3() {
    for seed in 0..12u64 {
        let num_sets = 3 + (seed as usize % 2);
        let clusters = random_clusters(seed, num_sets, 4);
        let density = vec![4.0; num_sets];
        let degree: Vec<f64> = density.iter().map(|d| d * 1.5).collect();
        let metric = if seed % 2 == 0 { ClusterDistance::D2 } else { ClusterDistance::D1 };

        let graph = ClusteringGraph::build(
            clusters,
            &GraphConfig {
                metric,
                density_thresholds: density.clone(),
                prune_poor_density: metric == ClusterDistance::D2,
            },
        );
        let (cliques, _) = maximal_cliques(graph.adjacency(), 0);
        let rules = generate_dars(
            &graph,
            &cliques,
            &RuleConfig {
                metric,
                degree_thresholds: degree.clone(),
                max_antecedent: 2,
                max_consequent: 2,
                max_rules: 0,
                max_pair_work: 0,
            },
        );
        let nodes = graph.clusters();
        for rule in &rules {
            let members: Vec<usize> =
                rule.antecedent.iter().chain(&rule.consequent).copied().collect();
            // (3) pairwise disjoint attribute sets.
            let mut sets: Vec<usize> = members.iter().map(|&m| nodes[m].set).collect();
            sets.sort_unstable();
            sets.dedup();
            assert_eq!(sets.len(), members.len(), "seed {seed}: sets repeat in {rule:?}");

            // (1) degree condition, recomputed.
            for &y in &rule.consequent {
                let yset = nodes[y].set;
                for &x in &rule.antecedent {
                    let d = metric
                        .between(&nodes[y].acf, &nodes[x].acf, yset)
                        .expect("non-empty clusters");
                    assert!(
                        d <= degree[yset] + 1e-9,
                        "seed {seed}: degree violated ({d} > {}) in {rule:?}",
                        degree[yset]
                    );
                }
            }

            // (2) mutual closeness: antecedents pairwise, consequents
            // pairwise — both projections within the density thresholds
            // (they came from cliques, but re-verify from first principles).
            let check_mutual = |ids: &[usize]| {
                for (i, &a) in ids.iter().enumerate() {
                    for &b in &ids[i + 1..] {
                        for side in [a, b] {
                            let s = nodes[side].set;
                            let d = metric
                                .between(&nodes[a].acf, &nodes[b].acf, s)
                                .expect("non-empty clusters");
                            assert!(
                                d <= density[s] + 1e-9,
                                "seed {seed}: mutual closeness violated on set {s} \
                                 ({d} > {}) in {rule:?}",
                                density[s]
                            );
                        }
                    }
                }
            };
            check_mutual(&rule.antecedent);
            check_mutual(&rule.consequent);

            // Reported degree is the normalized worst pair, within [0, 1].
            assert!(rule.degree <= 1.0 + 1e-9, "seed {seed}: {rule:?}");
        }
    }
}

#[test]
fn degree_ranking_is_consistent_with_raw_distances() {
    let clusters = random_clusters(99, 3, 4);
    let density = vec![4.0; 3];
    let graph = ClusteringGraph::build(
        clusters,
        &GraphConfig {
            metric: ClusterDistance::D2,
            density_thresholds: density.clone(),
            prune_poor_density: true,
        },
    );
    let (cliques, _) = maximal_cliques(graph.adjacency(), 0);
    let rules = generate_dars(
        &graph,
        &cliques,
        &RuleConfig {
            metric: ClusterDistance::D2,
            degree_thresholds: density.iter().map(|d| d * 2.0).collect(),
            max_antecedent: 1,
            max_consequent: 1,
            max_rules: 0,
            max_pair_work: 0,
        },
    );
    // For 1:1 rules, the normalized degree must equal the raw distance
    // divided by the consequent set's threshold.
    let nodes = graph.clusters();
    for rule in &rules {
        let (x, y) = (rule.antecedent[0], rule.consequent[0]);
        let yset = nodes[y].set;
        let raw = ClusterDistance::D2.between(&nodes[y].acf, &nodes[x].acf, yset).unwrap();
        let expected = raw / (density[yset] * 2.0);
        assert!((rule.degree - expected).abs() < 1e-9);
    }
}
