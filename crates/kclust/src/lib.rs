//! # kclust
//!
//! Global clustering baselines for comparison against the adaptive,
//! incremental BIRCH Phase I of the `birch` crate:
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ seeding and restarts,
//!   the textbook "find K clusters minimizing a distance metric"
//!   formulation the paper states in Section 4.1 (`[KR90]`, `[ZRL96]`);
//! * [`clarans`] — the randomized k-medoids search of Ng & Han
//!   (VLDB 1994), `[NH94]` in the paper's citations;
//! * [`quality`] — SSE, mean cluster diameter, and centroid-recovery
//!   metrics shared by the Phase I ablation;
//! * [`adapter`] — converting any hard assignment into the
//!   [`ClusterSummary`](dar_core::ClusterSummary) / ACF representation the
//!   Phase II machinery consumes, so alternative clusterers can drive the
//!   full rule pipeline.
//!
//! Both algorithms are *global* (they need all points in memory and
//! multiple passes) — exactly the cost profile the paper's adaptive
//! single-scan approach is designed to avoid; the ablation quantifies what
//! that convenience trades away.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod clarans;
pub mod kmeans;
pub mod quality;

pub use adapter::assignments_to_summaries;
pub use clarans::{clarans, ClaransConfig};
pub use kmeans::{kmeans, KMeansConfig};
pub use quality::{mean_diameter, sse, Clustering};
