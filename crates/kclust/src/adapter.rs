//! Converting hard assignments into the ACF cluster representation, so any
//! clusterer can drive the Phase II rule machinery.

use dar_core::{Acf, AcfLayout, ClusterId, ClusterSummary, Partitioning, Relation, SetId};

/// Builds [`ClusterSummary`] ACFs from a per-tuple cluster assignment on
/// one attribute set: cluster `c` of set `set` absorbs every tuple with
/// `assignments[row] == c`, accumulating its projections on *all* sets (so
/// the full Theorem 6.1 machinery works downstream).
///
/// `next_id` supplies the first cluster id and is advanced.
pub fn assignments_to_summaries(
    relation: &Relation,
    partitioning: &Partitioning,
    set: SetId,
    assignments: &[usize],
    k: usize,
    next_id: &mut u32,
) -> Vec<ClusterSummary> {
    let layout = AcfLayout::from_partitioning(partitioning);
    let mut acfs: Vec<Acf> = (0..k).map(|_| Acf::empty(&layout, set)).collect();
    let mut projections: Vec<Vec<f64>> =
        partitioning.sets().iter().map(|s| Vec::with_capacity(s.dims())).collect();
    for (row, &a) in assignments.iter().enumerate() {
        for (s, buf) in projections.iter_mut().enumerate() {
            relation.project_into(row, &partitioning.set(s).attrs, buf);
        }
        acfs[a].add_row(&projections);
    }
    acfs.into_iter()
        .filter(|acf| !acf.is_empty())
        .map(|acf| {
            let id = ClusterId(*next_id);
            *next_id += 1;
            ClusterSummary { id, set, acf }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Metric, RelationBuilder, Schema};

    #[test]
    fn summaries_match_the_assignment() {
        let mut b = RelationBuilder::new(Schema::interval_attrs(2));
        b.push_row(&[0.0, 10.0]).unwrap();
        b.push_row(&[1.0, 11.0]).unwrap();
        b.push_row(&[50.0, 60.0]).unwrap();
        let r = b.finish();
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let mut next_id = 5;
        // Cluster on set 0: rows {0,1} together, row 2 alone; cluster id 1
        // of the assignment is empty and must be dropped.
        let summaries = assignments_to_summaries(&r, &p, 0, &[0, 0, 2], 3, &mut next_id);
        assert_eq!(summaries.len(), 2);
        assert_eq!(next_id, 7);
        let big = &summaries[0];
        assert_eq!(big.id, ClusterId(5));
        assert_eq!(big.support(), 2);
        assert_eq!(big.acf.centroid_on(0).unwrap(), vec![0.5]);
        // The image on the *other* set accumulated too (Theorem 6.1 data).
        assert_eq!(big.acf.centroid_on(1).unwrap(), vec![10.5]);
        assert_eq!(summaries[1].support(), 1);
    }
}
