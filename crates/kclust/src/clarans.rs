//! CLARANS — Clustering Large Applications based on RANdomized Search
//! (Ng & Han, VLDB 1994), the `[NH94]` k-medoids baseline.
//!
//! The search graph's nodes are sets of `k` medoids; neighbors differ in
//! one medoid. Starting from a random node, CLARANS examines up to
//! `max_neighbors` random neighbors, moving whenever one improves the
//! total point-to-nearest-medoid cost; a node none of whose sampled
//! neighbors improve is a local minimum. The best of `num_local` local
//! minima wins.

use crate::quality::Clustering;
use dar_core::Metric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a CLARANS run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaransConfig {
    /// Number of medoids.
    pub k: usize,
    /// Local minima to collect (`numlocal` in the paper).
    pub num_local: usize,
    /// Random neighbors to examine before declaring a local minimum
    /// (`maxneighbor`).
    pub max_neighbors: usize,
    /// RNG seed (deterministic).
    pub seed: u64,
}

impl Default for ClaransConfig {
    fn default() -> Self {
        ClaransConfig { k: 8, num_local: 2, max_neighbors: 100, seed: 42 }
    }
}

/// Runs CLARANS over `points`. `k` is clamped to the point count.
pub fn clarans(points: &[Vec<f64>], config: &ClaransConfig) -> Clustering {
    if points.is_empty() || config.k == 0 {
        return Clustering { assignments: Vec::new(), centers: Vec::new(), cost: 0.0, work: 0 };
    }
    let k = config.k.min(points.len());
    let n = points.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best: Option<(Vec<usize>, f64)> = None;
    let mut total_work = 0usize;

    for _ in 0..config.num_local.max(1) {
        // Random initial medoid set.
        let mut medoids = sample_distinct(n, k, &mut rng);
        let mut cost = medoid_cost(points, &medoids);
        let mut examined = 0usize;
        while examined < config.max_neighbors.max(1) {
            total_work += 1;
            // Random neighbor: swap one medoid for a random non-medoid.
            let swap_out = rng.random_range(0..k);
            let swap_in = loop {
                let c = rng.random_range(0..n);
                if !medoids.contains(&c) {
                    break c;
                }
                // If every point is a medoid, no neighbor exists.
                if k == n {
                    break medoids[swap_out];
                }
            };
            if swap_in == medoids[swap_out] {
                break; // k == n: nothing to search
            }
            let old = medoids[swap_out];
            medoids[swap_out] = swap_in;
            let new_cost = medoid_cost(points, &medoids);
            if new_cost < cost {
                cost = new_cost;
                examined = 0; // moved: restart the neighbor counter
            } else {
                medoids[swap_out] = old;
                examined += 1;
            }
        }
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((medoids, cost));
        }
    }

    let (medoids, cost) = best.expect("at least one local search ran");
    let centers: Vec<Vec<f64>> = medoids.iter().map(|&m| points[m].clone()).collect();
    let assignments = points
        .iter()
        .map(|p| {
            let mut bi = 0;
            let mut bd = f64::INFINITY;
            for (i, c) in centers.iter().enumerate() {
                let d = Metric::Euclidean.distance(p, c);
                if d < bd {
                    bd = d;
                    bi = i;
                }
            }
            bi
        })
        .collect();
    Clustering { assignments, centers, cost, work: total_work }
}

/// Total distance from every point to its nearest medoid.
fn medoid_cost(points: &[Vec<f64>], medoids: &[usize]) -> f64 {
    points
        .iter()
        .map(|p| {
            medoids
                .iter()
                .map(|&m| Metric::Euclidean.distance(p, &points[m]))
                .fold(f64::INFINITY, f64::min)
        })
        .sum()
}

/// Samples `k` distinct indices from `0..n`.
fn sample_distinct(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut chosen = Vec::with_capacity(k);
    while chosen.len() < k {
        let c = rng.random_range(0..n);
        if !chosen.contains(&c) {
            chosen.push(c);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.1;
            pts.push(vec![0.0 + j]);
            pts.push(vec![50.0 + j]);
        }
        pts
    }

    #[test]
    fn recovers_two_blobs() {
        let pts = blobs();
        let c = clarans(&pts, &ClaransConfig { k: 2, ..ClaransConfig::default() });
        assert_eq!(c.k(), 2);
        let sizes = c.sizes();
        assert_eq!(sizes, vec![20, 20]);
        // Medoids are actual data points, one per blob.
        let mut medoid_blobs: Vec<bool> = c.centers.iter().map(|m| m[0] > 25.0).collect();
        medoid_blobs.sort_unstable();
        assert_eq!(medoid_blobs, vec![false, true]);
        // Cost near within-blob spread only.
        assert!(c.cost < 20.0, "cost {}", c.cost);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs();
        let cfg = ClaransConfig { k: 2, seed: 11, ..ClaransConfig::default() };
        assert_eq!(clarans(&pts, &cfg), clarans(&pts, &cfg));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(clarans(&[], &ClaransConfig::default()).k(), 0);
        let one = vec![vec![1.0]];
        let c = clarans(&one, &ClaransConfig { k: 3, ..ClaransConfig::default() });
        assert_eq!(c.k(), 1);
        assert_eq!(c.cost, 0.0);
        // k == n: every point its own medoid, cost 0.
        let pts = vec![vec![1.0], vec![5.0]];
        let c = clarans(&pts, &ClaransConfig { k: 2, ..ClaransConfig::default() });
        assert_eq!(c.cost, 0.0);
    }

    #[test]
    fn more_search_never_hurts() {
        let pts = blobs();
        let quick = clarans(&pts, &ClaransConfig { k: 2, num_local: 1, max_neighbors: 2, seed: 3 });
        let thorough =
            clarans(&pts, &ClaransConfig { k: 2, num_local: 4, max_neighbors: 200, seed: 3 });
        assert!(thorough.cost <= quick.cost);
    }
}
