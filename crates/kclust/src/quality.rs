//! Shared clustering result type and quality metrics.

use dar_core::Metric;

/// A hard clustering of a point set.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// `assignments[i]` is the cluster of point `i`.
    pub assignments: Vec<usize>,
    /// Cluster representatives (centroids for k-means, medoids for
    /// CLARANS), indexed by cluster id.
    pub centers: Vec<Vec<f64>>,
    /// Total cost at convergence: sum over points of the squared Euclidean
    /// distance to the center (k-means) or the plain distance (CLARANS).
    pub cost: f64,
    /// Iterations (k-means) or examined neighbors (CLARANS) spent.
    pub work: usize,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Per-cluster population.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centers.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

/// Sum of squared Euclidean distances from each point to its cluster's
/// centroid (recomputed from the assignment, not the stored centers).
pub fn sse(points: &[Vec<f64>], assignments: &[usize], k: usize) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let dims = points[0].len();
    let mut sums = vec![vec![0.0; dims]; k];
    let mut counts = vec![0usize; k];
    for (p, &a) in points.iter().zip(assignments) {
        counts[a] += 1;
        for (s, &v) in sums[a].iter_mut().zip(p) {
            *s += v;
        }
    }
    let centroids: Vec<Vec<f64>> = sums
        .into_iter()
        .zip(&counts)
        .map(|(s, &c)| if c == 0 { s } else { s.into_iter().map(|v| v / c as f64).collect() })
        .collect();
    points
        .iter()
        .zip(assignments)
        .map(|(p, &a)| Metric::Euclidean.distance_sq(p, &centroids[a]))
        .sum()
}

/// Mean RMS diameter over non-singleton clusters (the paper's Dfn 4.2
/// density measure, averaged).
pub fn mean_diameter(points: &[Vec<f64>], assignments: &[usize], k: usize) -> f64 {
    use dar_core::Cf;
    if points.is_empty() {
        return 0.0;
    }
    let dims = points[0].len();
    let mut cfs = vec![Cf::empty(dims); k];
    for (p, &a) in points.iter().zip(assignments) {
        cfs[a].add_point(p);
    }
    let diameters: Vec<f64> = cfs.iter().filter(|c| c.n() >= 2).map(Cf::diameter).collect();
    if diameters.is_empty() {
        0.0
    } else {
        diameters.iter().sum::<f64>() / diameters.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Vec<f64>> {
        vec![vec![0.0], vec![2.0], vec![10.0], vec![12.0]]
    }

    #[test]
    fn sse_of_perfect_assignment() {
        // Clusters {0,2} and {10,12}: centroids 1 and 11, SSE = 4·1 = 4.
        let assignments = vec![0, 0, 1, 1];
        assert!((sse(&pts(), &assignments, 2) - 4.0).abs() < 1e-12);
        // Collapsing everything into one cluster is much worse.
        let one = vec![0, 0, 0, 0];
        assert!(sse(&pts(), &one, 1) > 100.0);
        assert_eq!(sse(&[], &[], 1), 0.0);
    }

    #[test]
    fn mean_diameter_ignores_singletons() {
        let assignments = vec![0, 0, 1, 2];
        // Cluster 0 = {0,2}: diameter 2; clusters 1 and 2 are singletons.
        assert!((mean_diameter(&pts(), &assignments, 3) - 2.0).abs() < 1e-12);
        assert_eq!(mean_diameter(&[], &[], 1), 0.0);
    }

    #[test]
    fn clustering_sizes() {
        let c = Clustering {
            assignments: vec![0, 1, 1, 1],
            centers: vec![vec![0.0], vec![11.0]],
            cost: 0.0,
            work: 1,
        };
        assert_eq!(c.k(), 2);
        assert_eq!(c.sizes(), vec![1, 3]);
    }
}
