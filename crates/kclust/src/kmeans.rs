//! Lloyd's k-means with k-means++ seeding and restarts.

use crate::quality::Clustering;
use dar_core::Metric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// Independent restarts; the lowest-SSE result wins.
    pub restarts: usize,
    /// RNG seed (deterministic).
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig { k: 8, max_iters: 50, restarts: 4, seed: 42 }
    }
}

/// Runs k-means over `points`. `k` is clamped to the point count; an empty
/// input yields an empty clustering.
///
/// ```
/// use kclust::{kmeans, KMeansConfig};
/// let points: Vec<Vec<f64>> =
///     (0..20).map(|i| vec![if i % 2 == 0 { 0.0 } else { 9.0 } + (i % 3) as f64 * 0.1]).collect();
/// let c = kmeans(&points, &KMeansConfig { k: 2, ..KMeansConfig::default() });
/// assert_eq!(c.k(), 2);
/// assert_eq!(c.sizes(), vec![10, 10]);
/// ```
pub fn kmeans(points: &[Vec<f64>], config: &KMeansConfig) -> Clustering {
    if points.is_empty() || config.k == 0 {
        return Clustering { assignments: Vec::new(), centers: Vec::new(), cost: 0.0, work: 0 };
    }
    let k = config.k.min(points.len());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best: Option<Clustering> = None;
    for _ in 0..config.restarts.max(1) {
        let candidate = run_once(points, k, config.max_iters, &mut rng);
        if best.as_ref().is_none_or(|b| candidate.cost < b.cost) {
            best = Some(candidate);
        }
    }
    best.expect("at least one restart ran")
}

fn run_once(points: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut StdRng) -> Clustering {
    let mut centers = plus_plus_seeds(points, k, rng);
    let mut assignments = vec![0usize; points.len()];
    let mut work = 0usize;
    for _ in 0..max_iters.max(1) {
        work += 1;
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let nearest = nearest_center(p, &centers);
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        // Update.
        let dims = points[0].len();
        let mut sums = vec![vec![0.0; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, (sum, &count)) in centers.iter_mut().zip(sums.iter().zip(&counts)) {
            if count > 0 {
                for (cv, &sv) in c.iter_mut().zip(sum) {
                    *cv = sv / count as f64;
                }
            } else {
                // Re-seed an emptied cluster at the point farthest from its
                // center (standard empty-cluster repair).
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let da = Metric::Euclidean.distance_sq(a, &centers_snapshot(c));
                        let db = Metric::Euclidean.distance_sq(b, &centers_snapshot(c));
                        da.total_cmp(&db)
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                c.clone_from(&points[far]);
            }
        }
        if !changed {
            break;
        }
    }
    let cost = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| Metric::Euclidean.distance_sq(p, &centers[a]))
        .sum();
    Clustering { assignments, centers, cost, work }
}

fn centers_snapshot(c: &[f64]) -> Vec<f64> {
    c.to_vec()
}

fn nearest_center(p: &[f64], centers: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d = Metric::Euclidean.distance_sq(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// k-means++: first seed uniform, each next seed with probability
/// proportional to its squared distance from the nearest existing seed.
fn plus_plus_seeds(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(points[rng.random_range(0..points.len())].clone());
    let mut dist_sq: Vec<f64> =
        points.iter().map(|p| Metric::Euclidean.distance_sq(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = dist_sq.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a seed; pick uniformly.
            rng.random_range(0..points.len())
        } else {
            let mut x = rng.random::<f64>() * total;
            let mut chosen = points.len() - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                x -= d;
                if x <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centers.push(points[next].clone());
        for (d, p) in dist_sq.iter_mut().zip(points) {
            let nd = Metric::Euclidean.distance_sq(p, centers.last().expect("just pushed"));
            if nd < *d {
                *d = nd;
            }
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::sse;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..30 {
            let j = (i % 5) as f64 * 0.1;
            pts.push(vec![0.0 + j, 0.0]);
            pts.push(vec![100.0 + j, 0.0]);
            pts.push(vec![0.0 + j, 100.0]);
        }
        pts
    }

    #[test]
    fn recovers_three_blobs() {
        let pts = blobs();
        let c = kmeans(&pts, &KMeansConfig { k: 3, ..KMeansConfig::default() });
        assert_eq!(c.k(), 3);
        let sizes = c.sizes();
        assert!(sizes.iter().all(|&s| s == 30), "balanced blobs: {sizes:?}");
        // SSE near the within-blob jitter only.
        assert!(c.cost < 30.0, "cost {}", c.cost);
        assert!((sse(&pts, &c.assignments, 3) - c.cost).abs() < 1e-9);
        // Each blob center recovered within jitter.
        for target in [[0.2, 0.0], [100.2, 0.0], [0.2, 100.0]] {
            assert!(
                c.centers.iter().any(|ctr| Metric::Euclidean.distance(ctr, &target) < 1.0),
                "no center near {target:?}: {:?}",
                c.centers
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = blobs();
        let cfg = KMeansConfig { k: 3, seed: 7, ..KMeansConfig::default() };
        assert_eq!(kmeans(&pts, &cfg), kmeans(&pts, &cfg));
    }

    #[test]
    fn degenerate_inputs() {
        let empty = kmeans(&[], &KMeansConfig::default());
        assert_eq!(empty.k(), 0);
        let zero_k = kmeans(&blobs(), &KMeansConfig { k: 0, ..KMeansConfig::default() });
        assert_eq!(zero_k.k(), 0);
        // k larger than the point count clamps.
        let pts = vec![vec![1.0], vec![2.0]];
        let c = kmeans(&pts, &KMeansConfig { k: 10, ..KMeansConfig::default() });
        assert_eq!(c.k(), 2);
        assert!(c.cost < 1e-12);
        // Identical points don't break seeding.
        let same = vec![vec![3.0]; 5];
        let c = kmeans(&same, &KMeansConfig { k: 2, ..KMeansConfig::default() });
        assert_eq!(c.assignments.len(), 5);
    }
}
