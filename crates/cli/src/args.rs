//! A tiny `--flag value` argument parser (no positional arguments, no
//! dependencies).

use crate::CliError;
use std::collections::HashMap;

/// Parsed flags: every argument must come as `--name value` except the
/// boolean switches, which stand alone (`--rescan`).
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: &[&str] = &["rescan", "refine", "allow-partial", "prune-redundant"];

/// Parses `--flag value` pairs.
pub fn parse(argv: &[String]) -> Result<Args, CliError> {
    let mut args = Args::default();
    let mut i = 0;
    while i < argv.len() {
        let token = &argv[i];
        let Some(name) = token.strip_prefix("--") else {
            return Err(CliError::new(format!("expected --flag, got {token:?}")));
        };
        if SWITCHES.contains(&name) {
            args.switches.push(name.to_string());
            i += 1;
            continue;
        }
        let Some(value) = argv.get(i + 1) else {
            return Err(CliError::new(format!("flag --{name} needs a value")));
        };
        args.values.insert(name.to_string(), value.clone());
        i += 2;
    }
    Ok(args)
}

impl Args {
    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, CliError> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError::new(format!("missing required flag --{name}")))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An optional numeric flag with a default.
    pub fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => {
                raw.parse().map_err(|_| CliError::new(format!("--{name}: cannot parse {raw:?}")))
            }
        }
    }

    /// Whether a boolean switch was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_numbers_and_switches() {
        let a = parse(&argv(&["--rows", "100", "--out", "x.csv", "--rescan"])).unwrap();
        assert_eq!(a.required("out").unwrap(), "x.csv");
        assert_eq!(a.number::<usize>("rows", 0).unwrap(), 100);
        assert_eq!(a.number::<f64>("support", 0.5).unwrap(), 0.5);
        assert!(a.switch("rescan"));
        assert!(!a.switch("refine"));
        assert_eq!(a.optional("nope"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&argv(&["rows", "100"])).is_err());
        assert!(parse(&argv(&["--rows"])).is_err());
        let a = parse(&argv(&["--rows", "abc"])).unwrap();
        assert!(a.number::<usize>("rows", 0).is_err());
        assert!(a.required("out").is_err());
    }
}
