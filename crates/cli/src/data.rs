//! Shared data-loading helpers used by every subcommand (and available to
//! library consumers embedding the CLI's behaviour).

use crate::CliError;
use dar_core::{Metric, Partitioning, Relation};
use mining::ClusterDistance;
use std::path::Path;

/// Loads a CSV relation, tagging errors with the path.
pub fn load(path: &str) -> Result<Relation, CliError> {
    datagen::csv::read_csv(Path::new(path)).map_err(|e| CliError::new(format!("{path}: {e}")))
}

/// The per-attribute partitioning every command uses (Euclidean for
/// interval/ordinal attributes, discrete for nominal ones).
pub fn default_partitioning(relation: &Relation) -> Partitioning {
    Partitioning::per_attribute(relation.schema(), Metric::Euclidean)
}

/// Parses a `--metric` value (`d0`/`d1`/`d2`) into a [`ClusterDistance`].
pub fn parse_cluster_metric(name: &str) -> Result<ClusterDistance, CliError> {
    match name {
        "d0" => Ok(ClusterDistance::D0),
        "d1" => Ok(ClusterDistance::D1),
        "d2" => Ok(ClusterDistance::D2),
        other => Err(CliError::new(format!("unknown metric {other:?} (expected d0, d1, or d2)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_parse() {
        assert_eq!(parse_cluster_metric("d0").unwrap(), ClusterDistance::D0);
        assert_eq!(parse_cluster_metric("d1").unwrap(), ClusterDistance::D1);
        assert_eq!(parse_cluster_metric("d2").unwrap(), ClusterDistance::D2);
        assert!(parse_cluster_metric("d7").is_err());
    }

    #[test]
    fn load_reports_the_path() {
        let err = load("/nonexistent/definitely-missing.csv").unwrap_err();
        assert!(err.to_string().contains("definitely-missing.csv"));
    }
}
