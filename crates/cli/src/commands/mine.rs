//! `dar mine` — the full two-phase DAR pipeline over a CSV relation.

use crate::args::Args;
use crate::commands::{apply_rank_flags, default_partitioning, load};
use crate::CliError;
use dar_core::suggest_initial_thresholds;
use dar_rank::RankSpec;
use mining::describe::{describe_rule, rules_to_tsv};
use mining::{DarConfig, DarMiner, DensitySpec, Measure, RuleQuery};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let relation = load(args.required("input")?)?;
    let partitioning = default_partitioning(&relation);

    let support: f64 = args.number("support", 0.05)?;
    let threshold_frac: f64 = args.number("threshold-frac", 0.05)?;
    let memory_kb: usize = args.number("memory-kb", 1024)?;
    let density_factor: f64 = args.number("density-factor", 1.5)?;
    let degree_factor: f64 = args.number("degree-factor", 2.0)?;
    let top: usize = args.number("top", 20)?;
    let metric = crate::data::parse_cluster_metric(args.optional("metric").unwrap_or("d2"))?;

    let thresholds = suggest_initial_thresholds(&relation, &partitioning, threshold_frac)?;
    let mut config = DarConfig {
        initial_thresholds: Some(thresholds),
        min_support_frac: support,
        metric,
        rescan_candidate_frequency: args.switch("rescan"),
        refine_clusters: args.switch("refine"),
        threads: args.number("threads", 0)?,
        query: RuleQuery {
            density: DensitySpec::Auto { factor: density_factor },
            degree_factor,
            max_antecedent: args.number("max-antecedent", 2)?,
            max_consequent: args.number("max-consequent", 1)?,
            ..RuleQuery::default()
        },
        ..DarConfig::default()
    };
    config.birch.memory_budget = memory_kb << 10;
    apply_rank_flags(args, &mut config.query)?;
    if config.query.budget_ms != 0 {
        return Err(CliError::new(
            "--budget-ms (anytime mode) needs cached Phase II artifacts — \
             use `dar session`, `dar serve`, or `dar cluster-coordinator`",
        ));
    }
    let rank_query = config.query.clone();

    let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");
    let s = &result.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "phase I  {:>8.3}s  {} clusters ({} frequent at s0={})",
        s.phase1.as_secs_f64(),
        s.clusters_total,
        s.clusters_frequent,
        s.s0,
    );
    let _ = writeln!(
        out,
        "phase II {:>8.3}s  {} edges, {} cliques ({} non-trivial), {} rules{}",
        s.phase2.as_secs_f64(),
        s.graph_edges,
        s.cliques,
        s.nontrivial_cliques,
        s.rules,
        if s.rules_truncated { " (truncated)" } else { "" },
    );
    // Rank the mined rules (evaluate → filter → order → prune → top-k).
    // Under the default knobs this reproduces the historical order.
    let spec = RankSpec::from_query(&rank_query, result.graph.clusters(), relation.len() as u64);
    let ranked = dar_rank::rank(result.rules.clone(), &spec);
    if ranked.rules.len() != ranked.rules_in || ranked.pruned > 0 {
        let _ = writeln!(
            out,
            "rank     {} → {} of {} rules{}",
            rank_query.measure,
            ranked.rules.len(),
            ranked.rules_in,
            if ranked.pruned > 0 {
                format!(" ({} pruned as redundant)", ranked.pruned)
            } else {
                String::new()
            },
        );
    }
    // Exact frequencies follow their rule through the reordering.
    let freq_of: HashMap<(&[usize], &[usize]), u64> = result
        .rules
        .iter()
        .zip(&result.rule_frequencies)
        .map(|(r, &f)| ((r.antecedent.as_slice(), r.consequent.as_slice()), f))
        .collect();
    let frequencies: Vec<u64> = ranked
        .rules
        .iter()
        .filter_map(|r| freq_of.get(&(r.antecedent.as_slice(), r.consequent.as_slice())).copied())
        .collect();
    let _ = writeln!(out);
    for (i, rule) in ranked.rules.iter().take(top).enumerate() {
        let freq = frequencies.get(i).map(|f| format!("  [frequency {f}]")).unwrap_or_default();
        let value = match rank_query.measure {
            Measure::Degree => String::new(),
            m => format!("  [{m} {:.4}]", ranked.values[i]),
        };
        let _ = writeln!(
            out,
            "{}{value}{freq}",
            describe_rule(rule, result.graph.clusters(), relation.schema(), &partitioning)
        );
    }
    if ranked.rules.len() > top {
        let _ = writeln!(out, "… {} more rules", ranked.rules.len() - top);
    }
    if let Some(path) = args.optional("out") {
        let tsv = rules_to_tsv(
            &ranked.rules,
            &frequencies,
            result.graph.clusters(),
            relation.schema(),
            &partitioning,
        );
        crate::commands::atomic_write(path, &tsv)?;
        let _ = writeln!(out, "wrote {} rules to {path}", ranked.rules.len());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn with_csv(test: &str, f: impl FnOnce(&str)) {
        let dir = std::env::temp_dir().join(format!("dar_cli_mine_{test}"));
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("ins.csv");
        let relation = datagen::insurance::insurance_relation(3_000, 3);
        datagen::csv::write_csv(&relation, &csv).unwrap();
        f(csv.to_str().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mines_rules_with_rescan() {
        with_csv("rescan", |csv| {
            let a = parse(&argv(&[
                "--input",
                csv,
                "--support",
                "0.1",
                "--threshold-frac",
                "0.1",
                "--top",
                "3",
                "--threads",
                "4",
                "--rescan",
            ]))
            .unwrap();
            let out = run(&a).unwrap();
            assert!(out.contains("phase I"), "{out}");
            assert!(out.contains('⇒'), "{out}");
            assert!(out.contains("frequency"), "{out}");
        });
    }

    #[test]
    fn out_flag_writes_tsv() {
        with_csv("out", |csv| {
            let tsv_path = std::env::temp_dir().join("dar_cli_mine_out/rules.tsv");
            let a = parse(&argv(&[
                "--input",
                csv,
                "--support",
                "0.1",
                "--threshold-frac",
                "0.1",
                "--out",
                tsv_path.to_str().unwrap(),
            ]))
            .unwrap();
            let out = run(&a).unwrap();
            assert!(out.contains("wrote"), "{out}");
            let tsv = std::fs::read_to_string(&tsv_path).unwrap();
            assert!(tsv.starts_with("antecedent\tconsequent"));
            assert!(tsv.lines().count() >= 2);
        });
    }

    #[test]
    fn rank_flags_reorder_truncate_and_validate() {
        with_csv("rank", |csv| {
            let a = parse(&argv(&[
                "--input",
                csv,
                "--support",
                "0.1",
                "--threshold-frac",
                "0.1",
                "--measure",
                "lift",
                "--top-k",
                "2",
                "--prune-redundant",
            ]))
            .unwrap();
            let out = run(&a).unwrap();
            assert!(out.contains("[lift"), "ranked rules carry their measure value: {out}");
            // Anytime mode needs cached artifacts — the one-shot path
            // refuses rather than silently mining exactly.
            let a = parse(&argv(&["--input", csv, "--budget-ms", "5"])).unwrap();
            let err = run(&a).unwrap_err();
            assert!(err.to_string().contains("budget-ms"), "{err}");
            let a = parse(&argv(&["--input", csv, "--measure", "zorp"])).unwrap();
            let err = run(&a).unwrap_err();
            assert!(err.to_string().contains("zorp"), "{err}");
        });
    }

    #[test]
    fn metric_flag_is_validated() {
        with_csv("metric", |csv| {
            let a = parse(&argv(&["--input", csv, "--metric", "d7"])).unwrap();
            assert!(run(&a).is_err());
            let a = parse(&argv(&["--input", csv, "--metric", "d1", "--threshold-frac", "0.1"]))
                .unwrap();
            assert!(run(&a).is_ok());
        });
    }
}
