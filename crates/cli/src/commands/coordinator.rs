//! `dar cluster-coordinator` — run the distributed front-end: fan ingest
//! batches across `dar serve` shards and serve Phase II from the merged
//! ACF summary.
//!
//! ```text
//! dar serve --addr 127.0.0.1:7001 --attrs 3 --wal-path shard0.wal &
//! dar serve --addr 127.0.0.1:7002 --attrs 3 --wal-path shard1.wal &
//! dar cluster-coordinator --addr 127.0.0.1:7878 \
//!     --shards 127.0.0.1:7001,127.0.0.1:7002
//! ```
//!
//! The engine flags (`--support`, `--metric`, `--memory-kb`,
//! `--initial-threshold`, `--threads`) must match the shards' — the
//! partitioning itself travels inside the shard snapshots, so there is
//! no `--attrs` here. The
//! coordinator mines the merged summary under this configuration, and the
//! distributed-equality guarantee (same rules as one `dar serve` over the
//! same batches) only holds when every engine agrees. With `--rescan`
//! (requires shards started with `--wal-path`), each query's rules carry
//! exact global frequencies computed the SON way: every shard re-reads
//! its own write-ahead log against the merged clusters and the
//! coordinator sums the disjoint counts.
//!
//! Fault-tolerance flags: `--allow-partial` serves degraded (coverage-
//! annotated) answers from the live shards while others are down;
//! `--deadline-ms` bounds one shard request including every retry (the
//! blackhole bound); `--down-after` sets how many consecutive transport
//! failures demote a shard to fast-fail; `--probe-interval-ms` /
//! `--probe-timeout-ms` tune the background prober that verifies
//! recovered shards before they serve again.

use crate::args::Args;
use crate::data::parse_cluster_metric;
use crate::CliError;
use dar_cluster::{ClusterConfig, Coordinator, CoordinatorServer};
use dar_engine::EngineConfig;
use std::time::Duration;

/// Runs the command: connect to every shard, serve until a wire
/// `shutdown`, then report.
pub fn run(args: &Args) -> Result<String, CliError> {
    let addr = args.required("addr")?.to_string();
    let config = build(args)?;
    let shard_count = config.shards.len();
    let coordinator =
        Coordinator::connect(config).map_err(|e| CliError::new(format!("shard handshake: {e}")))?;
    let handle = CoordinatorServer::start(coordinator, &addr)
        .map_err(|e| CliError::new(format!("bind {addr}: {e}")))?;
    // Announce on stderr immediately — stdout is the post-shutdown report.
    eprintln!("dar cluster-coordinator: listening on {} ({shard_count} shards)", handle.addr());
    let coordinator = std::sync::Arc::clone(handle.coordinator());
    handle.join();
    let (batches, tuples) = {
        let guard = coordinator.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.routed()
    };
    let rounds = {
        let guard = coordinator.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.rounds()
    };
    Ok(format!(
        "cluster-coordinator: {batches} batches ({tuples} tuples) routed across \
         {shard_count} shards, {rounds} merge rounds\n"
    ))
}

/// Builds the cluster configuration from the flags. The engine flags
/// mirror `dar serve`'s `build` so an operator can copy one flag set to
/// both sides.
pub fn build(args: &Args) -> Result<ClusterConfig, CliError> {
    let shards: Vec<String> = args
        .required("shards")?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if shards.is_empty() {
        return Err(CliError::new("--shards needs at least one host:port"));
    }

    let threads = args.number::<usize>("threads", 0)?;
    let mut engine = EngineConfig {
        min_support_frac: args.number("support", 0.05)?,
        metric: parse_cluster_metric(args.optional("metric").unwrap_or("d2"))?,
        threads,
        ..EngineConfig::default()
    };
    engine.birch.memory_budget = args.number::<usize>("memory-kb", 1024)? << 10;
    if let Some(raw) = args.optional("initial-threshold") {
        let threshold: f64 = raw
            .parse()
            .map_err(|_| CliError::new(format!("--initial-threshold: cannot parse {raw:?}")))?;
        engine.birch.initial_threshold = threshold;
    }

    let mut base_query = mining::RuleQuery::default();
    crate::commands::apply_rank_flags(args, &mut base_query)?;

    let timeout = Duration::from_millis(args.number::<u64>("timeout-ms", 30_000)?);
    let defaults = ClusterConfig::default();
    Ok(ClusterConfig {
        shards,
        timeout,
        rescan: args.switch("rescan"),
        engine,
        threads: if threads == 0 { dar_par::available_parallelism() } else { threads },
        queue_depth: args.number::<usize>("queue", 64)?.max(1),
        read_timeout: timeout,
        write_timeout: timeout,
        metrics_addr: args.optional("metrics-addr").map(String::from),
        allow_partial: args.switch("allow-partial"),
        probe_interval: Duration::from_millis(
            args.number::<u64>("probe-interval-ms", defaults.probe_interval.as_millis() as u64)?,
        ),
        probe_timeout: Duration::from_millis(
            args.number::<u64>("probe-timeout-ms", defaults.probe_timeout.as_millis() as u64)?,
        ),
        deadline: Duration::from_millis(
            args.number::<u64>("deadline-ms", defaults.deadline.as_millis() as u64)?,
        ),
        down_after: args.number::<u32>("down-after", defaults.down_after)?.max(1),
        base_query,
        ..defaults
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn build_parses_shard_list_and_engine_flags() {
        let args = parse(&argv(&[
            "--shards",
            "127.0.0.1:7001, 127.0.0.1:7002,",
            "--support",
            "0.2",
            "--metric",
            "d0",
            "--threads",
            "2",
            "--timeout-ms",
            "500",
            "--rescan",
            "--measure",
            "jaccard",
            "--min-measure",
            "0.25",
        ]))
        .unwrap();
        let config = build(&args).unwrap();
        assert_eq!(config.shards, vec!["127.0.0.1:7001", "127.0.0.1:7002"]);
        assert_eq!(config.engine.min_support_frac, 0.2);
        assert_eq!(config.threads, 2);
        assert_eq!(config.timeout, Duration::from_millis(500));
        assert!(config.rescan);
        assert_eq!(config.base_query.measure, mining::Measure::Jaccard);
        assert_eq!(config.base_query.min_measure, Some(0.25));
        // Fault-tolerance knobs keep their library defaults when unset.
        let defaults = ClusterConfig::default();
        assert!(!config.allow_partial);
        assert_eq!(config.probe_interval, defaults.probe_interval);
        assert_eq!(config.probe_timeout, defaults.probe_timeout);
        assert_eq!(config.deadline, defaults.deadline);
        assert_eq!(config.down_after, defaults.down_after);
    }

    #[test]
    fn build_parses_the_fault_tolerance_flags() {
        let args = parse(&argv(&[
            "--shards",
            "127.0.0.1:7001",
            "--allow-partial",
            "--probe-interval-ms",
            "100",
            "--probe-timeout-ms",
            "50",
            "--deadline-ms",
            "1500",
            "--down-after",
            "2",
        ]))
        .unwrap();
        let config = build(&args).unwrap();
        assert!(config.allow_partial);
        assert_eq!(config.probe_interval, Duration::from_millis(100));
        assert_eq!(config.probe_timeout, Duration::from_millis(50));
        assert_eq!(config.deadline, Duration::from_millis(1500));
        assert_eq!(config.down_after, 2);
    }

    #[test]
    fn build_rejects_an_empty_shard_list() {
        let args = parse(&argv(&["--shards", " ,,"])).unwrap();
        assert!(build(&args).is_err());
        let args = parse(&argv(&[])).unwrap();
        assert!(build(&args).is_err(), "--shards is required");
    }
}
