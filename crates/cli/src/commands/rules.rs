//! `dar rules` — re-run Phase II from persisted cluster summaries, no data
//! access. This is the workflow the ACF design enables (Theorem 6.1):
//! scan once with `dar cluster --save`, then sweep thresholds offline.

use crate::args::Args;
use crate::CliError;
use dar_core::ClusterSummary;
use mining::clique::{maximal_cliques, non_trivial};
use mining::describe::describe_rule;
use mining::graph::{ClusterDistance, ClusteringGraph, GraphConfig};
use mining::pipeline::auto_density_thresholds;
use mining::rules::{generate_dars_capped, RuleConfig};
use std::fmt::Write as _;

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let path = args.required("clusters")?;
    let bytes = std::fs::read(path).map_err(|e| CliError::new(format!("{path}: {e}")))?;
    // Lenient unseal (legacy unsealed files pass through), then sniff:
    // persist-v2 binary or pre-v2 text.
    let (body, _) =
        dar_durable::unseal_bytes(&bytes).map_err(|e| CliError::new(format!("{path}: {e}")))?;
    let clusters = mining::persist::decode_clusters(body, &dar_par::ThreadPool::resolve(0))?;
    if clusters.is_empty() {
        return Ok("no clusters in the file; nothing to mine\n".to_string());
    }
    let num_sets = clusters[0].acf.num_sets();

    // |r| per set = every tuple lives in exactly one cluster of each set.
    let tuples: u64 = clusters.iter().filter(|c| c.set == 0).map(|c| c.support()).sum();
    let support: f64 = args.number("support", 0.05)?;
    let s0 = ((support * tuples as f64).ceil() as u64).max(1);
    let density_factor: f64 = args.number("density-factor", 1.5)?;
    let degree_factor: f64 = args.number("degree-factor", 2.0)?;
    let top: usize = args.number("top", 20)?;

    let frequent: Vec<ClusterSummary> =
        clusters.iter().filter(|c| c.is_frequent(s0)).cloned().collect();
    let density = auto_density_thresholds(&clusters, &[], num_sets, density_factor);
    let graph = ClusteringGraph::build(
        frequent,
        &GraphConfig {
            metric: ClusterDistance::D2,
            density_thresholds: density.clone(),
            prune_poor_density: true,
        },
    );
    let (cliques, _) = maximal_cliques(graph.adjacency(), 100_000);
    let (rules, truncated) = generate_dars_capped(
        &graph,
        &cliques,
        &RuleConfig {
            metric: ClusterDistance::D2,
            degree_thresholds: density.iter().map(|d| d * degree_factor).collect(),
            max_antecedent: args.number("max-antecedent", 2)?,
            max_consequent: args.number("max-consequent", 1)?,
            ..RuleConfig::default()
        },
    );

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} clusters loaded ({} frequent at s0={s0}, inferred |r|={tuples}); \
         {} edges, {} non-trivial cliques, {} rules{}\n",
        clusters.len(),
        graph.len(),
        graph.edges,
        non_trivial(&cliques),
        rules.len(),
        if truncated { " (truncated)" } else { "" },
    );
    // Without the original schema, synthesize attribute names a0..aN from
    // the layout so descriptions stay readable.
    let max_attr: usize = (0..num_sets).map(|s| clusters[0].acf.image(s).dims()).sum();
    let schema = dar_core::Schema::interval_attrs(max_attr);
    let partitioning = synth_partitioning(&schema, &clusters, num_sets);
    for rule in rules.iter().take(top) {
        let _ = writeln!(out, "{}", describe_rule(rule, graph.clusters(), &schema, &partitioning));
    }
    Ok(out)
}

/// Reconstructs a partitioning shape (set → consecutive attribute ids)
/// from the cluster layout; names are positional, not original.
fn synth_partitioning(
    schema: &dar_core::Schema,
    clusters: &[ClusterSummary],
    num_sets: usize,
) -> dar_core::Partitioning {
    let mut sets = Vec::with_capacity(num_sets);
    let mut next = 0usize;
    for s in 0..num_sets {
        let dims = clusters[0].acf.image(s).dims();
        sets.push(dar_core::AttrSet {
            attrs: (next..next + dims).collect(),
            metric: dar_core::Metric::Euclidean,
        });
        next += dims;
    }
    dar_core::Partitioning::new(schema, sets).expect("consecutive sets are disjoint")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn phase2_from_saved_clusters() {
        // Save clusters via the cluster command, then mine rules from them.
        let dir = std::env::temp_dir().join("dar_cli_rules_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("ins.csv");
        let acf = dir.join("clusters.acf");
        let relation = datagen::insurance::insurance_relation(3_000, 3);
        datagen::csv::write_csv(&relation, &csv).unwrap();

        let a = parse(&argv(&[
            "--input",
            csv.to_str().unwrap(),
            "--threshold-frac",
            "0.1",
            "--save",
            acf.to_str().unwrap(),
        ]))
        .unwrap();
        crate::commands::cluster::run(&a).unwrap();

        let a =
            parse(&argv(&["--clusters", acf.to_str().unwrap(), "--support", "0.1", "--top", "5"]))
                .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("clusters loaded"), "{out}");
        assert!(out.contains("inferred |r|=3000"), "{out}");
        assert!(out.contains('⇒'), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_errors() {
        let a = parse(&argv(&["--clusters", "/nonexistent.acf"])).unwrap();
        assert!(run(&a).is_err());
    }
}
