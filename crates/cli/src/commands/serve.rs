//! `dar serve` — run the network serving layer over a long-lived
//! [`dar_engine::DarEngine`]: a std-only threaded TCP server speaking
//! the newline-delimited JSON protocol (`ingest`, `query`, `clusters`,
//! `stats`, `snapshot`, `shutdown`).
//!
//! The command binds `--addr`, announces the bound address on stderr
//! (so scripts using port 0 can discover it), then blocks until a wire
//! `shutdown` request arrives; the final counters are printed on exit.
//!
//! ```text
//! dar serve --addr 127.0.0.1:7878 --attrs 3 --threads 4 \
//!     --snapshot-path epoch.snap --snapshot-secs 30 --wal-path ingest.wal
//! ```
//!
//! With `--wal-path` and/or `--snapshot-path`, boot first *recovers*:
//! the newest verifiable snapshot is restored (corrupt slots are skipped
//! for the previous good one) and the WAL suffix is replayed, so a
//! killed server restarts with every acknowledged batch intact.
//!
//! With `--window-batches N`, the server mines a **sliding window**
//! instead of all history: every `N` ingested batches seal a window, at
//! most `--window-slots` windows stay live (the open one plus the sealed
//! ring), and the oldest retires under `--window-policy remerge|subtract`.
//! Windowed servers additionally speak `advance` (explicit seal) and
//! `subscribe` (live rule-churn events); WAL frames carry the window
//! sequence so recovery rebuilds the exact ring.

use crate::args::Args;
use crate::data::parse_cluster_metric;
use crate::CliError;
use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{
    recover_backend, EngineBackend, RetirePolicy, ServeConfig, ServeSummary, Server, WindowSpec,
    WindowedEngine,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Runs the command: recover, serve until a wire `shutdown`, then report.
pub fn run(args: &Args) -> Result<String, CliError> {
    let addr = args.required("addr")?.to_string();
    let (mut backend, serve_config) = build(args)?;
    if serve_config.snapshot_path.is_some() || serve_config.wal_path.is_some() {
        let (recovered, report) = recover_backend(
            backend,
            Arc::clone(&serve_config.storage),
            serve_config.snapshot_path.as_deref(),
            serve_config.wal_path.as_deref(),
        )
        .map_err(|e| CliError::new(format!("recovery: {e}")))?;
        backend = recovered;
        eprintln!(
            "dar serve: recovered {} tuples (snapshot: {}, wal batches replayed: {}{}{})",
            backend.tuples(),
            report.snapshot_source.map_or_else(|| "none".into(), |s| format!("{s:?}")),
            report.wal_batches_replayed,
            backend.window_span().map_or_else(String::new, |(oldest, open)| format!(
                ", window span {oldest}..={open}"
            )),
            if report.degraded_artifacts() {
                format!(
                    ", routed around damage: {} corrupt snapshot(s), {} torn tail byte(s)",
                    report.corrupt_snapshots_skipped, report.wal_tail_dropped_bytes
                )
            } else {
                String::new()
            },
        );
    }
    let handle = Server::start(backend, &addr, serve_config)
        .map_err(|e| CliError::new(format!("bind {addr}: {e}")))?;
    // Announce on stderr immediately — stdout is the post-shutdown report.
    eprintln!("dar serve: listening on {}", handle.addr());
    if let Some(metrics_addr) = handle.metrics_addr() {
        eprintln!("dar serve: metrics exposition on {metrics_addr}");
    }
    let summary = handle.join()?;
    Ok(report(&summary))
}

/// Parses the sliding-window flags: `None` (the default) is a classic
/// all-history server; `--window-batches` opts into windowed mining.
pub fn window_options(args: &Args) -> Result<Option<(WindowSpec, RetirePolicy)>, CliError> {
    let batches = args.number::<u64>("window-batches", 0)?;
    let slots = args.number::<usize>("window-slots", 0)?;
    let policy = args.optional("window-policy");
    if batches == 0 {
        if slots != 0 || policy.is_some() {
            return Err(CliError::new("--window-slots/--window-policy require --window-batches"));
        }
        return Ok(None);
    }
    let policy = match policy.unwrap_or("remerge") {
        "remerge" => RetirePolicy::Remerge,
        "subtract" => RetirePolicy::Subtract,
        other => {
            return Err(CliError::new(format!(
                "--window-policy: expected remerge or subtract, got {other:?}"
            )));
        }
    };
    Ok(Some((WindowSpec { batches, slots: if slots == 0 { 2 } else { slots } }, policy)))
}

/// Builds the engine backend and server configuration from the flags. The
/// engine is created empty: unlike the one-shot commands there is no
/// input CSV — clients `ingest` over the wire — so the schema is fixed up
/// front by `--attrs` (interval attributes, per-attribute partitioning).
pub fn build(args: &Args) -> Result<(EngineBackend, ServeConfig), CliError> {
    let attrs = args.number::<usize>("attrs", 3)?;
    if attrs == 0 {
        return Err(CliError::new("--attrs must be at least 1"));
    }
    let schema = Schema::interval_attrs(attrs);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);

    // `--threads` sizes both pools: the TCP connection workers and the
    // engine's data-parallel mining regions. 0 (the default) means the
    // host's available parallelism; mining output is byte-identical at
    // every setting.
    let threads = args.number::<usize>("threads", 0)?;
    let mut config = EngineConfig {
        min_support_frac: args.number("support", 0.05)?,
        metric: parse_cluster_metric(args.optional("metric").unwrap_or("d2"))?,
        threads,
        ..EngineConfig::default()
    };
    config.birch.memory_budget = args.number::<usize>("memory-kb", 1024)? << 10;
    if let Some(raw) = args.optional("initial-threshold") {
        let threshold: f64 = raw
            .parse()
            .map_err(|_| CliError::new(format!("--initial-threshold: cannot parse {raw:?}")))?;
        config.birch.initial_threshold = threshold;
    }
    let backend = match window_options(args)? {
        Some((spec, policy)) => {
            EngineBackend::from(WindowedEngine::new(partitioning, config, spec, policy)?)
        }
        None => EngineBackend::from(DarEngine::new(partitioning, config)?),
    };

    // The server's base query: rank knobs a client's `query` does not
    // send fall back to these, and churn events score rules with them.
    let mut base_query = mining::RuleQuery::default();
    crate::commands::apply_rank_flags(args, &mut base_query)?;

    let timeout = Duration::from_millis(args.number::<u64>("timeout-ms", 30_000)?);
    let serve_config = ServeConfig {
        threads: if threads == 0 { dar_par::available_parallelism() } else { threads },
        queue_depth: args.number::<usize>("queue", 64)?.max(1),
        read_timeout: timeout,
        write_timeout: timeout,
        snapshot_path: args.optional("snapshot-path").map(std::path::PathBuf::from),
        snapshot_interval: match args.number::<u64>("snapshot-secs", 0)? {
            0 => None,
            secs => Some(Duration::from_secs(secs)),
        },
        wal_path: args.optional("wal-path").map(std::path::PathBuf::from),
        metrics_addr: args.optional("metrics-addr").map(String::from),
        base_query,
        ..ServeConfig::default()
    };
    if serve_config.snapshot_interval.is_some() && serve_config.snapshot_path.is_none() {
        return Err(CliError::new("--snapshot-secs requires --snapshot-path"));
    }
    Ok((backend, serve_config))
}

/// Formats the post-shutdown report.
fn report(summary: &ServeSummary) -> String {
    let s = &summary.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: {} connections ({} refused), {} requests \
         ({} ingest / {} query / {} clusters / {} stats / {} snapshot / {} shutdown), \
         {} errors, latency p50 {}µs p99 {}µs",
        s.connections,
        s.rejected_connections,
        s.total_requests(),
        s.ingest_requests,
        s.query_requests,
        s.clusters_requests,
        s.stats_requests,
        s.snapshot_requests,
        s.shutdown_requests,
        s.error_responses,
        s.p50_us,
        s.p99_us,
    );
    if s.advance_requests + s.subscribe_requests > 0 {
        let _ = writeln!(
            out,
            "serve: streaming — {} advance / {} subscribe",
            s.advance_requests, s.subscribe_requests,
        );
    }
    if let Some(path) = &summary.snapshot_path {
        let _ = writeln!(out, "serve: final snapshot written to {}", path.display());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;
    use dar_serve::{Client, Request};
    use mining::RuleQuery;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn build_applies_every_flag() {
        let args = parse(&argv(&[
            "--attrs",
            "4",
            "--support",
            "0.2",
            "--metric",
            "d0",
            "--threads",
            "2",
            "--queue",
            "8",
            "--timeout-ms",
            "500",
            "--initial-threshold",
            "1.5",
            "--wal-path",
            "ingest.wal",
            "--metrics-addr",
            "127.0.0.1:0",
            "--measure",
            "lift",
            "--top-k",
            "5",
            "--prune-redundant",
        ]))
        .unwrap();
        let (engine, config) = build(&args).unwrap();
        assert_eq!(engine.required_row_width(), 4);
        assert_eq!(config.threads, 2);
        assert_eq!(config.queue_depth, 8);
        assert_eq!(config.read_timeout, Duration::from_millis(500));
        assert!(config.snapshot_path.is_none());
        assert_eq!(config.wal_path.as_deref(), Some(std::path::Path::new("ingest.wal")));
        assert_eq!(config.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(config.base_query.measure, mining::Measure::Lift);
        assert_eq!(config.base_query.top_k, 5);
        assert!(config.base_query.prune_redundant);
    }

    #[test]
    fn build_rejects_inconsistent_flags() {
        let args = parse(&argv(&["--attrs", "0"])).unwrap();
        assert!(build(&args).is_err());
        let args = parse(&argv(&["--snapshot-secs", "5"])).unwrap();
        let err = build(&args).err().expect("snapshot interval without a path must fail");
        assert!(err.to_string().contains("snapshot-path"));
        let args = parse(&argv(&["--metric", "d7"])).unwrap();
        assert!(build(&args).is_err());
    }

    #[test]
    fn window_flags_select_the_backend() {
        let (backend, _) = build(&parse(&argv(&["--attrs", "2"])).unwrap()).unwrap();
        assert!(!backend.is_windowed(), "no window flags: classic all-history engine");

        let args = parse(&argv(&["--attrs", "2", "--window-batches", "8", "--window-slots", "3"]))
            .unwrap();
        let (backend, _) = build(&args).unwrap();
        assert!(backend.is_windowed());
        assert_eq!(backend.window_span(), Some((0, 0)), "fresh ring: only window 0, open");

        // Defaults: slots 2, policy remerge.
        let args = parse(&argv(&["--window-batches", "4"])).unwrap();
        let (spec, policy) = window_options(&args).unwrap().unwrap();
        assert_eq!((spec.batches, spec.slots), (4, 2));
        assert!(matches!(policy, RetirePolicy::Remerge));
        let args = parse(&argv(&["--window-batches", "4", "--window-policy", "subtract"])).unwrap();
        let (_, policy) = window_options(&args).unwrap().unwrap();
        assert!(matches!(policy, RetirePolicy::Subtract));

        // Window knobs without --window-batches, or a bad policy, fail.
        let err = window_options(&parse(&argv(&["--window-slots", "3"])).unwrap()).unwrap_err();
        assert!(err.to_string().contains("--window-batches"), "{err}");
        let args = parse(&argv(&["--window-batches", "4", "--window-policy", "lru"])).unwrap();
        assert!(window_options(&args).is_err());
    }

    #[test]
    fn serve_round_trips_one_client_and_reports() {
        let args =
            parse(&argv(&["--addr", "127.0.0.1:0", "--attrs", "2", "--support", "0.1"])).unwrap();
        let (engine, config) = build(&args).unwrap();
        let handle = Server::start(engine, "127.0.0.1:0", config).unwrap();
        let addr = handle.addr();

        let client = std::thread::spawn(move || {
            let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
            let rows: Vec<Vec<f64>> =
                (0..40).map(|i| vec![(i % 2) as f64 * 50.0, (i % 2) as f64 * 100.0]).collect();
            assert_eq!(client.ingest(rows).unwrap(), 40);
            let outcome = client.query(RuleQuery::default()).unwrap();
            assert_eq!(outcome.get("ok").and_then(dar_serve::Json::as_bool), Some(true));
            client.request(&Request::Shutdown).unwrap();
        });
        let summary = handle.join().unwrap();
        client.join().unwrap();
        let out = report(&summary);
        assert!(out.contains("1 ingest / 1 query"), "{out}");
        assert!(out.contains("1 shutdown"), "{out}");
    }
}
