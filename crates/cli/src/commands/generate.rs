//! `dar generate` — write a synthetic workload to CSV.

use crate::args::Args;
use crate::CliError;
use std::path::Path;

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let workload = args.required("workload")?;
    let rows: usize = args.number("rows", 10_000)?;
    let seed: u64 = args.number("seed", 42)?;
    let outliers: f64 = args.number("outliers", 0.0)?;
    let out = args.required("out")?;

    let relation = match workload {
        "wbcd" => datagen::wbcd::wbcd_relation(rows, outliers, seed),
        "insurance" => datagen::insurance::insurance_relation(rows, seed),
        "grid" => {
            let attrs: usize = args.number("attrs", 3)?;
            let clusters: usize = args.number("clusters", 4)?;
            datagen::grid::grid_spec(attrs, clusters, 100.0, 1.0, outliers).generate(rows, seed)
        }
        other => {
            return Err(CliError::new(format!(
                "unknown workload {other:?} (expected wbcd, insurance, or grid)"
            )))
        }
    };
    datagen::csv::write_csv(&relation, Path::new(out))?;
    Ok(format!(
        "wrote {} rows × {} attributes ({workload}, seed {seed}) to {out}\n",
        relation.len(),
        relation.schema().arity()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn generates_each_workload() {
        let dir = std::env::temp_dir().join("dar_cli_generate_test");
        std::fs::create_dir_all(&dir).unwrap();
        for workload in ["wbcd", "insurance", "grid"] {
            let out = dir.join(format!("{workload}.csv"));
            let a = parse(&argv(&[
                "--workload",
                workload,
                "--rows",
                "50",
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            let msg = run(&a).unwrap();
            assert!(msg.contains("50 rows"), "{msg}");
            let back = datagen::csv::read_csv(&out).unwrap();
            assert_eq!(back.len(), 50);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let a = parse(&argv(&["--workload", "nope", "--out", "/tmp/x.csv"])).unwrap();
        assert!(run(&a).is_err());
    }

    #[test]
    fn missing_flags_are_errors() {
        let a = parse(&argv(&["--workload", "grid"])).unwrap();
        assert!(run(&a).unwrap_err().to_string().contains("--out"));
    }
}
