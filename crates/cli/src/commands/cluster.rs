//! `dar cluster` — run Phase I only and print the per-attribute clusters.

use crate::args::Args;
use crate::commands::{default_partitioning, load};
use crate::CliError;
use birch::{AcfForest, BirchConfig};
use dar_core::{suggest_initial_thresholds, ClusterId, ClusterSummary};
use std::fmt::Write as _;

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let relation = load(args.required("input")?)?;
    let partitioning = default_partitioning(&relation);
    let threshold_frac: f64 = args.number("threshold-frac", 0.05)?;
    let memory_kb: usize = args.number("memory-kb", 1024)?;

    let thresholds = suggest_initial_thresholds(&relation, &partitioning, threshold_frac)?;
    let config = BirchConfig { memory_budget: memory_kb << 10, ..BirchConfig::default() };
    let mut forest = AcfForest::with_initial_thresholds(partitioning.clone(), &config, &thresholds);
    forest.scan(&relation);
    let stats = forest.stats();
    let per_set = forest.finish();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} rows scanned; {} clusters across {} attributes ({} rebuilds, {:.2} MB)\n",
        relation.len(),
        per_set.iter().map(Vec::len).sum::<usize>(),
        per_set.len(),
        stats.total_rebuilds(),
        stats.total_memory_bytes() as f64 / (1 << 20) as f64,
    );
    for (set, clusters) in per_set.iter().enumerate() {
        let name = partitioning.set(set).attrs[0];
        let name = &relation.schema().attribute(name)?.name;
        let _ = writeln!(out, "{name} ({} clusters):", clusters.len());
        let mut sorted: Vec<_> = clusters.iter().collect();
        sorted.sort_by_key(|a| std::cmp::Reverse(a.n()));
        for acf in sorted.iter().take(8) {
            let _ = writeln!(
                out,
                "  n={:<8} bbox {}  diameter {:.4}",
                acf.n(),
                acf.bbox(),
                acf.diameter(),
            );
        }
        if sorted.len() > 8 {
            let _ = writeln!(out, "  … {} more", sorted.len() - 8);
        }
    }
    if let Some(path) = args.optional("save") {
        let mut summaries = Vec::new();
        let mut next_id = 0u32;
        for (set, clusters) in per_set.into_iter().enumerate() {
            for acf in clusters {
                summaries.push(ClusterSummary { id: ClusterId(next_id), set, acf });
                next_id += 1;
            }
        }
        let bytes = mining::persist::encode_clusters(&summaries, &dar_par::ThreadPool::resolve(0))?;
        // Sealed + atomic: the file carries a checksum footer verified on
        // load, and a crash never leaves a torn file. The body is the
        // persist-v2 binary format; `dar rules` sniffs it (and still
        // reads pre-v2 text files).
        dar_durable::snapshot::install(
            &dar_durable::DiskStorage,
            std::path::Path::new(path),
            &bytes,
            0,
        )
        .map_err(|e| CliError::new(e.to_string()))?;
        let _ = writeln!(out, "saved {} cluster summaries to {path}", summaries.len());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    #[test]
    fn clusters_the_insurance_workload() {
        let dir = std::env::temp_dir().join("dar_cli_cluster_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("ins.csv");
        let relation = datagen::insurance::insurance_relation(2_000, 3);
        datagen::csv::write_csv(&relation, &csv).unwrap();
        let a = parse(&[
            "--input".to_string(),
            csv.to_str().unwrap().to_string(),
            "--threshold-frac".to_string(),
            "0.1".to_string(),
        ])
        .unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("2000 rows"), "{out}");
        assert!(out.contains("Age ("));
        assert!(out.contains("bbox"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
