//! The CLI subcommands.

pub mod cluster;
pub mod coordinator;
pub mod generate;
pub mod mine;
pub mod rules;
pub mod serve;
pub mod session;
pub mod stats;

pub(crate) use crate::data::{default_partitioning, load};

use crate::CliError;
use dar_durable::{DiskStorage, Storage};
use std::path::{Path, PathBuf};

/// Writes `text` to `path` atomically: tmp file, fsync, rename over the
/// target, directory fsync. A crash mid-write leaves either the old file
/// or the new one, never a torn mix.
pub(crate) fn atomic_write(path: impl AsRef<Path>, text: &str) -> Result<(), CliError> {
    let path = path.as_ref();
    let storage = DiskStorage;
    let mut tmp = PathBuf::from(path.as_os_str().to_os_string());
    tmp.as_mut_os_string().push(".tmp");
    let step = |op: &str, e: std::io::Error| CliError::new(format!("{op} {}: {e}", path.display()));
    storage.write(&tmp, text.as_bytes()).map_err(|e| step("write", e))?;
    storage.sync_file(&tmp).map_err(|e| step("sync", e))?;
    storage.rename(&tmp, path).map_err(|e| step("rename", e))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        storage.sync_dir(dir).map_err(|e| step("sync dir", e))?;
    }
    Ok(())
}
