//! The CLI subcommands.

pub mod cluster;
pub mod generate;
pub mod mine;
pub mod rules;
pub mod serve;
pub mod session;
pub mod stats;

pub(crate) use crate::data::{default_partitioning, load};
