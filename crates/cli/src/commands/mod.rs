//! The CLI subcommands.

pub mod cluster;
pub mod coordinator;
pub mod generate;
pub mod mine;
pub mod rules;
pub mod serve;
pub mod session;
pub mod stats;

pub(crate) use crate::data::{default_partitioning, load};

use crate::args::Args;
use crate::CliError;
use dar_durable::{DiskStorage, Storage};
use mining::{Measure, RuleQuery, MEASURES};
use std::path::{Path, PathBuf};

/// Applies the shared rule-quality flags onto a query: `--measure`
/// (degree, lift, conviction, leverage, jaccard), `--min-measure`,
/// `--top-k`, `--prune-redundant`, and `--budget-ms` (anytime mode).
/// Every command that mines rules accepts the same set, so one flag
/// vocabulary works from `dar mine` to `dar cluster-coordinator`.
pub(crate) fn apply_rank_flags(args: &Args, query: &mut RuleQuery) -> Result<(), CliError> {
    if let Some(name) = args.optional("measure") {
        query.measure = Measure::parse(name).ok_or_else(|| {
            let names: Vec<&str> = MEASURES.iter().map(|m| m.as_str()).collect();
            CliError::new(format!(
                "--measure: unknown measure {name:?} (one of {})",
                names.join(", ")
            ))
        })?;
    }
    if let Some(raw) = args.optional("min-measure") {
        let floor: f64 = raw
            .parse()
            .map_err(|_| CliError::new(format!("--min-measure: cannot parse {raw:?}")))?;
        query.min_measure = Some(floor);
    }
    query.top_k = args.number("top-k", query.top_k)?;
    if args.switch("prune-redundant") {
        query.prune_redundant = true;
    }
    query.budget_ms = args.number("budget-ms", query.budget_ms)?;
    Ok(())
}

/// Writes `text` to `path` atomically: tmp file, fsync, rename over the
/// target, directory fsync. A crash mid-write leaves either the old file
/// or the new one, never a torn mix.
pub(crate) fn atomic_write(path: impl AsRef<Path>, text: &str) -> Result<(), CliError> {
    let path = path.as_ref();
    let storage = DiskStorage;
    let mut tmp = PathBuf::from(path.as_os_str().to_os_string());
    tmp.as_mut_os_string().push(".tmp");
    let step = |op: &str, e: std::io::Error| CliError::new(format!("{op} {}: {e}", path.display()));
    storage.write(&tmp, text.as_bytes()).map_err(|e| step("write", e))?;
    storage.sync_file(&tmp).map_err(|e| step("sync", e))?;
    storage.rename(&tmp, path).map_err(|e| step("rename", e))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        storage.sync_dir(dir).map_err(|e| step("sync dir", e))?;
    }
    Ok(())
}
