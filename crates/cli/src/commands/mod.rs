//! The CLI subcommands.

pub mod cluster;
pub mod generate;
pub mod mine;
pub mod rules;
pub mod stats;

use crate::CliError;
use dar_core::{Metric, Partitioning, Relation};
use std::path::Path;

/// Loads a CSV relation.
pub(crate) fn load(path: &str) -> Result<Relation, CliError> {
    datagen::csv::read_csv(Path::new(path))
        .map_err(|e| CliError::new(format!("{path}: {e}")))
}

/// The per-attribute partitioning every command uses (Euclidean for
/// interval/ordinal attributes, discrete for nominal ones).
pub(crate) fn default_partitioning(relation: &Relation) -> Partitioning {
    Partitioning::per_attribute(relation.schema(), Metric::Euclidean)
}
