//! `dar stats` — per-column descriptive statistics of a CSV relation.

use crate::args::Args;
use crate::commands::load;
use crate::CliError;
use dar_core::ColumnStats;
use std::fmt::Write as _;

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let relation = load(args.required("input")?)?;
    let mut out = format!(
        "{} rows × {} attributes\n\n{:<24} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9}\n",
        relation.len(),
        relation.schema().arity(),
        "attribute",
        "kind",
        "min",
        "max",
        "mean",
        "std dev",
        "distinct",
    );
    for (id, attr) in relation.schema().iter() {
        let s = ColumnStats::of_column(&relation, id)?;
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>9}",
            attr.name,
            format!("{:?}", attr.kind).to_lowercase(),
            s.min,
            s.max,
            s.mean,
            s.std_dev,
            s.distinct,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    #[test]
    fn prints_every_attribute() {
        let dir = std::env::temp_dir().join("dar_cli_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("ins.csv");
        let relation = datagen::insurance::insurance_relation(500, 3);
        datagen::csv::write_csv(&relation, &csv).unwrap();
        let a = parse(&["--input".to_string(), csv.to_str().unwrap().to_string()]).unwrap();
        let out = run(&a).unwrap();
        assert!(out.contains("500 rows"));
        for name in ["Age", "Dependents", "Claims"] {
            assert!(out.contains(name), "{out}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let a = parse(&["--input".to_string(), "/nonexistent/x.csv".to_string()]).unwrap();
        let err = run(&a).unwrap_err();
        assert!(err.to_string().contains("x.csv"));
    }
}
