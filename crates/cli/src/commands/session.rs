//! `dar session` — drive a long-lived [`dar_engine::DarEngine`] from a
//! script of engine commands (a file via `--script`, or stdin).
//!
//! Script syntax, one command per line (`#` starts a comment):
//!
//! ```text
//! ingest <file.csv>              # feed a CSV batch into the live forest
//! advance                        # seal the open window (windowed only)
//! snapshot <file.snap>           # close the epoch and persist it
//! restore <file.snap>            # resume an engine from a snapshot
//! query [key=value ...]          # mine rules from the (cached) epoch
//! stats                          # print engine counters
//! ```
//!
//! `query` keys: `density-factor`, `density` (explicit comma list),
//! `degree-factor`, `max-antecedent`, `max-consequent`, `top`, plus the
//! rule-quality knobs `measure` (degree, lift, conviction, leverage,
//! jaccard), `min-measure`, `top-k`, `prune-redundant` (true/false), and
//! `budget-ms` (anytime mode: sample clique pairs under a wall-clock
//! budget and report the honest coverage fraction).
//!
//! Engine-level flags (fixed for the session): `--support`,
//! `--threshold-frac`, `--memory-kb`, `--metric d0|d1|d2`, and
//! `--threads` (worker threads for batch ingest and cold Phase II
//! builds; `0`, the default, means the host's available parallelism —
//! output is byte-identical at every setting).
//!
//! With `--wal-path <file>`, every `ingest` batch is committed to a
//! checksummed write-ahead log before the command reports success, and
//! snapshots are sealed with the WAL sequence they cover. A later
//! session with the same `--wal-path` recovers: `ingest` into a fresh
//! engine first replays every committed batch, and `restore` replays
//! only the records newer than the snapshot's sealed sequence.
//!
//! With `--window-batches N` (plus optional `--window-slots` /
//! `--window-policy`, as on `dar serve`), the session mines a sliding
//! window: every `N` ingested batches seal a window, the `advance` verb
//! seals one explicitly, and WAL frames carry the window sequence so a
//! later session rebuilds the exact ring.

use crate::args::Args;
use crate::commands::serve::window_options;
use crate::data::{default_partitioning, load, parse_cluster_metric};
use crate::CliError;
use dar_core::{suggest_initial_thresholds, Schema};
use dar_durable::{decode_frame, DiskStorage, DurableStore};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{EngineBackend, RetirePolicy, WindowSpec, WindowedEngine};
use mining::describe::describe_rule;
use mining::{DensitySpec, RuleQuery};
use std::fmt::Write as _;
use std::io::Read as _;
use std::path::Path;
use std::sync::Arc;

/// Runs the command.
pub fn run(args: &Args) -> Result<String, CliError> {
    let script = match args.optional("script") {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| CliError::new(format!("{path}: {e}")))?
        }
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            buf
        }
    };
    run_script(&script, args)
}

/// Session state: the engine appears on the first `ingest` (which fixes the
/// partitioning from the CSV's schema) or on `restore`.
struct Session {
    engine: Option<EngineBackend>,
    /// Attribute names for rule rendering; synthetic after a bare restore.
    schema: Option<Schema>,
    support: f64,
    threshold_frac: f64,
    config: EngineConfig,
    /// Sliding-window mining (`--window-batches`), if configured.
    window: Option<(WindowSpec, RetirePolicy)>,
    /// The write-ahead log (`--wal-path`), if configured.
    store: Option<DurableStore>,
    /// Every committed WAL frame with its sequence and window tag —
    /// recovered ones plus those logged this session — so `restore` can
    /// seq-filter its replay.
    wal_records: Vec<WalFrame>,
}

/// A committed WAL frame: `(wal seq, window tag, rows)`. Untagged frames
/// come from static sessions; an empty tagged frame marks an explicit
/// `advance`.
type WalFrame = (u64, Option<u64>, Vec<Vec<f64>>);

impl Session {
    fn engine(&mut self) -> Result<&mut EngineBackend, CliError> {
        self.engine
            .as_mut()
            .ok_or_else(|| CliError::new("no engine yet: `ingest` or `restore` first"))
    }

    /// Replays WAL frames with sequence strictly above `after_seq` into
    /// `engine`, returning how many non-empty batches were applied.
    fn replay_into(&self, engine: &mut EngineBackend, after_seq: u64) -> Result<u64, CliError> {
        let mut replayed = 0u64;
        for (seq, tag, rows) in &self.wal_records {
            if *seq <= after_seq {
                continue;
            }
            engine.replay_frame(*tag, rows)?;
            if !rows.is_empty() {
                replayed += 1;
            }
        }
        Ok(replayed)
    }

    /// Builds a fresh backend under this session's window configuration.
    fn fresh_backend(
        &self,
        partitioning: dar_core::Partitioning,
        config: EngineConfig,
    ) -> Result<EngineBackend, CliError> {
        Ok(match self.window {
            Some((spec, policy)) => {
                EngineBackend::from(WindowedEngine::new(partitioning, config, spec, policy)?)
            }
            None => EngineBackend::from(DarEngine::new(partitioning, config)?),
        })
    }
}

/// Opens the WAL and decodes every committed frame with its sequence.
fn open_wal(path: &str) -> Result<(DurableStore, Vec<WalFrame>), CliError> {
    let storage = Arc::new(DiskStorage);
    let (store, _) = DurableStore::open(storage, None, Some(path.into()))
        .map_err(|e| CliError::new(format!("{path}: {e}")))?;
    // Re-read for the per-record sequences (open has already healed any
    // torn tail, so every surviving record decodes).
    let (records, _) = dar_durable::wal::read_records(&DiskStorage, Path::new(path))
        .map_err(|e| CliError::new(format!("{path}: {e}")))?;
    let mut decoded = Vec::with_capacity(records.len());
    for record in records {
        let (tag, rows) = decode_frame(&record.body)
            .map_err(|e| CliError::new(format!("{path}: record seq {}: {e}", record.seq)))?;
        decoded.push((record.seq, tag, rows));
    }
    Ok((store, decoded))
}

/// Interprets a full script, returning the accumulated output.
pub fn run_script(script: &str, args: &Args) -> Result<String, CliError> {
    let mut config = EngineConfig::default();
    config.birch.memory_budget = args.number::<usize>("memory-kb", 1024)? << 10;
    config.metric = parse_cluster_metric(args.optional("metric").unwrap_or("d2"))?;
    config.threads = args.number("threads", 0)?;
    let (store, wal_records) = match args.optional("wal-path") {
        Some(path) => {
            let (store, records) = open_wal(path)?;
            (Some(store), records)
        }
        None => (None, Vec::new()),
    };
    let mut session = Session {
        engine: None,
        schema: None,
        support: args.number("support", 0.05)?,
        threshold_frac: args.number("threshold-frac", 0.05)?,
        config,
        window: window_options(args)?,
        store,
        wal_records,
    };

    let mut out = String::new();
    for (lineno, raw) in script.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let verb = parts.next().expect("non-empty line");
        let rest: Vec<&str> = parts.collect();
        step(&mut session, verb, &rest, &mut out)
            .map_err(|e| CliError::new(format!("line {}: {e}", lineno + 1)))?;
    }
    if let Some(path) = args.optional("metrics-out") {
        // Final observability dump: everything the session's engine,
        // Phase I/II, and WAL recorded, as one deterministic JSON object.
        std::fs::write(path, dar_obs::global().render_json())
            .map_err(|e| CliError::new(format!("{path}: {e}")))?;
        let _ = writeln!(out, "metrics: written to {path}");
    }
    Ok(out)
}

fn step(
    session: &mut Session,
    verb: &str,
    rest: &[&str],
    out: &mut String,
) -> Result<(), CliError> {
    match verb {
        "ingest" => {
            let [path] = rest else {
                return Err(CliError::new("usage: ingest <file.csv>"));
            };
            let relation = load(path)?;
            if session.engine.is_none() {
                let partitioning = default_partitioning(&relation);
                let mut config = session.config.clone();
                config.min_support_frac = session.support;
                config.initial_thresholds = Some(suggest_initial_thresholds(
                    &relation,
                    &partitioning,
                    session.threshold_frac,
                )?);
                let mut engine = session.fresh_backend(partitioning, config)?;
                // Crash recovery: a fresh engine first replays every batch
                // a previous session committed to this WAL.
                let replayed = session.replay_into(&mut engine, 0)?;
                if replayed > 0 {
                    let _ = writeln!(
                        out,
                        "wal: replayed {replayed} committed batches ({} tuples)",
                        engine.tuples()
                    );
                }
                session.engine = Some(engine);
            }
            let engine = session.engine.as_mut().expect("just created");
            let rows: Vec<Vec<f64>> = (0..relation.len()).map(|r| relation.row(r)).collect();
            let info = engine.ingest(&rows)?;
            session.schema = Some(relation.schema().clone());
            let logged = match session.store.as_mut() {
                // Apply-then-log: the command reports success only once the
                // batch is both in memory and on the log.
                Some(store) => {
                    // Windowed frames carry the window they landed in, so
                    // recovery rebuilds the exact ring.
                    let seq = match &info {
                        Some(w) => store.log_tagged_batch(w.window_seq, &rows),
                        None => store.log_batch(&rows),
                    }
                    .map_err(|e| CliError::new(e.to_string()))?;
                    session.wal_records.push((
                        seq,
                        info.as_ref().map(|w| w.window_seq),
                        rows.clone(),
                    ));
                    format!(", wal seq {seq}")
                }
                None => String::new(),
            };
            let engine = session.engine.as_ref().expect("just created");
            let windowed = match &info {
                Some(w) if w.advanced => format!(", sealed window {}", w.window_seq),
                Some(w) => format!(", window {}", w.window_seq),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "ingest {path}: {} tuples (total {}{logged}){windowed}",
                rows.len(),
                engine.tuples()
            );
        }
        "advance" => {
            if !rest.is_empty() {
                return Err(CliError::new("usage: advance"));
            }
            let engine = session.engine()?;
            let outcome = engine.advance()?;
            let span = engine.window_span().unwrap_or((0, outcome.opened_seq));
            let logged = match session.store.as_mut() {
                // An explicit seal is durable too: an empty frame tagged
                // with the newly opened window.
                Some(store) => {
                    let seq = store
                        .log_tagged_batch(outcome.opened_seq, &[])
                        .map_err(|e| CliError::new(e.to_string()))?;
                    session.wal_records.push((seq, Some(outcome.opened_seq), Vec::new()));
                    format!(", wal seq {seq}")
                }
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "advance: sealed window {}, opened {}{}, span {}..={}{logged}",
                outcome.sealed_seq,
                outcome.opened_seq,
                outcome.retired_seq.map_or_else(String::new, |s| format!(", retired {s}")),
                span.0,
                span.1,
            );
        }
        "snapshot" => {
            let [path] = rest else {
                return Err(CliError::new("usage: snapshot <file.snap>"));
            };
            let bytes = session.engine()?.snapshot()?;
            // Seal with the last committed WAL sequence (0 without a WAL)
            // and install atomically — a crash never leaves a torn file,
            // and a later `restore` replays only newer WAL records.
            let seq = session.store.as_ref().map_or(0, DurableStore::last_seq);
            dar_durable::snapshot::install(&DiskStorage, Path::new(path), &bytes, seq)
                .map_err(|e| CliError::new(format!("{path}: {e}")))?;
            let engine = session.engine()?;
            let _ = writeln!(
                out,
                "snapshot {path}: epoch {} ({} tuples, sealed at wal seq {seq})",
                engine.epoch(),
                engine.tuples()
            );
        }
        "restore" => {
            let [path] = rest else {
                return Err(CliError::new("usage: restore <file.snap>"));
            };
            let bytes = std::fs::read(path).map_err(|e| CliError::new(format!("{path}: {e}")))?;
            // Lenient unseal: sealed snapshots verify their checksum,
            // legacy unsealed ones pass through with seq 0.
            let snapshot_seq = dar_durable::unseal_bytes(&bytes)
                .map_err(|e| CliError::new(format!("{path}: {e}")))?
                .1
                .unwrap_or(0);
            let mut config = session.config.clone();
            config.min_support_frac = session.support;
            let mut engine = EngineBackend::restore(&bytes, config)?;
            if engine.is_windowed() != session.window.is_some() {
                return Err(CliError::new(format!(
                    "{path}: snapshot is a {} engine but this session is {} — \
                     match --window-batches to the snapshot",
                    if engine.is_windowed() { "windowed" } else { "static" },
                    if session.window.is_some() { "windowed" } else { "static" },
                )));
            }
            let replayed = session.replay_into(&mut engine, snapshot_seq)?;
            let _ = writeln!(
                out,
                "restore {path}: epoch {} ({} tuples{})",
                engine.epoch(),
                engine.tuples(),
                if replayed > 0 {
                    format!(", {replayed} wal batches replayed")
                } else {
                    String::new()
                },
            );
            session.schema = None;
            session.engine = Some(engine);
        }
        "query" => {
            let query = parse_query(rest)?;
            let top: usize = kv(rest, "top=").map_or(Ok(10), |v| {
                v.parse().map_err(|_| CliError::new(format!("bad top= value {v:?}")))
            })?;
            let (outcome, partitioning) = {
                let engine = session.engine()?;
                let outcome = engine.query(&query)?;
                (outcome, engine.partitioning().clone())
            };
            let measure = outcome.measure;
            let _ = writeln!(
                out,
                "query epoch {}: {} rules (s0={}, {}{}){}{}",
                outcome.epoch,
                outcome.rules.len(),
                outcome.s0,
                if outcome.cached { "cached cliques" } else { "cold" },
                if measure == mining::Measure::Degree {
                    String::new()
                } else {
                    format!(", by {measure}")
                },
                if outcome.truncated { " [truncated]" } else { "" },
                outcome
                    .coverage
                    .map_or_else(String::new, |c| format!(" [anytime coverage {c:.3}]")),
            );
            let schema = session
                .schema
                .clone()
                .unwrap_or_else(|| Schema::interval_attrs(arity(&partitioning)));
            for (rule, value) in outcome.rules.iter().zip(&outcome.values).take(top) {
                let suffix = match measure {
                    mining::Measure::Degree => String::new(),
                    m => format!("  [{m} {value:.4}]"),
                };
                let _ = writeln!(
                    out,
                    "  {}{suffix}",
                    describe_rule(rule, outcome.artifacts.graph.clusters(), &schema, &partitioning)
                );
            }
            if outcome.rules.len() > top {
                let _ = writeln!(out, "  … {} more rules", outcome.rules.len() - top);
            }
        }
        "stats" => {
            let engine = session.engine()?;
            let s = engine.stats();
            let _ = writeln!(
                out,
                "stats: {} tuples in {} batches, {} epochs, {} rebuilds; \
                 {} queries ({} hit / {} miss); \
                 ingest {:.3}s, epoch {:.3}s, phase2 {:.3}s, rules {:.3}s",
                s.tuples_ingested,
                s.batches,
                s.epochs,
                s.forest_rebuilds,
                s.queries,
                s.cache_hits,
                s.cache_misses,
                s.ingest_time.as_secs_f64(),
                s.epoch_time.as_secs_f64(),
                s.phase2_build_time.as_secs_f64(),
                s.rule_time.as_secs_f64(),
            );
        }
        other => {
            return Err(CliError::new(format!(
                "unknown session command {other:?} \
                 (expected ingest, advance, snapshot, restore, query, stats)"
            )));
        }
    }
    Ok(())
}

fn arity(partitioning: &dar_core::Partitioning) -> usize {
    partitioning.sets().iter().flat_map(|s| s.attrs.iter()).copied().max().map_or(0, |m| m + 1)
}

/// Finds `key=`-prefixed token and returns its value.
fn kv<'a>(tokens: &[&'a str], key: &str) -> Option<&'a str> {
    tokens.iter().find_map(|t| t.strip_prefix(key))
}

fn parse_query(tokens: &[&str]) -> Result<RuleQuery, CliError> {
    let mut query = RuleQuery::default();
    for token in tokens {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| CliError::new(format!("expected key=value, got {token:?}")))?;
        let bad = || CliError::new(format!("bad {key}= value {value:?}"));
        match key {
            "density-factor" => {
                query.density = DensitySpec::Auto { factor: value.parse().map_err(|_| bad())? };
            }
            "density" => {
                let thresholds: Result<Vec<f64>, _> = value.split(',').map(str::parse).collect();
                query.density = DensitySpec::Explicit(thresholds.map_err(|_| bad())?);
            }
            "degree-factor" => query.degree_factor = value.parse().map_err(|_| bad())?,
            "max-antecedent" => query.max_antecedent = value.parse().map_err(|_| bad())?,
            "max-consequent" => query.max_consequent = value.parse().map_err(|_| bad())?,
            "measure" => query.measure = mining::Measure::parse(value).ok_or_else(bad)?,
            "min-measure" => query.min_measure = Some(value.parse().map_err(|_| bad())?),
            "top-k" => query.top_k = value.parse().map_err(|_| bad())?,
            "prune-redundant" => query.prune_redundant = value.parse().map_err(|_| bad())?,
            "budget-ms" => query.budget_ms = value.parse().map_err(|_| bad())?,
            "top" => {
                value.parse::<usize>().map_err(|_| bad())?;
            }
            other => {
                return Err(CliError::new(format!("unknown query key {other:?}")));
            }
        }
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn session_dir(test: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dar_cli_session_{test}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_batches(dir: &std::path::Path, n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let path = dir.join(format!("batch{i}.csv"));
                let relation = datagen::insurance::insurance_relation(2_000, 10 + i as u64);
                datagen::csv::write_csv(&relation, &path).unwrap();
                path.to_str().unwrap().to_string()
            })
            .collect()
    }

    #[test]
    fn scripted_lifecycle_ingests_snapshots_and_queries() {
        let dir = session_dir("lifecycle");
        let batches = write_batches(&dir, 3);
        let snap = dir.join("epoch.snap");
        let script = format!(
            "# full lifecycle\n\
             ingest {}\n\
             ingest {}\n\
             ingest {}\n\
             query degree-factor=2.0 top=3\n\
             query degree-factor=3.0 top=3\n\
             snapshot {}\n\
             stats\n",
            batches[0],
            batches[1],
            batches[2],
            snap.display(),
        );
        let args = parse(&argv(&["--support", "0.1", "--threshold-frac", "0.1"])).unwrap();
        let out = run_script(&script, &args).unwrap();
        assert!(out.contains("total 6000"), "{out}");
        assert!(out.contains("cold"), "{out}");
        assert!(out.contains("cached cliques"), "re-tuned D0 must hit: {out}");
        assert!(out.contains("1 hit / 1 miss"), "{out}");
        assert!(out.contains('⇒'), "{out}");
        assert!(snap.exists());

        // A second session resumes from the snapshot and queries cold.
        let script = format!("restore {}\nquery top=2\nstats\n", snap.display());
        let out = run_script(&script, &args).unwrap();
        assert!(out.contains("restore"), "{out}");
        assert!(out.contains("6000 tuples"), "{out}");
        assert!(out.contains('⇒'), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_sessions_recover_committed_batches() {
        let dir = session_dir("wal_recovery");
        let batches = write_batches(&dir, 4);
        let wal = dir.join("ingest.wal");
        let snap = dir.join("epoch.snap");
        let args = parse(&argv(&[
            "--support",
            "0.1",
            "--threshold-frac",
            "0.1",
            "--wal-path",
            wal.to_str().unwrap(),
        ]))
        .unwrap();

        // Session 1 commits two batches, then "crashes" (no snapshot).
        let script = format!("ingest {}\ningest {}\n", batches[0], batches[1]);
        let out = run_script(&script, &args).unwrap();
        assert!(out.contains("wal seq 1"), "{out}");
        assert!(out.contains("wal seq 2"), "{out}");

        // Session 2 replays both before its own ingest, then snapshots.
        let script = format!("ingest {}\nsnapshot {}\n", batches[2], snap.display());
        let out = run_script(&script, &args).unwrap();
        assert!(out.contains("wal: replayed 2 committed batches"), "{out}");
        assert!(out.contains("total 6000"), "{out}");
        assert!(out.contains("sealed at wal seq 3"), "{out}");

        // Session 3: the snapshot covers seq 3, so restore replays nothing;
        // one more committed batch lands at seq 4.
        let script = format!("restore {}\ningest {}\n", snap.display(), batches[3]);
        let out = run_script(&script, &args).unwrap();
        assert!(!out.contains("wal batches replayed"), "{out}");
        assert!(out.contains("total 8000, wal seq 4"), "{out}");

        // Session 4: restore now replays exactly the post-snapshot suffix.
        let script = format!("restore {}\nquery top=1\n", snap.display());
        let out = run_script(&script, &args).unwrap();
        assert!(out.contains("8000 tuples, 1 wal batches replayed"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn windowed_sessions_seal_windows_and_recover_the_ring() {
        let dir = session_dir("windowed");
        let batches = write_batches(&dir, 3);
        let wal = dir.join("stream.wal");
        let args = parse(&argv(&[
            "--support",
            "0.1",
            "--threshold-frac",
            "0.1",
            "--window-batches",
            "2",
            "--window-slots",
            "2",
            "--wal-path",
            wal.to_str().unwrap(),
        ]))
        .unwrap();

        // Session 1: one batch into window 0, then an explicit seal — both
        // durable as tagged WAL frames.
        let script = format!("ingest {}\nadvance\n", batches[0]);
        let out = run_script(&script, &args).unwrap();
        assert!(out.contains(", window 0"), "{out}");
        assert!(out.contains("advance: sealed window 0, opened 1"), "{out}");
        assert!(out.contains("wal seq 2"), "the advance marker is logged too: {out}");

        // Session 2: the tagged replay rebuilds the ring (window 0 sealed,
        // window 1 open), then two more batches seal window 1 and retire
        // window 0 out of the two-slot ring.
        let script = format!("ingest {}\ningest {}\n", batches[1], batches[2]);
        let out = run_script(&script, &args).unwrap();
        assert!(out.contains("wal: replayed 1 committed batches (2000 tuples)"), "{out}");
        assert!(out.contains("total 4000, wal seq 3), window 1"), "{out}");
        assert!(out.contains("total 4000, wal seq 4), sealed window 1"), "{out}");

        // A static session refuses `advance` and a windowed session refuses
        // a static snapshot.
        let static_args = parse(&argv(&["--support", "0.1", "--threshold-frac", "0.1"])).unwrap();
        let script = format!("ingest {}\nadvance\n", batches[0]);
        let err = run_script(&script, &static_args).unwrap_err();
        assert!(err.to_string().contains("windowed"), "{err}");

        let snap = dir.join("static.snap");
        let script = format!("ingest {}\nsnapshot {}\n", batches[0], snap.display());
        run_script(&script, &static_args).unwrap();
        let windowed_args = parse(&argv(&["--window-batches", "1"])).unwrap();
        let err = run_script(&format!("restore {}\n", snap.display()), &windowed_args).unwrap_err();
        assert!(err.to_string().contains("match --window-batches"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn query_rank_keys_rank_and_sample() {
        let dir = session_dir("rank");
        let batches = write_batches(&dir, 1);
        let script = format!(
            "ingest {}\n\
             query measure=lift top-k=2 prune-redundant=true top=2\n\
             query budget-ms=60000 top=1\n",
            batches[0],
        );
        let args = parse(&argv(&["--support", "0.1", "--threshold-frac", "0.1"])).unwrap();
        let out = run_script(&script, &args).unwrap();
        assert!(out.contains("by lift"), "{out}");
        assert!(out.contains("[lift"), "{out}");
        assert!(out.contains("anytime coverage 1.000"), "a generous budget sees every pair: {out}");
        let script = format!("ingest {}\nquery measure=zorp\n", batches[0]);
        let err = run_script(&script, &args).unwrap_err();
        assert!(err.to_string().contains("measure"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_name_the_line() {
        let args = parse(&[]).unwrap();
        let err = run_script("\n\nfrobnicate\n", &args).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        let err = run_script("query top=1\n", &args).unwrap_err();
        assert!(err.to_string().contains("no engine"), "{err}");
        let err = run_script("query degree-factor=oops\n", &args).unwrap_err();
        assert!(err.to_string().contains("degree-factor"), "{err}");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let args = parse(&[]).unwrap();
        assert_eq!(run_script("# nothing\n\n   # indented\n", &args).unwrap(), "");
    }
}
