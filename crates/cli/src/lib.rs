//! # dar-cli
//!
//! The `dar` command-line tool: generate workloads, inspect columns,
//! cluster, and mine distance-based association rules over CSV files.
//!
//! ```text
//! dar generate --workload insurance --rows 10000 --seed 7 --out data.csv
//! dar stats    --input data.csv
//! dar cluster  --input data.csv --threshold-frac 0.05
//! dar mine     --input data.csv --support 0.08 --threshold-frac 0.05 --top 10
//! dar session  --script session.txt --support 0.08
//! dar serve    --addr 127.0.0.1:7878 --attrs 3 --snapshot-path epoch.snap
//! ```
//!
//! All command logic lives in this library (returning the output as a
//! `String`) so it is unit-testable; `main` only parses `std::env::args`
//! and prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod data;

use std::fmt;

/// A CLI-level error: message plus the exit code `main` should use.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
}

impl CliError {
    /// Creates an error from any displayable message.
    pub fn new(message: impl Into<String>) -> Self {
        CliError { message: message.into() }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::new(e.to_string())
    }
}

impl From<dar_core::CoreError> for CliError {
    fn from(e: dar_core::CoreError) -> Self {
        CliError::new(e.to_string())
    }
}

/// Dispatches a full argument vector (excluding the program name) to the
/// matching command and returns its printable output.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Ok(usage());
    };
    match command.as_str() {
        "generate" => commands::generate::run(&args::parse(rest)?),
        "stats" => commands::stats::run(&args::parse(rest)?),
        "cluster" => commands::cluster::run(&args::parse(rest)?),
        "mine" => commands::mine::run(&args::parse(rest)?),
        "rules" => commands::rules::run(&args::parse(rest)?),
        "session" => commands::session::run(&args::parse(rest)?),
        "serve" => commands::serve::run(&args::parse(rest)?),
        "cluster-coordinator" => commands::coordinator::run(&args::parse(rest)?),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::new(format!("unknown command {other:?}; run `dar help` for usage"))),
    }
}

/// The usage text.
pub fn usage() -> String {
    "dar — distance-based association rules over interval data\n\
     \n\
     USAGE: dar <command> [--flag value ...]\n\
     \n\
     COMMANDS\n\
       generate  --workload wbcd|insurance|grid --rows N [--seed S]\n\
                 [--outliers F] --out FILE.csv\n\
       stats     --input FILE.csv\n\
       cluster   --input FILE.csv [--threshold-frac F] [--memory-kb K]\n\
       mine      --input FILE.csv [--support F] [--threshold-frac F]\n\
                 [--memory-kb K] [--metric d0|d1|d2] [--density-factor F]\n\
                 [--degree-factor F] [--top N] [--rescan] [--out RULES.tsv]\n\
       session   [--script FILE] [--support F] [--threshold-frac F]\n\
                 [--memory-kb K] [--metric d0|d1|d2] [--metrics-out FILE]\n\
                 [--window-batches N] [--window-slots W]\n\
                 scripted engine: ingest/advance/snapshot/restore/query/\n\
                 stats lines from FILE (or stdin); see `dar-cli`'s session\n\
                 module docs; --metrics-out dumps the final metrics\n\
                 registry as JSON\n\
       serve     --addr HOST:PORT [--attrs N] [--threads T] [--queue Q]\n\
                 [--support F] [--memory-kb K] [--metric d0|d1|d2]\n\
                 [--initial-threshold F] [--timeout-ms MS]\n\
                 [--snapshot-path FILE.snap] [--snapshot-secs S]\n\
                 [--wal-path FILE.wal] [--metrics-addr HOST:PORT]\n\
                 [--window-batches N] [--window-slots W]\n\
                 [--window-policy remerge|subtract]\n\
                 TCP server speaking newline-delimited JSON; blocks until\n\
                 a wire `shutdown` request, then prints final counters;\n\
                 --metrics-addr serves Prometheus text to any scraper;\n\
                 --window-batches mines a sliding window and adds the\n\
                 `advance` and `subscribe` (rule-churn events) verbs\n\
       cluster-coordinator\n\
                 --addr HOST:PORT --shards HOST:PORT,HOST:PORT,...\n\
                 [--threads T] [--queue Q] [--support F]\n\
                 [--memory-kb K] [--metric d0|d1|d2] [--initial-threshold F]\n\
                 [--timeout-ms MS] [--metrics-addr HOST:PORT] [--rescan]\n\
                 [--allow-partial] [--deadline-ms MS] [--down-after N]\n\
                 [--probe-interval-ms MS] [--probe-timeout-ms MS]\n\
                 distributed front-end: fans ingest across `dar serve`\n\
                 shards (round-robin by batch seq), merges their ACF\n\
                 snapshots on query, and serves rules from the merged\n\
                 summary; engine flags must match the shards'; --rescan\n\
                 adds SON-style exact frequencies from the shards' WALs;\n\
                 --allow-partial keeps queries working while shards are\n\
                 down (answers carry degraded:true and a tuple-coverage\n\
                 fraction); --deadline-ms bounds one shard request incl.\n\
                 retries; --down-after N consecutive failures fast-fail a\n\
                 shard until the prober verifies it back in\n\
       help      this text\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_and_help_print_usage() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&argv(&["help"])).unwrap().contains("COMMANDS"));
        assert!(run(&argv(&["--help"])).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn full_generate_stats_mine_flow() {
        let dir = std::env::temp_dir().join("dar_cli_flow_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("data.csv");
        let csv_str = csv.to_str().unwrap();

        let out = run(&argv(&[
            "generate",
            "--workload",
            "insurance",
            "--rows",
            "3000",
            "--seed",
            "7",
            "--out",
            csv_str,
        ]))
        .unwrap();
        assert!(out.contains("3000"));

        let out = run(&argv(&["stats", "--input", csv_str])).unwrap();
        assert!(out.contains("Age"));
        assert!(out.contains("Claims"));

        let out = run(&argv(&["cluster", "--input", csv_str, "--threshold-frac", "0.1"])).unwrap();
        assert!(out.contains("clusters"), "{out}");

        let out = run(&argv(&[
            "mine",
            "--input",
            csv_str,
            "--support",
            "0.1",
            "--threshold-frac",
            "0.1",
            "--top",
            "5",
        ]))
        .unwrap();
        assert!(out.contains('⇒'), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
