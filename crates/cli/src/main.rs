//! The `dar` binary: thin wrapper around [`dar_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match dar_cli::run(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("dar: {e}");
            ExitCode::FAILURE
        }
    }
}
