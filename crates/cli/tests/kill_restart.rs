//! Kill -9 a real `dar serve` process mid-ingest and restart it on the
//! same write-ahead log: no acknowledged batch may be lost, and the
//! restarted server must answer the default query byte-identically to an
//! uncrashed engine over the recovered batches.

#![cfg(unix)]

use dar_cli::args::parse;
use dar_cli::commands::serve::build;
use dar_serve::{protocol, Client, Json, Request};
use mining::RuleQuery;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn batch(offset: usize) -> Vec<Vec<f64>> {
    (0..30)
        .map(|i| {
            let jitter = ((i + offset) % 7) as f64 * 0.01;
            if (i + offset).is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

const ENGINE_FLAGS: &[&str] = &["--attrs", "2", "--support", "0.2", "--initial-threshold", "1.0"];

/// Spawns `dar serve` on an ephemeral port and returns the child plus the
/// address it announced on stderr.
fn spawn_serve(wal: &Path) -> (Child, String) {
    let mut args = vec!["serve", "--addr", "127.0.0.1:0", "--wal-path", wal.to_str().unwrap()];
    args.extend_from_slice(ENGINE_FLAGS);
    let mut child = Command::new(env!("CARGO_BIN_EXE_dar"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dar serve");
    let stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    for line in stderr.lines() {
        let line = line.expect("read child stderr");
        if let Some(addr) = line.strip_prefix("dar serve: listening on ") {
            return (child, addr.trim().to_string());
        }
    }
    child.kill().ok();
    child.wait().ok();
    panic!("dar serve exited without announcing an address");
}

#[test]
fn sigkill_mid_ingest_loses_no_acknowledged_batch() {
    let dir = std::env::temp_dir().join("dar_cli_kill_restart");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("ingest.wal");

    let (mut child, addr) = spawn_serve(&wal);
    let mut client = Client::connect(addr.as_str(), Duration::from_secs(10)).unwrap();
    // Two batches fully acknowledged…
    assert_eq!(client.ingest(batch(0)).unwrap(), 30);
    assert_eq!(client.ingest(batch(1)).unwrap(), 60);
    // …then fire a third without waiting for its response and SIGKILL the
    // server while it may still be mid-commit.
    let mut raw = TcpStream::connect(addr.as_str()).unwrap();
    writeln!(raw, "{}", Request::Ingest { rows: batch(2) }.to_json().encode()).unwrap();
    raw.flush().unwrap();
    child.kill().unwrap(); // SIGKILL on unix — no graceful path runs
    child.wait().unwrap();

    // Restart on the same WAL. Recovery replays every committed batch:
    // at least the two acknowledged, possibly the in-flight third.
    let (mut child, addr) = spawn_serve(&wal);
    let mut client = Client::connect(addr.as_str(), Duration::from_secs(10)).unwrap();
    let stats = client.stats().unwrap();
    let engine_stats = stats.get("engine").unwrap();
    let replayed =
        engine_stats.get("wal_batches_replayed").and_then(Json::as_u64).unwrap() as usize;
    assert!((2..=3).contains(&replayed), "2 acked (+1 in-flight) batches, recovered {replayed}");
    assert_eq!(
        engine_stats.get("tuples_ingested").and_then(Json::as_u64),
        Some(30 * replayed as u64),
    );

    // The restarted server answers the default query byte-identically to
    // an uncrashed engine (built by the same CLI flags) over the same
    // batches.
    let argv: Vec<String> = ENGINE_FLAGS.iter().map(|s| s.to_string()).collect();
    let (mut control, _) = build(&parse(&argv).unwrap()).unwrap();
    for b in 0..replayed {
        control.ingest(&batch(b)).unwrap();
    }
    let expected = protocol::query_response(&control.query(&RuleQuery::default()).unwrap());
    let got = client.round_trip_line(r#"{"verb":"query"}"#).unwrap();
    assert_eq!(got, expected.encode());

    client.shutdown().unwrap();
    child.wait().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
