//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! the real `proptest` cannot be fetched. This workspace-local shim keeps
//! the repository's property tests running by implementing the subset of
//! the proptest 1.x API they use:
//!
//! * the [`proptest!`] macro in its closure form
//!   `proptest!(|(x in strat, y in strat)| { ... })`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * range strategies (`0u8..5`, `-50.0f64..50.0`), tuple strategies of
//!   arity 2–4, and `prop::collection::vec(strategy, size_range)`.
//!
//! Differences from real proptest: the case count is fixed (no
//! `ProptestConfig`), generation is deterministic from a fixed seed (fully
//! reproducible runs), and there is **no shrinking** — a failing case
//! reports its generated inputs via the assertion message instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Number of cases each `proptest!` invocation runs.
pub const CASES: u32 = 128;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property does not hold.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// The per-case result type the `proptest!` body closure returns.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator driving strategy sampling (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// The fixed-seed generator every `proptest!` invocation starts from.
    pub fn deterministic() -> Self {
        Self::with_seed(0x0BAD_5EED_CAFE_F00D)
    }

    /// A generator seeded from `seed` via SplitMix64.
    pub fn with_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng { state: [next(), next(), next(), next()] }
    }

    /// The next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    #[inline]
    pub fn index(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        self.next_u64() as u128 % n
    }
}

/// A source of random values of one type (the shim's `Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.index(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn pick(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.pick(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// A strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().pick(rng);
        (0..len).map(|_| self.element.pick(rng)).collect()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The `prop::` module path used inside test bodies
/// (`prop::collection::vec(...)`).
pub mod prop {
    pub use crate::collection;
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Runs a property over deterministically generated cases.
///
/// Supports the closure form
/// `proptest!(|(x in strategy, y in strategy)| { body })`. The body runs
/// inside a closure returning [`TestCaseResult`], which is what the
/// `prop_assert*` and `prop_assume!` macros expand into early returns of.
#[macro_export]
macro_rules! proptest {
    (|($($pat:pat in $strat:expr),+ $(,)?)| $body:block) => {{
        let mut rng = $crate::TestRng::deterministic();
        for case in 0..$crate::CASES {
            let outcome: $crate::TestCaseResult = (|rng: &mut $crate::TestRng| {
                $(let $pat = $crate::Strategy::pick(&($strat), rng);)+
                $body
                Ok(())
            })(&mut rng);
            match outcome {
                Ok(()) => {}
                Err($crate::TestCaseError::Reject) => {}
                Err($crate::TestCaseError::Fail(message)) => {
                    panic!("property failed at case {case}/{}: {message}", $crate::CASES)
                }
            }
        }
    }};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        proptest!(|(x in 0u8..5, (a, b) in (0u32..3, -2.0f64..2.0),
                    v in prop::collection::vec(0usize..7, 0..10))| {
            prop_assert!(x < 5);
            prop_assert!(a < 3);
            prop_assert!((-2.0..2.0).contains(&b), "b = {}", b);
            prop_assert!(v.len() < 10);
            for e in &v {
                prop_assert!(*e < 7);
            }
        });
    }

    #[test]
    fn assume_rejects_without_failing() {
        let mut ran = 0u32;
        proptest!(|(x in 0u32..100)| {
            prop_assume!(x % 2 == 0);
            ran += 1;
            prop_assert_eq!(x % 2, 0);
        });
        assert!(ran > 0 && ran < crate::CASES, "some cases rejected, some ran");
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        proptest!(|(x in 0u32..100)| {
            prop_assert!(x < 50, "x = {} is too big", x);
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first: Vec<u64> = Vec::new();
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..10 {
            first.push(rng.next_u64());
        }
        let mut rng = crate::TestRng::deterministic();
        let second: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
        assert_eq!(first, second);
    }
}
