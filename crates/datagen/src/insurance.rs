//! The insurance workload of the paper's Section 5.2 / Figure 5: drivers
//! with `Age`, `Dependents` and annual `Claims`, containing the planted N:1
//! rule *"people between 41 and 47 with 2–5 dependents are likely to have
//! close to $10K–$14K of annual claims"*.

use crate::rng::SeededRng;
use dar_core::{Attribute, Relation, RelationBuilder, Schema};

/// Attribute index of `Age`.
pub const AGE: usize = 0;
/// Attribute index of `Dependents`.
pub const DEPENDENTS: usize = 1;
/// Attribute index of `Claims`.
pub const CLAIMS: usize = 2;

/// Schema: `(Age, Dependents, Claims)`, all interval-scaled.
pub fn insurance_schema() -> Schema {
    Schema::new(vec![
        Attribute::interval("Age"),
        Attribute::interval("Dependents"),
        Attribute::interval("Claims"),
    ])
}

/// Generates `n` drivers. Roughly 40% belong to the planted segment
/// (ages 41–47, 2–5 dependents, claims near $12K); 40% are young drivers
/// with few dependents and low claims; 20% are older drivers with moderate
/// dependents and high claims. Small measurement noise everywhere.
pub fn insurance_relation(n: usize, seed: u64) -> Relation {
    let mut rng = SeededRng::new(seed);
    let mut b = RelationBuilder::with_capacity(insurance_schema(), n);
    for _ in 0..n {
        let segment = rng.weighted_index(&[0.4, 0.4, 0.2]);
        let row = match segment {
            0 => {
                // The Figure 5 segment.
                let age = rng.uniform_in(41.0, 47.0).round();
                let dep = rng.uniform_in(2.0, 5.0).round();
                let claims = rng.normal(12_000.0, 900.0);
                [age, dep, claims]
            }
            1 => {
                // Young, few dependents, low claims.
                let age = rng.uniform_in(22.0, 32.0).round();
                let dep = rng.uniform_in(0.0, 1.0).round();
                let claims = rng.normal(4_000.0, 1_200.0);
                [age, dep, claims]
            }
            _ => {
                // Older, moderate dependents, high claims.
                let age = rng.uniform_in(58.0, 70.0).round();
                let dep = rng.uniform_in(0.0, 2.0).round();
                let claims = rng.normal(22_000.0, 2_000.0);
                [age, dep, claims]
            }
        };
        b.push_row(&row).expect("generated rows match the schema");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_segment_exists_and_correlates() {
        let r = insurance_relation(5_000, 77);
        let segment: Vec<usize> = (0..r.len())
            .filter(|&i| {
                (41.0..=47.0).contains(&r.value(i, AGE))
                    && (2.0..=5.0).contains(&r.value(i, DEPENDENTS))
            })
            .collect();
        let frac = segment.len() as f64 / r.len() as f64;
        assert!((0.3..0.5).contains(&frac), "segment fraction {frac}");
        // Within the segment, claims concentrate near 12K.
        let mean: f64 =
            segment.iter().map(|&i| r.value(i, CLAIMS)).sum::<f64>() / segment.len() as f64;
        assert!((mean - 12_000.0).abs() < 300.0, "segment claim mean {mean}");
    }

    #[test]
    fn segments_are_separated_on_claims() {
        let r = insurance_relation(5_000, 78);
        let young_claims: Vec<f64> =
            (0..r.len()).filter(|&i| r.value(i, AGE) < 35.0).map(|i| r.value(i, CLAIMS)).collect();
        let old_claims: Vec<f64> =
            (0..r.len()).filter(|&i| r.value(i, AGE) > 55.0).map(|i| r.value(i, CLAIMS)).collect();
        assert!(!young_claims.is_empty() && !old_claims.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&young_claims) < 6_000.0);
        assert!(mean(&old_claims) > 18_000.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(insurance_relation(100, 1), insurance_relation(100, 1));
        assert_ne!(insurance_relation(100, 1), insurance_relation(100, 2));
    }
}
