//! # datagen
//!
//! Seeded synthetic workload generators and CSV I/O for the evaluation of
//! the `interval-rules` workspace.
//!
//! Every generator is deterministic given its seed. The headline workload,
//! [`wbcd`], substitutes for the Wisconsin Breast Cancer Data the paper used
//! (no network access to the UCI repository here): a two-component Gaussian
//! mixture over 30 interval attributes whose per-attribute locations and
//! spreads are modeled on the published WDBC feature statistics. The paper's
//! scalability methodology — hold the *cluster structure* constant while
//! scaling points-per-cluster and outliers proportionally — is implemented
//! by [`mixture::MixtureSpec::generate`], so the substitution preserves
//! exactly the property the experiment measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod geo;
pub mod grid;
pub mod insurance;
pub mod mixture;
pub mod overlap2d;
pub mod rng;
pub mod salary;
pub mod wbcd;

pub use mixture::{Component, MixtureSpec};
pub use rng::SeededRng;
