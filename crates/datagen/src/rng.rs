//! Seeded randomness helpers shared by all generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random source with the handful of distributions the
/// generators need. Wraps [`StdRng`] so generator code never depends on the
/// `rand` API surface directly.
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
    /// Cached second value of the last Box–Muller draw.
    spare_normal: Option<f64>,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng { inner: StdRng::seed_from_u64(seed), spare_normal: None }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.random_range(0..n)
    }

    /// Standard normal via Box–Muller (no `rand_distr` dependency).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// Samples an index according to (unnormalized) non-negative weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
        let mut c = SeededRng::new(43);
        assert_ne!(a.uniform(), c.uniform());
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = SeededRng::new(1);
        for _ in 0..1000 {
            let v = rng.uniform_in(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn weighted_index_obeys_weights() {
        let mut rng = SeededRng::new(11);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn index_in_range() {
        let mut rng = SeededRng::new(5);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }
}
