//! A WBCD-like workload: the stand-in for the Wisconsin Breast Cancer Data
//! used in the paper's Section 7.2 experiments.
//!
//! The real WDBC has 569 tuples × 30 numeric attributes (10 cell-nucleus
//! features, each as mean / standard error / worst) in two diagnostic
//! classes; the paper used a 500-tuple subset with the 30 numeric
//! attributes. We cannot fetch UCI data here, so this module generates a
//! two-component Gaussian mixture whose per-attribute, per-class locations
//! and spreads are modeled on the published WDBC summary statistics (in the
//! features' real units). The scalability experiment only depends on the
//! dataset having a *fixed per-attribute cluster structure* that replicates
//! as the data grows — which the mixture preserves exactly (see
//! `DESIGN.md`, substitutions table).

use crate::mixture::{Component, MixtureSpec};
use dar_core::{Attribute, Relation, Schema};

/// Tuple count of the paper's base dataset.
pub const WBCD_BASE_TUPLES: usize = 500;

/// `(name, benign mean, benign sd, malignant mean, malignant sd)` for the 30
/// numeric WDBC attributes, approximated from the published per-class
/// summary statistics.
#[rustfmt::skip]
const FEATURES: [(&str, f64, f64, f64, f64); 30] = [
    ("radius_mean",             12.15,  1.78,   17.46,  3.20),
    ("texture_mean",            17.91,  4.00,   21.60,  3.80),
    ("perimeter_mean",          78.08, 11.80,  115.40, 21.90),
    ("area_mean",              462.80, 134.0,  978.40, 368.0),
    ("smoothness_mean",         0.0925, 0.013,   0.1029, 0.013),
    ("compactness_mean",        0.080,  0.034,   0.145,  0.054),
    ("concavity_mean",          0.046,  0.043,   0.161,  0.075),
    ("concave_points_mean",     0.0257, 0.016,   0.088,  0.034),
    ("symmetry_mean",           0.174,  0.025,   0.193,  0.028),
    ("fractal_dimension_mean",  0.0629, 0.007,   0.0627, 0.0075),
    ("radius_se",               0.284,  0.11,    0.609,  0.35),
    ("texture_se",              1.22,   0.59,    1.21,   0.48),
    ("perimeter_se",            2.00,   0.77,    4.32,   2.57),
    ("area_se",                21.10,   8.80,   72.70,  61.30),
    ("smoothness_se",           0.0072, 0.003,   0.0068, 0.003),
    ("compactness_se",          0.0214, 0.016,   0.0323, 0.018),
    ("concavity_se",            0.026,  0.033,   0.0418, 0.021),
    ("concave_points_se",       0.0099, 0.0057,  0.0151, 0.0055),
    ("symmetry_se",             0.0206, 0.007,   0.0205, 0.010),
    ("fractal_dimension_se",    0.0036, 0.0029,  0.0041, 0.0020),
    ("radius_worst",           13.38,   1.98,   21.13,   4.28),
    ("texture_worst",          23.50,   5.50,   29.30,   5.40),
    ("perimeter_worst",        87.00,  13.50,  141.40,  29.50),
    ("area_worst",            558.90, 163.0,  1422.00, 597.0),
    ("smoothness_worst",        0.125,  0.020,   0.145,  0.022),
    ("compactness_worst",       0.183,  0.092,   0.375,  0.170),
    ("concavity_worst",         0.166,  0.140,   0.451,  0.182),
    ("concave_points_worst",    0.0744, 0.036,   0.182,  0.046),
    ("symmetry_worst",          0.270,  0.042,   0.323,  0.074),
    ("fractal_dimension_worst", 0.0794, 0.014,   0.0915, 0.022),
];

/// Benign : malignant mixing proportions of the real dataset (357 : 212).
const BENIGN_WEIGHT: f64 = 357.0;
const MALIGNANT_WEIGHT: f64 = 212.0;

/// Within-class shared-factor loading. The real WDBC features are strongly
/// correlated (size features are nearly collinear; pairwise |r| commonly
/// 0.5–0.99): a cluster on one attribute projects to a *narrow* image on
/// the others. ρ = 0.9 gives pairwise within-class correlation ρ² ≈ 0.8.
pub const WBCD_LATENT_RHO: f64 = 0.9;

/// The schema of the WBCD-like relation: 30 interval attributes.
pub fn wbcd_schema() -> Schema {
    Schema::new(FEATURES.iter().map(|f| Attribute::interval(f.0)).collect())
}

/// The two-component mixture spec (no outliers; add them per experiment via
/// [`wbcd_relation`]).
pub fn wbcd_spec() -> MixtureSpec {
    let benign = Component {
        weight: BENIGN_WEIGHT,
        means: FEATURES.iter().map(|f| f.1).collect(),
        sds: FEATURES.iter().map(|f| f.2).collect(),
        latent_rho: WBCD_LATENT_RHO,
    };
    let malignant = Component {
        weight: MALIGNANT_WEIGHT,
        means: FEATURES.iter().map(|f| f.3).collect(),
        sds: FEATURES.iter().map(|f| f.4).collect(),
        latent_rho: WBCD_LATENT_RHO,
    };
    // Outliers span roughly ±4σ beyond both components.
    let outlier_range = FEATURES
        .iter()
        .map(|f| {
            let lo = (f.1 - 4.0 * f.2).min(f.3 - 4.0 * f.4);
            let hi = (f.1 + 4.0 * f.2).max(f.3 + 4.0 * f.4);
            (lo, hi)
        })
        .collect();
    MixtureSpec {
        schema: wbcd_schema(),
        components: vec![benign, malignant],
        outlier_frac: 0.0,
        outlier_range,
    }
}

/// Generates a WBCD-like relation of `n` tuples with the given outlier
/// fraction — the paper's scaled experiment ("increasing the number of
/// points per cluster and proportionally the number of irrelevant points").
pub fn wbcd_relation(n: usize, outlier_frac: f64, seed: u64) -> Relation {
    let mut spec = wbcd_spec();
    spec.outlier_frac = outlier_frac;
    spec.generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid() {
        wbcd_spec().validate().unwrap();
        assert_eq!(wbcd_schema().arity(), 30);
        assert_eq!(wbcd_schema().attr_by_name("area_worst"), Some(23));
    }

    #[test]
    fn class_proportions_hold() {
        let r = wbcd_relation(WBCD_BASE_TUPLES * 10, 0.0, 17);
        // area_mean separates the classes reasonably well at ~650.
        let malignant = r.column(3).iter().filter(|&&v| v > 650.0).count();
        let frac = malignant as f64 / r.len() as f64;
        let expected = MALIGNANT_WEIGHT / (MALIGNANT_WEIGHT + BENIGN_WEIGHT);
        assert!((frac - expected).abs() < 0.08, "malignant frac {frac} vs {expected}");
    }

    #[test]
    fn attribute_scales_are_realistic() {
        let r = wbcd_relation(2_000, 0.0, 23);
        let mean = |a: usize| r.column(a).iter().sum::<f64>() / r.len() as f64;
        // Pooled means near the weighted average of class means.
        assert!((12.0..16.0).contains(&mean(0)), "radius_mean {}", mean(0));
        assert!((500.0..900.0).contains(&mean(3)), "area_mean {}", mean(3));
        assert!((0.05..0.15).contains(&mean(4)), "smoothness {}", mean(4));
    }

    #[test]
    fn outlier_injection_widens_the_spread() {
        let clean = wbcd_relation(5_000, 0.0, 5);
        let noisy = wbcd_relation(5_000, 0.2, 5);
        let spread = |r: &Relation, a: usize| {
            let m = r.column(a).iter().sum::<f64>() / r.len() as f64;
            r.column(a).iter().map(|v| (v - m).powi(2)).sum::<f64>() / r.len() as f64
        };
        assert!(spread(&noisy, 0) > spread(&clean, 0));
    }
}
