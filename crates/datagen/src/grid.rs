//! Grid-structured mixture specs: `k` well-separated components laid out on
//! a lattice. The workhorse for controlled experiments where the expected
//! cluster count must be known exactly.

use crate::mixture::{Component, MixtureSpec};
use dar_core::Schema;

/// Builds a [`MixtureSpec`] with `clusters` components over `attrs`
/// attributes. Component `c`'s mean on attribute `j` is
/// `center_step × ((c + j) mod clusters)` — a Latin-square layout, so every
/// attribute individually sees all `clusters` cluster positions, and cluster
/// membership is recoverable from any single attribute. `spread` is the
/// per-attribute standard deviation; keep `spread ≪ center_step` for
/// separable clusters.
pub fn grid_spec(
    attrs: usize,
    clusters: usize,
    center_step: f64,
    spread: f64,
    outlier_frac: f64,
) -> MixtureSpec {
    assert!(clusters > 0, "need at least one cluster");
    let components = (0..clusters)
        .map(|c| Component {
            weight: 1.0,
            means: (0..attrs).map(|j| center_step * ((c + j) % clusters) as f64).collect(),
            sds: vec![spread; attrs],
            latent_rho: 0.0,
        })
        .collect();
    let hi = center_step * clusters as f64;
    MixtureSpec {
        schema: Schema::interval_attrs(attrs),
        components,
        outlier_frac,
        outlier_range: vec![(-center_step, hi); attrs],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_is_valid_and_shaped() {
        let s = grid_spec(5, 4, 100.0, 1.0, 0.05);
        s.validate().unwrap();
        assert_eq!(s.components.len(), 4);
        assert_eq!(s.schema.arity(), 5);
        // Latin square: attribute 0 sees means 0,100,200,300.
        let mut means0: Vec<f64> = s.components.iter().map(|c| c.means[0]).collect();
        means0.sort_by(f64::total_cmp);
        assert_eq!(means0, vec![0.0, 100.0, 200.0, 300.0]);
        // Attribute 1 is shifted by one step.
        assert_eq!(s.components[0].means[1], 100.0);
    }

    #[test]
    fn generated_data_has_expected_cluster_count_per_attribute() {
        let s = grid_spec(3, 4, 100.0, 1.0, 0.0);
        let r = s.generate(2_000, 123);
        // Histogram attribute 0 into 100-wide bins around the centers.
        let mut bins = [0usize; 4];
        for &v in r.column(0) {
            let b = ((v + 50.0) / 100.0).floor() as i64;
            assert!((0..4).contains(&b), "value {v} outside expected bands");
            bins[b as usize] += 1;
        }
        for b in bins {
            let frac = b as f64 / 2_000.0;
            assert!((frac - 0.25).abs() < 0.05, "uneven bin {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_rejected() {
        grid_spec(1, 0, 1.0, 0.1, 0.0);
    }
}
