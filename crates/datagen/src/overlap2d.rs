//! The 2-D configuration of the paper's Figure 4.
//!
//! Two clusters: `C_X` is dense when projected on the X axis (12 tuples),
//! `C_Y` dense when projected on the Y axis (13 tuples); 10 tuples lie in
//! both. Classical confidence ranks `C_X ⇒ C_Y` (10/12) above
//! `C_Y ⇒ C_X` (10/13), but the three tuples of `C_Y − C_X` sit *close* to
//! the intersection while the two tuples of `C_X − C_Y` are far from it —
//! so a distance-based measure must rank `C_Y ⇒ C_X` as the stronger
//! implication. This module builds exactly that geometry.

use dar_core::{Interval, Relation, RelationBuilder, Schema};

/// X-extent of cluster `C_X`.
pub fn cx_range() -> Interval {
    Interval::new(0.0, 1.0)
}

/// Y-extent of cluster `C_Y`.
pub fn cy_range() -> Interval {
    Interval::new(0.0, 1.0)
}

/// The 15 points of the figure: 10 in the intersection, 2 in `C_X − C_Y`
/// (X inside, Y far), 3 in `C_Y − C_X` (Y inside, X *moderately* outside —
/// closer to the intersection than the far-out Y values).
pub fn figure4_points() -> Vec<(f64, f64)> {
    let mut pts = Vec::with_capacity(15);
    // Intersection: a 5×2 lattice filling [0,1]×[0,1].
    for i in 0..5 {
        for j in 0..2 {
            pts.push((0.25 * i as f64, 0.2 + 0.6 * j as f64));
        }
    }
    // C_X − C_Y: X dense, Y distant.
    pts.push((0.3, 8.0));
    pts.push((0.7, 9.0));
    // C_Y − C_X: Y dense, X moderately outside.
    pts.push((2.5, 0.3));
    pts.push((2.7, 0.5));
    pts.push((2.9, 0.7));
    pts
}

/// The points as a relation over attributes `(x, y)`.
pub fn figure4_relation() -> Relation {
    let mut b = RelationBuilder::with_capacity(Schema::interval_attrs(2), 15);
    for (x, y) in figure4_points() {
        b.push_row(&[x, y]).expect("static points match the schema");
    }
    b.finish()
}

/// Row indices of `C_X` (tuples whose X value lies in [`cx_range`]).
pub fn cx_rows() -> Vec<usize> {
    figure4_points()
        .iter()
        .enumerate()
        .filter(|(_, (x, _))| cx_range().contains(*x))
        .map(|(i, _)| i)
        .collect()
}

/// Row indices of `C_Y` (tuples whose Y value lies in [`cy_range`]).
pub fn cy_rows() -> Vec<usize> {
    figure4_points()
        .iter()
        .enumerate()
        .filter(|(_, (_, y))| cy_range().contains(*y))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_figure4() {
        let cx = cx_rows();
        let cy = cy_rows();
        assert_eq!(cx.len(), 12, "|C_X|");
        assert_eq!(cy.len(), 13, "|C_Y|");
        let both: Vec<usize> = cx.iter().filter(|i| cy.contains(i)).copied().collect();
        assert_eq!(both.len(), 10, "|C_X ∩ C_Y|");
    }

    #[test]
    fn classical_confidences_are_10_12_and_10_13() {
        let cx = cx_rows().len() as f64;
        let cy = cy_rows().len() as f64;
        assert!((10.0 / cx - 10.0 / 12.0).abs() < 1e-12);
        assert!((10.0 / cy - 10.0 / 13.0).abs() < 1e-12);
        assert!(10.0 / cx > 10.0 / cy, "classical ranks C_X ⇒ C_Y higher");
    }

    #[test]
    fn difference_sets_have_the_intended_asymmetry() {
        // C_Y − C_X x-values are closer to C_X's range than
        // C_X − C_Y y-values are to C_Y's range.
        let pts = figure4_points();
        let cx = cx_rows();
        let cy = cy_rows();
        let max_x_excursion = cy
            .iter()
            .filter(|i| !cx.contains(i))
            .map(|&i| pts[i].0 - cx_range().hi)
            .fold(0.0f64, f64::max);
        let min_y_excursion = cx
            .iter()
            .filter(|i| !cy.contains(i))
            .map(|&i| pts[i].1 - cy_range().hi)
            .fold(f64::INFINITY, f64::min);
        assert!(
            max_x_excursion < min_y_excursion,
            "C_Y − C_X ({max_x_excursion}) must sit closer than C_X − C_Y ({min_y_excursion})"
        );
    }
}
