//! The paper's running examples: the Figure 1 salary column and the
//! Figure 2 relations R1/R2.

use dar_core::{Attribute, AttributeKind, Relation, RelationBuilder, Schema};

/// Category code for `Job = Mgr`.
pub const JOB_MGR: f64 = 0.0;
/// Category code for `Job = DBA`.
pub const JOB_DBA: f64 = 1.0;

/// The six salary values of Figure 1, ascending.
pub fn figure1_salaries() -> Vec<f64> {
    vec![18_000.0, 30_000.0, 31_000.0, 80_000.0, 81_000.0, 82_000.0]
}

/// Schema shared by R1 and R2: `(Job nominal, Age interval, Salary interval)`.
pub fn figure2_schema() -> Schema {
    Schema::new(vec![
        Attribute { name: "Job".into(), kind: AttributeKind::Nominal },
        Attribute::interval("Age"),
        Attribute::interval("Salary"),
    ])
}

fn build(rows: &[[f64; 3]]) -> Relation {
    let mut b = RelationBuilder::with_capacity(figure2_schema(), rows.len());
    for row in rows {
        b.push_row(row).expect("static rows match the schema");
    }
    b.finish()
}

/// Relation R1 of Figure 2: three 30-year-old DBAs at 40K, plus DBAs at
/// 100K and 90K and a manager at 40K.
pub fn relation_r1() -> Relation {
    build(&[
        [JOB_MGR, 30.0, 40_000.0],
        [JOB_DBA, 30.0, 40_000.0],
        [JOB_DBA, 30.0, 40_000.0],
        [JOB_DBA, 30.0, 40_000.0],
        [JOB_DBA, 30.0, 100_000.0],
        [JOB_DBA, 30.0, 90_000.0],
    ])
}

/// Relation R2 of Figure 2: identical except the last two DBAs earn 41K and
/// 42K — *near* 40K, which classical support/confidence cannot see but a
/// distance-based measure must (Goals 2 and 3).
pub fn relation_r2() -> Relation {
    build(&[
        [JOB_MGR, 30.0, 40_000.0],
        [JOB_DBA, 30.0, 40_000.0],
        [JOB_DBA, 30.0, 40_000.0],
        [JOB_DBA, 30.0, 40_000.0],
        [JOB_DBA, 30.0, 41_000.0],
        [JOB_DBA, 30.0, 42_000.0],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_relations_match_the_paper() {
        let r1 = relation_r1();
        let r2 = relation_r2();
        assert_eq!(r1.len(), 6);
        assert_eq!(r2.len(), 6);
        // Rule (1): Job=DBA ∧ Age=30 ⇒ Salary=40,000.
        // Support 3/6 = 50% in both relations.
        let matches = |r: &Relation| {
            (0..r.len())
                .filter(|&i| {
                    r.value(i, 0) == JOB_DBA && r.value(i, 1) == 30.0 && r.value(i, 2) == 40_000.0
                })
                .count()
        };
        assert_eq!(matches(&r1), 3);
        assert_eq!(matches(&r2), 3);
        // Five 30-year-old DBAs in both → confidence 3/5 = 60%.
        let dbas = |r: &Relation| {
            (0..r.len()).filter(|&i| r.value(i, 0) == JOB_DBA && r.value(i, 1) == 30.0).count()
        };
        assert_eq!(dbas(&r1), 5);
        assert_eq!(dbas(&r2), 5);
    }

    #[test]
    fn figure1_values_ascending() {
        let v = figure1_salaries();
        assert_eq!(v.len(), 6);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }
}
