//! Minimal CSV persistence for relations — hand-rolled so the workspace
//! stays within its sanctioned dependency set.
//!
//! Format: a header row of `name:kind` cells (`kind` ∈ `interval`,
//! `ordinal`, `nominal`), then one row of decimal values per tuple. No
//! quoting — attribute names must not contain commas, colons or newlines.

use dar_core::{Attribute, AttributeKind, Relation, RelationBuilder, Schema};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Serializes a relation to CSV text.
pub fn to_csv_string(relation: &Relation) -> String {
    let mut out = String::new();
    let schema = relation.schema();
    for (i, (_, attr)) in schema.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match attr.kind {
            AttributeKind::Interval => "interval",
            AttributeKind::Ordinal => "ordinal",
            AttributeKind::Nominal => "nominal",
        };
        let _ = write!(out, "{}:{}", attr.name, kind);
    }
    out.push('\n');
    for row in 0..relation.len() {
        for attr in 0..schema.arity() {
            if attr > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", relation.value(row, attr));
        }
        out.push('\n');
    }
    out
}

/// Writes a relation to a CSV file (buffered).
pub fn write_csv(relation: &Relation, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(to_csv_string(relation).as_bytes())?;
    w.flush()
}

/// Parses a relation from CSV text.
pub fn from_csv_str(text: &str) -> io::Result<Relation> {
    read_csv_impl(text.as_bytes())
}

/// Reads a relation from a CSV file (buffered).
pub fn read_csv(path: &Path) -> io::Result<Relation> {
    read_csv_impl(std::fs::File::open(path)?)
}

fn read_csv_impl<R: Read>(reader: R) -> io::Result<Relation> {
    let mut lines = BufReader::new(reader).lines();
    let header =
        lines.next().ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))??;
    let attributes: Vec<Attribute> = header
        .split(',')
        .map(|cell| {
            let (name, kind) = cell.rsplit_once(':').ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad header cell {cell:?}"))
            })?;
            let kind = match kind {
                "interval" => AttributeKind::Interval,
                "ordinal" => AttributeKind::Ordinal,
                "nominal" => AttributeKind::Nominal,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown attribute kind {other:?}"),
                    ))
                }
            };
            Ok(Attribute { name: name.to_string(), kind })
        })
        .collect::<io::Result<_>>()?;
    let schema = Schema::new(attributes);
    let arity = schema.arity();
    let mut builder = RelationBuilder::new(schema);
    let mut row = Vec::with_capacity(arity);
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        row.clear();
        for cell in line.split(',') {
            let v: f64 = cell.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad number {cell:?}: {e}", lineno + 2),
                )
            })?;
            row.push(v);
        }
        builder.push_row(&row).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", lineno + 2))
        })?;
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::salary::relation_r1;

    #[test]
    fn roundtrip_through_string() {
        let r = relation_r1();
        let text = to_csv_string(&r);
        let back = from_csv_str(&text).unwrap();
        assert_eq!(r, back);
        assert!(text.starts_with("Job:nominal,Age:interval,Salary:interval\n"));
    }

    #[test]
    fn roundtrip_through_file() {
        let r = relation_r1();
        let dir = std::env::temp_dir();
        let path = dir.join("interval_rules_csv_roundtrip_test.csv");
        write_csv(&r, &path).unwrap();
        let back = read_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(r, back);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(from_csv_str("").is_err());
        assert!(from_csv_str("noheaderkind\n1\n").is_err());
        assert!(from_csv_str("a:interval\nnot_a_number\n").is_err());
        assert!(from_csv_str("a:mystery\n1\n").is_err());
        // Wrong arity row.
        assert!(from_csv_str("a:interval,b:interval\n1.0\n").is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let r = from_csv_str("a:interval\n1\n\n2\n").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.column(0), &[1.0, 2.0]);
    }
}
