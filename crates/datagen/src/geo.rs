//! A geospatial workload exercising *multi-attribute* sets: the paper's
//! Section 5.2 example of a meaningful joint metric ("it may be reasonable
//! to use the Euclidean distance to measure distance across the two
//! attributes Latitude and Longitude").
//!
//! Listings carry `(lat, lon, price)`: three urban hotspots, each with its
//! own price level, plus scattered rural listings.

use crate::rng::SeededRng;
use dar_core::{Attribute, Relation, RelationBuilder, Schema};

/// Attribute index of latitude.
pub const LAT: usize = 0;
/// Attribute index of longitude.
pub const LON: usize = 1;
/// Attribute index of the listing price.
pub const PRICE: usize = 2;

/// The three hotspots: `(lat, lon, price mean)`, spreads ~0.05° and $30K.
pub const HOTSPOTS: [(f64, f64, f64); 3] = [
    (47.60, -122.33, 850_000.0), // dense urban core, expensive
    (47.45, -122.10, 520_000.0), // suburb
    (47.75, -122.50, 330_000.0), // exurb
];

/// Schema: `(lat, lon, price)`.
pub fn geo_schema() -> Schema {
    Schema::new(vec![
        Attribute::interval("lat"),
        Attribute::interval("lon"),
        Attribute::interval("price"),
    ])
}

/// Generates `n` listings: 85% from the hotspots (equal weights), 15%
/// scattered uniformly over the bounding region with uniform prices.
pub fn geo_relation(n: usize, seed: u64) -> Relation {
    let mut rng = SeededRng::new(seed);
    let mut b = RelationBuilder::with_capacity(geo_schema(), n);
    for _ in 0..n {
        let row = if rng.uniform() < 0.15 {
            [
                rng.uniform_in(47.3, 47.9),
                rng.uniform_in(-122.7, -121.9),
                rng.uniform_in(150_000.0, 1_200_000.0),
            ]
        } else {
            let (lat, lon, price) = HOTSPOTS[rng.index(HOTSPOTS.len())];
            [rng.normal(lat, 0.015), rng.normal(lon, 0.015), rng.normal(price, 30_000.0)]
        };
        b.push_row(&row).expect("generated rows match the schema");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspots_are_present_and_priced() {
        let r = geo_relation(6_000, 5);
        for &(lat, lon, price) in &HOTSPOTS {
            let members: Vec<usize> = (0..r.len())
                .filter(|&i| {
                    (r.value(i, LAT) - lat).abs() < 0.05 && (r.value(i, LON) - lon).abs() < 0.05
                })
                .collect();
            let frac = members.len() as f64 / r.len() as f64;
            assert!(frac > 0.2, "hotspot ({lat},{lon}) only has {frac}");
            let mean_price: f64 =
                members.iter().map(|&i| r.value(i, PRICE)).sum::<f64>() / members.len() as f64;
            assert!((mean_price - price).abs() < 20_000.0, "hotspot price {mean_price} vs {price}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(geo_relation(100, 9), geo_relation(100, 9));
    }
}
