//! Gaussian-mixture relation generator with proportional outlier injection.
//!
//! This is the engine behind the scalability workloads: the paper's Section
//! 7.2 methodology holds the data *complexity* (number and shape of clusters
//! and rules) constant while growing "the number of points per cluster and
//! proportionally the number of irrelevant (or outliers) points". A
//! [`MixtureSpec`] is exactly that fixed structure; `generate(n)` scales the
//! population without moving the components.

use crate::rng::SeededRng;
use dar_core::{Relation, RelationBuilder, Schema};

/// One mixture component: a multivariate Gaussian with optional
/// equicorrelation through a single latent factor.
///
/// With `latent_rho = ρ`, each tuple draws one latent `z ~ N(0,1)` and each
/// attribute is `mean + sd·(ρ·z + √(1−ρ²)·ε)` — marginals stay
/// `N(mean, sd²)` while any two attributes correlate with coefficient
/// `ρ²`. Real datasets like the WDBC have strongly correlated features
/// (radius/perimeter/area are nearly collinear); without this, clusters on
/// one attribute have maximally wide images on every other attribute,
/// which is both unrealistic and degenerate for the clustering graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Relative sampling weight.
    pub weight: f64,
    /// Per-attribute mean.
    pub means: Vec<f64>,
    /// Per-attribute standard deviation.
    pub sds: Vec<f64>,
    /// Shared-factor loading in `[0, 1]`; `0.0` = independent attributes.
    pub latent_rho: f64,
}

/// A mixture of Gaussian components plus a uniform outlier background.
#[derive(Debug, Clone, PartialEq)]
pub struct MixtureSpec {
    /// The schema of generated relations.
    pub schema: Schema,
    /// The components; all must agree with the schema arity.
    pub components: Vec<Component>,
    /// Fraction of tuples drawn uniformly from `outlier_range` instead of a
    /// component (the "irrelevant points" of the paper's experiment).
    pub outlier_frac: f64,
    /// Per-attribute `(lo, hi)` range outliers are drawn from.
    pub outlier_range: Vec<(f64, f64)>,
}

impl MixtureSpec {
    /// Validates internal consistency (arity agreement, sane fractions).
    pub fn validate(&self) -> Result<(), String> {
        let m = self.schema.arity();
        if self.components.is_empty() {
            return Err("mixture needs at least one component".into());
        }
        for (i, c) in self.components.iter().enumerate() {
            if c.means.len() != m || c.sds.len() != m {
                return Err(format!("component {i} arity mismatch (schema has {m} attrs)"));
            }
            if c.weight < 0.0 {
                return Err(format!("component {i} has negative weight"));
            }
            if !(0.0..=1.0).contains(&c.latent_rho) {
                return Err(format!("component {i} latent_rho outside [0, 1]"));
            }
        }
        if !(0.0..=1.0).contains(&self.outlier_frac) {
            return Err("outlier_frac must be within [0, 1]".into());
        }
        if self.outlier_range.len() != m {
            return Err("outlier_range arity mismatch".into());
        }
        Ok(())
    }

    /// Generates `n` tuples with the given seed. Cluster membership is drawn
    /// by weight, so expected cluster populations scale linearly in `n`
    /// while the cluster geometry stays fixed.
    pub fn generate(&self, n: usize, seed: u64) -> Relation {
        debug_assert!(self.validate().is_ok());
        let mut rng = SeededRng::new(seed);
        let weights: Vec<f64> = self.components.iter().map(|c| c.weight).collect();
        let m = self.schema.arity();
        let mut b = RelationBuilder::with_capacity(self.schema.clone(), n);
        let mut row = vec![0.0; m];
        for _ in 0..n {
            if rng.uniform() < self.outlier_frac {
                for (j, v) in row.iter_mut().enumerate() {
                    let (lo, hi) = self.outlier_range[j];
                    *v = rng.uniform_in(lo, hi);
                }
            } else {
                let c = &self.components[rng.weighted_index(&weights)];
                let z = if c.latent_rho > 0.0 { rng.standard_normal() } else { 0.0 };
                let indep = (1.0 - c.latent_rho * c.latent_rho).sqrt();
                for (j, v) in row.iter_mut().enumerate() {
                    let e = rng.standard_normal();
                    *v = c.means[j] + c.sds[j] * (c.latent_rho * z + indep * e);
                }
            }
            b.push_row(&row).expect("generated rows match the schema");
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec2() -> MixtureSpec {
        MixtureSpec {
            schema: Schema::interval_attrs(2),
            components: vec![
                Component {
                    weight: 1.0,
                    means: vec![0.0, 100.0],
                    sds: vec![1.0, 2.0],
                    latent_rho: 0.0,
                },
                Component {
                    weight: 3.0,
                    means: vec![50.0, 200.0],
                    sds: vec![1.0, 2.0],
                    latent_rho: 0.0,
                },
            ],
            outlier_frac: 0.1,
            outlier_range: vec![(-100.0, 300.0), (-100.0, 400.0)],
        }
    }

    #[test]
    fn validate_catches_mismatches() {
        assert!(spec2().validate().is_ok());
        let mut bad = spec2();
        bad.components[0].means.pop();
        assert!(bad.validate().is_err());
        let mut bad = spec2();
        bad.outlier_frac = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = spec2();
        bad.components.clear();
        assert!(bad.validate().is_err());
        let mut bad = spec2();
        bad.outlier_range.pop();
        assert!(bad.validate().is_err());
        let mut bad = spec2();
        bad.components[1].weight = -1.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec2();
        let a = s.generate(500, 9);
        let b = s.generate(500, 9);
        assert_eq!(a, b);
        let c = s.generate(500, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn component_weights_shape_the_population() {
        let s = spec2();
        let r = s.generate(8_000, 3);
        // Attribute 0: near 0 → comp 0; near 50 → comp 1.
        let near0 = r.column(0).iter().filter(|v| v.abs() < 10.0).count();
        let near50 = r.column(0).iter().filter(|v| (**v - 50.0).abs() < 10.0).count();
        let ratio = near50 as f64 / near0 as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
        // ~10% of tuples are outliers (outside both cluster bands).
        let outliers = r.len() - near0 - near50;
        let frac = outliers as f64 / r.len() as f64;
        assert!((frac - 0.1).abs() < 0.05, "outlier fraction {frac}");
    }

    #[test]
    fn scaling_preserves_structure() {
        // Cluster centroids should not move as n grows — the paper's
        // constant-complexity scaling methodology.
        let s = spec2();
        for n in [1_000, 4_000] {
            let r = s.generate(n, 7);
            let near0: Vec<f64> = r.column(0).iter().copied().filter(|v| v.abs() < 10.0).collect();
            let mean = near0.iter().sum::<f64>() / near0.len() as f64;
            assert!(mean.abs() < 0.5, "centroid drift at n={n}: {mean}");
        }
    }
}
