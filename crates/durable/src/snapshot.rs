//! Checksummed, atomically-installed snapshots.
//!
//! A sealed snapshot is the body text followed by one footer line:
//!
//! ```text
//! <body…>
//! dar-footer v1 seq=<u64> crc32=<8 hex digits> len=<body bytes>
//! ```
//!
//! `len` pins the body size (so truncation is caught even when the footer
//! itself survives), `crc32` guards the body bytes, and `seq` records the
//! last WAL sequence number the snapshot includes — the pivot of
//! seq-filtered replay.
//!
//! Installation is the classic atomic protocol, spelled out as explicit
//! storage calls so the fault harness can crash between any two of them:
//!
//! 1. write the sealed text to `<path>.tmp`
//! 2. fsync `<path>.tmp`
//! 3. if `<path>` exists, rename it to `<path>.prev` (keep the last good)
//! 4. rename `<path>.tmp` over `<path>`
//! 5. fsync the directory
//!
//! Recovery tries `<path>`, then `<path>.prev`, then `<path>.tmp`,
//! verifying the footer before trusting any of them. Every crash point
//! leaves at least one verifiable snapshot: before step 4 the old `path`
//! or (after step 3) `prev` + the fully-synced `tmp`; after step 4 the
//! new `path`. Lost suffixes are covered by WAL replay.

use crate::crc::crc32;
use crate::error::DurableError;
use crate::storage::Storage;
use crate::wal::tmp_path;
use std::path::{Path, PathBuf};

/// The footer line prefix.
pub const FOOTER_PREFIX: &str = "dar-footer v1 ";

/// Appends the checksum footer to a snapshot body of arbitrary bytes —
/// text or the persist-v2 binary formats alike. The body must be the
/// exact bytes a reader will verify; a missing trailing newline byte is
/// added so the ASCII footer sits on its own line (the binary formats
/// already terminate with `0x0A` for exactly this reason).
pub fn seal_bytes(body: &[u8], seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 64);
    out.extend_from_slice(body);
    if out.last() != Some(&b'\n') {
        out.push(b'\n');
    }
    let len = out.len();
    out.extend_from_slice(
        format!("{FOOTER_PREFIX}seq={seq} crc32={:08x} len={len}\n", crc32(&out)).as_bytes(),
    );
    out
}

/// [`seal_bytes`] for text bodies, returning text (the footer is ASCII,
/// so sealing preserves UTF-8). Byte-for-byte identical to the v1 sealer.
pub fn seal(body: &str, seq: u64) -> String {
    String::from_utf8(seal_bytes(body.as_bytes(), seq)).expect("ASCII footer on UTF-8 body")
}

/// Verifies a sealed snapshot and returns `(body, seq)`. Bytes without a
/// footer are passed through untouched with `seq = None` — pre-durability
/// snapshots stay restorable.
///
/// # Errors
/// A diagnosis when the footer is present but the body fails its length
/// or checksum — the snapshot must not be trusted.
pub fn unseal_bytes(bytes: &[u8]) -> Result<(&[u8], Option<u64>), String> {
    // The footer is the final line; everything before its line start is
    // the body (including the body's own trailing newline).
    let trimmed = bytes.strip_suffix(b"\n").unwrap_or(bytes);
    let footer_start = match trimmed.iter().rposition(|&b| b == b'\n') {
        Some(pos) => pos + 1,
        None => 0,
    };
    // A footer line is always ASCII; anything else is a footer-less body.
    let Ok(footer) = std::str::from_utf8(&trimmed[footer_start..]) else {
        return Ok((bytes, None));
    };
    if !footer.starts_with(FOOTER_PREFIX) {
        return Ok((bytes, None));
    }
    let seq: u64 = footer_field(footer, "seq=")?;
    let crc: u32 = u32::from_str_radix(footer_field::<String>(footer, "crc32=")?.as_str(), 16)
        .map_err(|_| format!("bad crc32= field in footer {footer:?}"))?;
    let len: usize = footer_field(footer, "len=")?;
    let body = &bytes[..footer_start];
    if body.len() != len {
        return Err(format!("body is {} bytes but footer pinned {len} (truncated?)", body.len()));
    }
    let actual = crc32(body);
    if actual != crc {
        return Err(format!("body checksum {actual:08x} does not match footer {crc:08x}"));
    }
    Ok((body, Some(seq)))
}

/// [`unseal_bytes`] for text input (the body of a text file is text).
pub fn unseal(text: &str) -> Result<(&str, Option<u64>), String> {
    let (body, seq) = unseal_bytes(text.as_bytes())?;
    Ok((std::str::from_utf8(body).expect("subslice of str at a newline boundary"), seq))
}

/// Like [`unseal_bytes`], but a missing footer is an error. Used on the
/// managed snapshot chain, where every write was sealed — so "no footer"
/// can only mean truncation, and treating it as a legacy body would let
/// a torn snapshot masquerade as a valid one.
pub fn unseal_strict_bytes(bytes: &[u8]) -> Result<(&[u8], u64), String> {
    match unseal_bytes(bytes)? {
        (body, Some(seq)) => Ok((body, seq)),
        (_, None) => Err("missing checksum footer (truncated snapshot?)".into()),
    }
}

/// [`unseal_strict_bytes`] for text input.
pub fn unseal_strict(text: &str) -> Result<(&str, u64), String> {
    match unseal(text)? {
        (body, Some(seq)) => Ok((body, seq)),
        (_, None) => Err("missing checksum footer (truncated snapshot?)".into()),
    }
}

fn footer_field<T: std::str::FromStr>(footer: &str, key: &str) -> Result<T, String> {
    footer
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key))
        .ok_or_else(|| format!("footer missing {key}"))?
        .parse()
        .map_err(|_| format!("bad {key} field in footer {footer:?}"))
}

/// The `<path>.prev` sibling holding the previous good snapshot.
pub fn prev_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".prev");
    PathBuf::from(os)
}

/// Seals `body` with `seq` and installs it at `path` under the atomic
/// protocol, preserving the previously-installed snapshot at
/// `<path>.prev`.
///
/// # Errors
/// I/O failures at any protocol step. The caller's in-memory state is
/// unaffected; on-disk state is recoverable from whichever of
/// `path`/`prev`/`tmp` survived (plus the WAL).
pub fn install(
    storage: &dyn Storage,
    path: &Path,
    body: &[u8],
    seq: u64,
) -> Result<(), DurableError> {
    let m = crate::metrics::metrics();
    match install_protocol(storage, path, body, seq) {
        Ok(()) => {
            m.snapshot_seals.inc();
            dar_obs::event("durable.snapshot_seal", &[("seq", &seq.to_string())]);
            Ok(())
        }
        Err(e) => {
            m.snapshot_failures.inc();
            dar_obs::event(
                "durable.snapshot_failure",
                &[("seq", &seq.to_string()), ("error", &e.to_string())],
            );
            Err(e)
        }
    }
}

fn install_protocol(
    storage: &dyn Storage,
    path: &Path,
    body: &[u8],
    seq: u64,
) -> Result<(), DurableError> {
    let sealed = seal_bytes(body, seq);
    let tmp = tmp_path(path);
    storage.write(&tmp, &sealed).map_err(|e| DurableError::io("write", &tmp, e))?;
    storage.sync_file(&tmp).map_err(|e| DurableError::io("sync_file", &tmp, e))?;
    if storage.exists(path) {
        let prev = prev_path(path);
        storage.rename(path, &prev).map_err(|e| DurableError::io("rename", path, e))?;
    }
    storage.rename(&tmp, path).map_err(|e| DurableError::io("rename", &tmp, e))?;
    if let Some(dir) = path.parent() {
        storage.sync_dir(dir).map_err(|e| DurableError::io("sync_dir", dir, e))?;
    }
    Ok(())
}

/// Where a recovered snapshot came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotSource {
    /// The installed snapshot at `path` verified.
    Primary,
    /// `path` was missing or corrupt; `<path>.prev` verified.
    Previous,
    /// Only a fully-written `<path>.tmp` (crash before its rename)
    /// verified.
    Tmp,
}

/// A verified snapshot, ready to restore from.
#[derive(Debug, Clone)]
pub struct LoadedSnapshot {
    /// The verified body bytes (footer stripped) — text for the v1
    /// formats, binary for persist v2.
    pub body: Vec<u8>,
    /// The last WAL sequence the snapshot includes (0 for legacy
    /// unsealed snapshots, which predate the WAL).
    pub seq: u64,
    /// Which slot it came from.
    pub source: SnapshotSource,
    /// How many candidate slots failed verification before this one.
    pub corrupt_slots_skipped: u32,
}

/// Loads the newest verifiable snapshot from the `path`/`prev`/`tmp`
/// chain. `Ok(None)` means no slot exists at all (a fresh start);
/// corrupt slots are skipped and counted.
///
/// # Errors
/// Only I/O failures *reading* an existing slot; corruption is handled by
/// falling back, not by erroring.
pub fn load_latest(
    storage: &dyn Storage,
    path: &Path,
) -> Result<Option<LoadedSnapshot>, DurableError> {
    let candidates = [
        (path.to_path_buf(), SnapshotSource::Primary),
        (prev_path(path), SnapshotSource::Previous),
        (tmp_path(path), SnapshotSource::Tmp),
    ];
    let mut skipped = 0u32;
    for (candidate, source) in candidates {
        if !storage.exists(&candidate) {
            continue;
        }
        let bytes =
            storage.read(&candidate).map_err(|e| DurableError::io("read", &candidate, e))?;
        match unseal_strict_bytes(&bytes) {
            Ok((body, seq)) => {
                return Ok(Some(LoadedSnapshot {
                    body: body.to_vec(),
                    seq,
                    source,
                    corrupt_slots_skipped: skipped,
                }));
            }
            Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{scratch_dir, DiskStorage};

    #[test]
    fn seal_unseal_round_trips() {
        let body = "dar-engine v1 epoch=3 tuples=100 sets=1\nthresholds 1.0\n";
        let sealed = seal(body, 42);
        let (back, seq) = unseal(&sealed).unwrap();
        assert_eq!(back, body);
        assert_eq!(seq, Some(42));
        // Legacy text without a footer passes through.
        let (legacy, seq) = unseal(body).unwrap();
        assert_eq!(legacy, body);
        assert_eq!(seq, None);
    }

    #[test]
    fn any_body_corruption_is_caught() {
        let sealed = seal("line one\nline two\n", 7);
        // Truncate the body while the footer keeps its own line: the
        // pinned length catches it even before the checksum does.
        let footer_at = sealed.rfind(FOOTER_PREFIX).unwrap();
        let truncated = format!("{}{}", &sealed[5..footer_at], &sealed[footer_at..]);
        assert!(unseal(&truncated).is_err());
        // Truncation that swallows the body's final newline glues the
        // footer onto the body text — lenient unsealing would wave that
        // through as a legacy snapshot, which is exactly why the managed
        // chain unseals strictly.
        let mut glued = sealed[..footer_at - 5].to_string();
        glued.push_str(&sealed[footer_at..]);
        assert!(unseal_strict(&glued).is_err());
        // Flip a body byte.
        let flipped = sealed.replacen("line", "lime", 1);
        assert!(unseal(&flipped).is_err());
        // Damage the footer's own fields.
        assert!(unseal(&sealed.replace("crc32=", "crc32=f")).is_err());
    }

    #[test]
    fn install_rotates_and_load_prefers_primary() {
        let dir = scratch_dir("snap_rotate");
        let path = dir.join("epoch.snap");
        let s = DiskStorage;
        install(&s, &path, b"first\n", 1).unwrap();
        install(&s, &path, b"second\n", 2).unwrap();
        let loaded = load_latest(&s, &path).unwrap().unwrap();
        assert_eq!(loaded.body, b"second\n");
        assert_eq!(loaded.seq, 2);
        assert_eq!(loaded.source, SnapshotSource::Primary);
        assert_eq!(loaded.corrupt_slots_skipped, 0);
        // The previous good snapshot is retained.
        let (prev_body, prev_seq) = {
            let text = std::fs::read_to_string(prev_path(&path)).unwrap();
            let (b, q) = unseal(&text).map(|(b, q)| (b.to_string(), q)).unwrap();
            (b, q)
        };
        assert_eq!(prev_body, "first\n");
        assert_eq!(prev_seq, Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_primary_falls_back_to_previous() {
        let dir = scratch_dir("snap_fallback");
        let path = dir.join("epoch.snap");
        let s = DiskStorage;
        install(&s, &path, b"old good\n", 5).unwrap();
        install(&s, &path, b"new good\n", 9).unwrap();
        // The managed chain is strict: footer-less garbage (a torn
        // snapshot that lost its footer) is corrupt, not "legacy".
        std::fs::write(&path, "garbage that is not a snapshot").unwrap();
        let loaded = load_latest(&s, &path).unwrap().unwrap();
        assert_eq!(loaded.body, b"old good\n");
        assert_eq!(loaded.source, SnapshotSource::Previous);
        assert_eq!(loaded.corrupt_slots_skipped, 1);
        // A checksum mismatch falls back the same way.
        std::fs::write(&path, seal("tampered\n", 9).replacen("tampered", "tempered", 1)).unwrap();
        let loaded = load_latest(&s, &path).unwrap().unwrap();
        assert_eq!(loaded.body, b"old good\n");
        assert_eq!(loaded.corrupt_slots_skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_bodies_seal_and_install_byte_exactly() {
        // A persist-v2-style body: magic + arbitrary non-UTF-8 bytes,
        // terminated by the format's mandatory newline byte.
        let mut body = b"DACF".to_vec();
        body.extend_from_slice(&[0xFF, 0x00, 0x80, 0x0A, 0xC3, 0x28]);
        body.push(b'\n');
        let sealed = seal_bytes(&body, 11);
        let (back, seq) = unseal_bytes(&sealed).unwrap();
        assert_eq!(back, &body[..], "seal must not alter a newline-terminated body");
        assert_eq!(seq, Some(11));
        // Corruption of a binary body is caught like any other.
        let mut flipped = sealed.clone();
        flipped[5] ^= 0x01;
        assert!(unseal_bytes(&flipped).is_err());
        // And the install/load chain carries the exact bytes.
        let dir = scratch_dir("snap_binary");
        let path = dir.join("epoch.snap");
        let s = DiskStorage;
        install(&s, &path, &body, 11).unwrap();
        let loaded = load_latest(&s, &path).unwrap().unwrap();
        assert_eq!(loaded.body, body);
        assert_eq!(loaded.seq, 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_everything_is_a_fresh_start() {
        let dir = scratch_dir("snap_none");
        let s = DiskStorage;
        assert!(load_latest(&s, &dir.join("never.snap")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
