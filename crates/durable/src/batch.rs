//! The WAL payload codec for ingest batches: rows of `f64` values,
//! encoded little-endian with explicit row lengths, so a decode can never
//! read past what the length prefix promised. Bit-exact: `f64::to_bits`
//! round-trips every value, including negative zero and subnormals
//! (non-finite values never reach the WAL — the engine validates batches
//! before they are logged).

/// Encodes a batch as `u32 rows, then per row: u32 len, len × f64-LE`.
pub fn encode_batch(rows: &[Vec<f64>]) -> Vec<u8> {
    let payload_len = 4 + rows.iter().map(|r| 4 + 8 * r.len()).sum::<usize>();
    let mut out = Vec::with_capacity(payload_len);
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        out.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for v in row {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    out
}

/// A row count of `u32::MAX` marks a *tagged* frame: the next 8 bytes are a
/// little-endian window sequence number, followed by an ordinary v1 batch
/// body. Plain v1 frames can never start with this value — `decode_batch`
/// would have to find `u32::MAX × 4` bytes of row prefixes behind it — so
/// old readers reject tagged frames instead of misparsing them, and new
/// readers accept both.
const WINDOW_TAG_SENTINEL: u32 = u32::MAX;

/// Encodes a batch carrying the sliding-window sequence it lands in:
/// `u32::MAX` sentinel, `u64` window seq (LE), then the v1 batch body.
pub fn encode_tagged_batch(window_seq: u64, rows: &[Vec<f64>]) -> Vec<u8> {
    let body = encode_batch(rows);
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(&WINDOW_TAG_SENTINEL.to_le_bytes());
    out.extend_from_slice(&window_seq.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decodes either frame flavor: returns the window tag (if the frame was
/// written by [`encode_tagged_batch`]) alongside the rows.
pub fn decode_frame(bytes: &[u8]) -> Result<(Option<u64>, Vec<Vec<f64>>), String> {
    if bytes.len() >= 12 {
        let mut head = [0u8; 4];
        head.copy_from_slice(&bytes[..4]);
        if u32::from_le_bytes(head) == WINDOW_TAG_SENTINEL {
            let mut seq = [0u8; 8];
            seq.copy_from_slice(&bytes[4..12]);
            let rows = decode_batch(&bytes[12..])?;
            return Ok((Some(u64::from_le_bytes(seq)), rows));
        }
    }
    Ok((None, decode_batch(bytes)?))
}

/// Decodes a batch, rejecting any framing inconsistency.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<Vec<f64>>, String> {
    let mut cursor = 0usize;
    let rows = read_u32(bytes, &mut cursor)? as usize;
    // Each row costs at least its 4-byte length prefix; a corrupt row
    // count can't make us reserve unbounded memory.
    if bytes.len().saturating_sub(cursor) < rows * 4 {
        return Err(format!(
            "batch claims {rows} rows but only {} bytes remain",
            bytes.len() - cursor
        ));
    }
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let len = read_u32(bytes, &mut cursor)? as usize;
        let need = len * 8;
        if bytes.len() - cursor < need {
            return Err(format!(
                "row {r} claims {len} values but only {} bytes remain",
                bytes.len() - cursor
            ));
        }
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[cursor..cursor + 8]);
            row.push(f64::from_bits(u64::from_le_bytes(word)));
            cursor += 8;
        }
        out.push(row);
    }
    if cursor != bytes.len() {
        return Err(format!("{} trailing bytes after the last row", bytes.len() - cursor));
    }
    Ok(out)
}

fn read_u32(bytes: &[u8], cursor: &mut usize) -> Result<u32, String> {
    if bytes.len() - *cursor < 4 {
        return Err("truncated length prefix".into());
    }
    let mut word = [0u8; 4];
    word.copy_from_slice(&bytes[*cursor..*cursor + 4]);
    *cursor += 4;
    Ok(u32::from_le_bytes(word))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_including_awkward_floats() {
        let batches: Vec<Vec<Vec<f64>>> = vec![
            vec![],
            vec![vec![]],
            vec![vec![1.5, -0.0], vec![0.1 + 0.2], vec![1e-300, -123456.789012345]],
        ];
        for batch in batches {
            let bytes = encode_batch(&batch);
            let back = decode_batch(&bytes).unwrap();
            assert_eq!(back.len(), batch.len());
            for (a, b) in back.iter().zip(batch.iter()) {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "bit-exact round trip");
                }
            }
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let bytes = encode_batch(&[vec![1.0, 2.0], vec![3.0]]);
        for cut in 0..bytes.len() {
            assert!(decode_batch(&bytes[..cut]).is_err(), "cut at {cut} mis-parsed");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_batch(&padded).is_err());
    }

    #[test]
    fn absurd_row_count_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_batch(&bytes).is_err());
    }

    #[test]
    fn tagged_frames_round_trip_and_stay_distinguishable() {
        let rows = vec![vec![1.5, -0.0], vec![0.1 + 0.2]];
        let tagged = encode_tagged_batch(7, &rows);
        let (tag, back) = decode_frame(&tagged).unwrap();
        assert_eq!(tag, Some(7));
        assert_eq!(back, rows);
        // A v1 reader must reject — not misparse — a tagged frame.
        assert!(decode_batch(&tagged).is_err());
        // decode_frame keeps accepting plain v1 frames, untagged.
        let plain = encode_batch(&rows);
        let (tag, back) = decode_frame(&plain).unwrap();
        assert_eq!(tag, None);
        assert_eq!(back, rows);
        // The empty batch tagged with a window seq (the explicit-advance
        // marker) survives too.
        let marker = encode_tagged_batch(42, &[]);
        assert_eq!(decode_frame(&marker).unwrap(), (Some(42), vec![]));
    }

    #[test]
    fn truncated_tagged_frames_are_rejected() {
        let tagged = encode_tagged_batch(3, &[vec![1.0]]);
        for cut in 1..tagged.len() {
            assert!(decode_frame(&tagged[..cut]).is_err(), "cut at {cut} mis-parsed");
        }
    }
}
