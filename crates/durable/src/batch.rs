//! The WAL payload codec for ingest batches: rows of `f64` values,
//! encoded little-endian with explicit row lengths, so a decode can never
//! read past what the length prefix promised. Bit-exact: `f64::to_bits`
//! round-trips every value, including negative zero and subnormals
//! (non-finite values never reach the WAL — the engine validates batches
//! before they are logged).

/// Encodes a batch as `u32 rows, then per row: u32 len, len × f64-LE`.
pub fn encode_batch(rows: &[Vec<f64>]) -> Vec<u8> {
    let payload_len = 4 + rows.iter().map(|r| 4 + 8 * r.len()).sum::<usize>();
    let mut out = Vec::with_capacity(payload_len);
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        out.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for v in row {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    out
}

/// Decodes a batch, rejecting any framing inconsistency.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<Vec<f64>>, String> {
    let mut cursor = 0usize;
    let rows = read_u32(bytes, &mut cursor)? as usize;
    // Each row costs at least its 4-byte length prefix; a corrupt row
    // count can't make us reserve unbounded memory.
    if bytes.len().saturating_sub(cursor) < rows * 4 {
        return Err(format!(
            "batch claims {rows} rows but only {} bytes remain",
            bytes.len() - cursor
        ));
    }
    let mut out = Vec::with_capacity(rows);
    for r in 0..rows {
        let len = read_u32(bytes, &mut cursor)? as usize;
        let need = len * 8;
        if bytes.len() - cursor < need {
            return Err(format!(
                "row {r} claims {len} values but only {} bytes remain",
                bytes.len() - cursor
            ));
        }
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[cursor..cursor + 8]);
            row.push(f64::from_bits(u64::from_le_bytes(word)));
            cursor += 8;
        }
        out.push(row);
    }
    if cursor != bytes.len() {
        return Err(format!("{} trailing bytes after the last row", bytes.len() - cursor));
    }
    Ok(out)
}

fn read_u32(bytes: &[u8], cursor: &mut usize) -> Result<u32, String> {
    if bytes.len() - *cursor < 4 {
        return Err("truncated length prefix".into());
    }
    let mut word = [0u8; 4];
    word.copy_from_slice(&bytes[*cursor..*cursor + 4]);
    *cursor += 4;
    Ok(u32::from_le_bytes(word))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_including_awkward_floats() {
        let batches: Vec<Vec<Vec<f64>>> = vec![
            vec![],
            vec![vec![]],
            vec![vec![1.5, -0.0], vec![0.1 + 0.2], vec![1e-300, -123456.789012345]],
        ];
        for batch in batches {
            let bytes = encode_batch(&batch);
            let back = decode_batch(&bytes).unwrap();
            assert_eq!(back.len(), batch.len());
            for (a, b) in back.iter().zip(batch.iter()) {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "bit-exact round trip");
                }
            }
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let bytes = encode_batch(&[vec![1.0, 2.0], vec![3.0]]);
        for cut in 0..bytes.len() {
            assert!(decode_batch(&bytes[..cut]).is_err(), "cut at {cut} mis-parsed");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_batch(&padded).is_err());
    }

    #[test]
    fn absurd_row_count_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_batch(&bytes).is_err());
    }
}
