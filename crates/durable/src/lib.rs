//! # dar-durable — crash safety for the DAR mining engine
//!
//! The engine's state is a pure function of its ingest history (Theorem
//! 6.1 of Miller & Yang: Phase II is derived entirely from the ACF
//! summaries, which are themselves a fold over the tuples). That makes
//! durability a matter of persisting two artifacts:
//!
//! * a **write-ahead log** of ingest batches ([`wal`], [`batch`]) —
//!   length-prefixed, CRC32-checksummed records, fsynced before a batch
//!   is acknowledged, recovered with tolerant torn-tail semantics;
//! * **atomic snapshots** of the engine's text serialization
//!   ([`snapshot`]) — written to a tmp file, fsynced, renamed over the
//!   target, directory-fsynced, with a trailing checksum footer and a
//!   `.prev` fallback slot.
//!
//! [`DurableStore`] ties the two together with sequence numbers:
//! snapshots record the last WAL sequence they include, and recovery
//! replays only newer records, so every crash point — mid-append,
//! mid-install, between install and WAL truncation — recovers exactly
//! the acknowledged state.
//!
//! All file access goes through the [`Storage`] trait; [`FaultyStorage`]
//! implements it with injectable partial writes, torn renames, and
//! failing syncs, which is how the crash tests exercise each protocol
//! step deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod crc;
pub mod error;
mod metrics;
pub mod snapshot;
pub mod storage;
pub mod store;
pub mod wal;

pub use batch::{decode_batch, decode_frame, encode_batch, encode_tagged_batch};
pub use crc::crc32;
pub use error::DurableError;
pub use snapshot::{
    seal, seal_bytes, unseal, unseal_bytes, unseal_strict, unseal_strict_bytes, LoadedSnapshot,
    SnapshotSource,
};
pub use storage::{DiskStorage, FaultPlan, FaultyStorage, Storage};
pub use store::{DurableStore, Recovered, RecoveryReport};
pub use wal::{WalRecord, WalReport};
