//! The durability-layer error type.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// What went wrong in the durability layer.
#[derive(Debug)]
pub enum DurableError {
    /// An I/O operation failed (the storage backend said no).
    Io {
        /// Which operation (`append`, `write`, `rename`, …).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A durable artifact failed validation (bad checksum, bad framing,
    /// bad footer) and must not be trusted.
    Corrupt {
        /// The path of the corrupt artifact.
        path: PathBuf,
        /// Human-readable diagnosis.
        detail: String,
    },
}

impl DurableError {
    pub(crate) fn io(op: &'static str, path: impl Into<PathBuf>, source: io::Error) -> Self {
        DurableError::Io { op, path: path.into(), source }
    }

    pub(crate) fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        DurableError::Corrupt { path: path.into(), detail: detail.into() }
    }

    /// Whether this error means "the artifact exists but cannot be
    /// trusted" (as opposed to an I/O failure reaching it).
    pub fn is_corruption(&self) -> bool {
        matches!(self, DurableError::Corrupt { .. })
    }
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io { op, path, source } => {
                write!(f, "{op} {}: {source}", path.display())
            }
            DurableError::Corrupt { path, detail } => {
                write!(f, "corrupt {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io { source, .. } => Some(source),
            DurableError::Corrupt { .. } => None,
        }
    }
}
