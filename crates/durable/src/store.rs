//! [`DurableStore`]: the one object engine hosts hold — a snapshot slot
//! chain plus a WAL, coordinated through sequence numbers.
//!
//! The invariants, spelled out once:
//!
//! * every logged batch gets a strictly increasing sequence number,
//!   committed (fsynced) before the batch is acknowledged;
//! * an installed snapshot records the last sequence it includes;
//! * recovery = newest verifiable snapshot + replay of WAL records with
//!   `seq > snapshot.seq`, so a crash *anywhere* — mid-append,
//!   mid-snapshot-write, between the install and the WAL truncation —
//!   yields exactly the acknowledged state, never a double-replayed or
//!   half-applied batch;
//! * WAL truncation after an install keeps every record newer than the
//!   *previous* snapshot, so falling back to `<path>.prev` still has all
//!   the records it needs.

use crate::batch::{decode_frame, encode_batch, encode_tagged_batch};
use crate::error::DurableError;
use crate::snapshot::{self, SnapshotSource};
use crate::storage::Storage;
use crate::wal;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What [`DurableStore::open`] reconstructed from disk.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The verified snapshot body to restore from, if any slot verified
    /// (text for the v1 formats, binary for persist v2 — restorers sniff).
    pub snapshot: Option<Vec<u8>>,
    /// The WAL sequence the snapshot includes (0 when none).
    pub snapshot_seq: u64,
    /// Committed batches newer than the snapshot, in log order — replay
    /// these into the restored engine. Window-tagged frames contribute
    /// their rows here too (empty advance markers are skipped), so an
    /// all-history engine recovering a windowed log loses nothing.
    pub batches: Vec<Vec<Vec<f64>>>,
    /// The same records with their window tags: `(window_seq, rows)` per
    /// frame, in log order, including empty advance markers. A windowed
    /// engine replays these to rebuild its ring exactly.
    pub frames: Vec<(Option<u64>, Vec<Vec<f64>>)>,
    /// Diagnostics for operators and tests.
    pub report: RecoveryReport,
}

/// How recovery went.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Which snapshot slot verified (None = fresh start).
    pub snapshot_source: Option<SnapshotSource>,
    /// Snapshot slots that existed but failed verification.
    pub corrupt_snapshots_skipped: u32,
    /// Committed WAL records found (including ones the snapshot already
    /// covers).
    pub wal_records: usize,
    /// Records replayed on top of the snapshot (`seq >` filter).
    pub wal_batches_replayed: usize,
    /// Bytes dropped from the WAL's torn tail.
    pub wal_tail_dropped_bytes: usize,
}

impl RecoveryReport {
    /// Whether recovery had to route around damage (torn tail bytes or a
    /// corrupt snapshot slot).
    pub fn degraded_artifacts(&self) -> bool {
        self.corrupt_snapshots_skipped > 0 || self.wal_tail_dropped_bytes > 0
    }
}

/// A snapshot slot chain plus a WAL over an injectable [`Storage`].
/// Either half is optional: snapshot-only gives atomic persisted epochs,
/// WAL-only gives batch-level crash safety; together they give both with
/// bounded replay.
#[derive(Debug)]
pub struct DurableStore {
    storage: Arc<dyn Storage>,
    snapshot_path: Option<PathBuf>,
    wal_path: Option<PathBuf>,
    /// The sequence the next logged batch receives (1-based).
    next_seq: u64,
    /// The sequence recorded in the currently-installed snapshot.
    installed_seq: u64,
}

impl DurableStore {
    /// Opens the store, scanning disk once: verifies the snapshot chain,
    /// replays the WAL's committed records, and positions the sequence
    /// counter after everything found. Returns the store and what it
    /// recovered.
    ///
    /// # Errors
    /// I/O failures, or a WAL whose *header* is damaged (a torn tail is
    /// tolerated and reported instead).
    pub fn open(
        storage: Arc<dyn Storage>,
        snapshot_path: Option<PathBuf>,
        wal_path: Option<PathBuf>,
    ) -> Result<(Self, Recovered), DurableError> {
        let mut report = RecoveryReport::default();
        let (snapshot, snapshot_seq) = match &snapshot_path {
            Some(path) => match snapshot::load_latest(storage.as_ref(), path)? {
                Some(loaded) => {
                    report.snapshot_source = Some(loaded.source);
                    report.corrupt_snapshots_skipped = loaded.corrupt_slots_skipped;
                    (Some(loaded.body), loaded.seq)
                }
                None => (None, 0),
            },
            None => (None, 0),
        };

        let mut batches = Vec::new();
        let mut frames = Vec::new();
        let mut last_seq = snapshot_seq;
        if let Some(path) = &wal_path {
            let (records, wal_report) = wal::read_records(storage.as_ref(), path)?;
            report.wal_records = wal_report.records;
            report.wal_tail_dropped_bytes = wal_report.tail_dropped_bytes;
            if wal_report.tail_dropped_bytes > 0 {
                // Self-heal: cut the torn tail off now, or the next append
                // would land after unreachable garbage. Not best-effort —
                // appending to a log we could not repair is unsafe.
                wal::rewrite(storage.as_ref(), path, &records)?;
            }
            for record in records {
                last_seq = last_seq.max(record.seq);
                if record.seq <= snapshot_seq {
                    continue; // already inside the snapshot
                }
                match decode_frame(&record.body) {
                    Ok((tag, rows)) => {
                        if !rows.is_empty() {
                            batches.push(rows.clone());
                        }
                        frames.push((tag, rows));
                    }
                    // CRC passed but the payload doesn't decode: an
                    // encoder/decoder version skew, not a torn tail.
                    Err(detail) => {
                        return Err(DurableError::corrupt(
                            path,
                            format!("record seq={}: {detail}", record.seq),
                        ));
                    }
                }
            }
        }
        report.wal_batches_replayed = batches.len();

        let store = DurableStore {
            storage,
            snapshot_path,
            wal_path,
            next_seq: last_seq + 1,
            installed_seq: snapshot_seq,
        };
        Ok((store, Recovered { snapshot, snapshot_seq, batches, frames, report }))
    }

    /// The WAL path, if batch logging is configured.
    pub fn wal_path(&self) -> Option<&Path> {
        self.wal_path.as_deref()
    }

    /// The snapshot path, if snapshot installation is configured.
    pub fn snapshot_path(&self) -> Option<&Path> {
        self.snapshot_path.as_deref()
    }

    /// Whether [`DurableStore::log_batch`] is available.
    pub fn wal_enabled(&self) -> bool {
        self.wal_path.is_some()
    }

    /// The sequence number the last logged batch received (0 if none).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Commits one ingest batch to the WAL (encode, frame, append,
    /// fsync). When this returns `Ok`, the batch survives any crash.
    ///
    /// # Errors
    /// I/O failures (the caller should treat the batch as *not*
    /// committed and refuse to acknowledge it), or no WAL configured.
    pub fn log_batch(&mut self, rows: &[Vec<f64>]) -> Result<u64, DurableError> {
        let Some(path) = &self.wal_path else {
            return Err(DurableError::io(
                "append",
                PathBuf::new(),
                std::io::Error::other("no WAL configured"),
            ));
        };
        let seq = self.next_seq;
        wal::append_record(self.storage.as_ref(), path, seq, &encode_batch(rows))?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Commits one window-tagged ingest batch to the WAL — the sliding-
    /// window variant of [`DurableStore::log_batch`]. `window_seq` is the
    /// window the rows landed in; an empty `rows` is an explicit-advance
    /// marker (logged with the newly opened window's sequence). Recovery
    /// surfaces these as [`Recovered::frames`].
    ///
    /// # Errors
    /// As [`DurableStore::log_batch`].
    pub fn log_tagged_batch(
        &mut self,
        window_seq: u64,
        rows: &[Vec<f64>],
    ) -> Result<u64, DurableError> {
        let Some(path) = &self.wal_path else {
            return Err(DurableError::io(
                "append",
                PathBuf::new(),
                std::io::Error::other("no WAL configured"),
            ));
        };
        let seq = self.next_seq;
        wal::append_record(
            self.storage.as_ref(),
            path,
            seq,
            &encode_tagged_batch(window_seq, rows),
        )?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Seals `body` with the last logged sequence and installs it
    /// atomically, then prunes WAL records the *previous* snapshot
    /// already covered (keeping everything the fallback chain could still
    /// need). Truncation is best-effort: replay is seq-filtered, so a
    /// crash — or a failure — between install and truncation costs bytes,
    /// never correctness.
    ///
    /// # Errors
    /// I/O failures during the install protocol; the previously-installed
    /// snapshot (plus the WAL) remains recoverable.
    pub fn install_snapshot(&mut self, body: &[u8]) -> Result<u64, DurableError> {
        let Some(path) = self.snapshot_path.clone() else {
            return Err(DurableError::io(
                "write",
                PathBuf::new(),
                std::io::Error::other("no snapshot path configured"),
            ));
        };
        let seq = self.next_seq - 1;
        snapshot::install(self.storage.as_ref(), &path, body, seq)?;
        let retired = self.installed_seq;
        self.installed_seq = seq;
        if let Some(wal_path) = self.wal_path.clone() {
            let _ = self.prune_wal(&wal_path, retired);
        }
        Ok(seq)
    }

    fn prune_wal(&mut self, path: &Path, keep_after: u64) -> Result<(), DurableError> {
        let (records, _) = wal::read_records(self.storage.as_ref(), path)?;
        let kept: Vec<_> = records.into_iter().filter(|r| r.seq > keep_after).collect();
        wal::rewrite(self.storage.as_ref(), path, &kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{scratch_dir, DiskStorage};

    fn batch(tag: f64, rows: usize) -> Vec<Vec<f64>> {
        (0..rows).map(|i| vec![tag, i as f64]).collect()
    }

    fn open_disk(dir: &Path) -> (DurableStore, Recovered) {
        DurableStore::open(
            Arc::new(DiskStorage),
            Some(dir.join("epoch.snap")),
            Some(dir.join("ingest.wal")),
        )
        .unwrap()
    }

    #[test]
    fn log_recover_log_again_round_trips() {
        let dir = scratch_dir("store_rt");
        let (mut store, recovered) = open_disk(&dir);
        assert!(recovered.snapshot.is_none());
        assert!(recovered.batches.is_empty());
        assert_eq!(store.log_batch(&batch(1.0, 3)).unwrap(), 1);
        assert_eq!(store.log_batch(&batch(2.0, 2)).unwrap(), 2);
        drop(store); // "crash"

        let (mut store, recovered) = open_disk(&dir);
        assert_eq!(recovered.batches, vec![batch(1.0, 3), batch(2.0, 2)]);
        assert_eq!(recovered.report.wal_batches_replayed, 2);
        // Sequences continue where they left off.
        assert_eq!(store.log_batch(&batch(3.0, 1)).unwrap(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_bounds_replay_and_prunes_the_wal() {
        let dir = scratch_dir("store_snap");
        let (mut store, _) = open_disk(&dir);
        store.log_batch(&batch(1.0, 2)).unwrap();
        store.log_batch(&batch(2.0, 2)).unwrap();
        assert_eq!(store.install_snapshot(b"state after two batches\n").unwrap(), 2);
        store.log_batch(&batch(3.0, 2)).unwrap();
        drop(store);

        let (_, recovered) = open_disk(&dir);
        assert_eq!(recovered.snapshot.as_deref(), Some(b"state after two batches\n".as_slice()));
        assert_eq!(recovered.snapshot_seq, 2);
        assert_eq!(recovered.batches, vec![batch(3.0, 2)], "only seq>2 replays");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_install_retains_records_the_prev_snapshot_needs() {
        let dir = scratch_dir("store_prev");
        let (mut store, _) = open_disk(&dir);
        store.log_batch(&batch(1.0, 1)).unwrap();
        store.install_snapshot(b"snap A\n").unwrap(); // seq 1
        store.log_batch(&batch(2.0, 1)).unwrap();
        store.log_batch(&batch(3.0, 1)).unwrap();
        store.install_snapshot(b"snap B\n").unwrap(); // seq 3; prunes ≤1
        store.log_batch(&batch(4.0, 1)).unwrap();
        drop(store);

        // Corrupt the primary: recovery must fall back to snap A and
        // still find batches 2..4 in the WAL.
        let path = dir.join("epoch.snap");
        let sealed = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, sealed.replacen("snap B", "snap X", 1)).unwrap();
        let (_, recovered) = open_disk(&dir);
        assert_eq!(recovered.snapshot.as_deref(), Some(b"snap A\n".as_slice()));
        assert_eq!(recovered.snapshot_seq, 1);
        assert_eq!(recovered.batches, vec![batch(2.0, 1), batch(3.0, 1), batch(4.0, 1)]);
        assert_eq!(recovered.report.corrupt_snapshots_skipped, 1);
        assert!(recovered.report.degraded_artifacts());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tagged_and_plain_records_recover_with_their_tags() {
        let dir = scratch_dir("store_tagged");
        let (mut store, _) = open_disk(&dir);
        store.log_batch(&batch(1.0, 2)).unwrap();
        store.log_tagged_batch(7, &batch(2.0, 3)).unwrap();
        store.log_tagged_batch(8, &[]).unwrap(); // explicit-advance marker
        drop(store);

        let (_, recovered) = open_disk(&dir);
        assert_eq!(
            recovered.frames,
            vec![(None, batch(1.0, 2)), (Some(7), batch(2.0, 3)), (Some(8), Vec::new()),]
        );
        // The rows-only view skips the empty marker but keeps the data.
        assert_eq!(recovered.batches, vec![batch(1.0, 2), batch(2.0, 3)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_only_and_snapshot_only_configurations_work() {
        let dir = scratch_dir("store_halves");
        // WAL only.
        let (mut store, _) =
            DurableStore::open(Arc::new(DiskStorage), None, Some(dir.join("only.wal"))).unwrap();
        store.log_batch(&batch(1.0, 1)).unwrap();
        assert!(store.install_snapshot(b"nope").is_err());
        // Snapshot only.
        let (mut store, _) =
            DurableStore::open(Arc::new(DiskStorage), Some(dir.join("only.snap")), None).unwrap();
        assert!(store.log_batch(&batch(1.0, 1)).is_err());
        store.install_snapshot(b"fine\n").unwrap();
        let (_, recovered) =
            DurableStore::open(Arc::new(DiskStorage), Some(dir.join("only.snap")), None).unwrap();
        assert_eq!(recovered.snapshot.as_deref(), Some(b"fine\n".as_slice()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
