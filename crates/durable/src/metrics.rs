//! Global observability handles for the persistence layer
//! (`dar_durable_*`). Handles are cached in a `OnceLock`; the family
//! registers eagerly on first use so zero-valued series are visible in
//! exposition before the first append or seal.

use dar_obs::{global, Counter};
use std::sync::OnceLock;

/// The durability metric family.
pub(crate) struct DurableMetrics {
    /// `dar_durable_wal_appends_total`: records committed to the WAL.
    pub wal_appends: Counter,
    /// `dar_durable_wal_append_failures_total`: appends that failed.
    pub wal_append_failures: Counter,
    /// `dar_durable_wal_bytes_total`: framed bytes appended (header +
    /// sequence + payload).
    pub wal_bytes: Counter,
    /// `dar_durable_wal_fsyncs_total`: stable-storage syncs issued by the
    /// append path (one per committed record).
    pub wal_fsyncs: Counter,
    /// `dar_durable_snapshot_seals_total`: snapshots sealed and installed.
    pub snapshot_seals: Counter,
    /// `dar_durable_snapshot_failures_total`: snapshot installs that
    /// failed partway through the atomic protocol.
    pub snapshot_failures: Counter,
}

/// The cached handles.
pub(crate) fn metrics() -> &'static DurableMetrics {
    static METRICS: OnceLock<DurableMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        DurableMetrics {
            wal_appends: r.counter("dar_durable_wal_appends_total"),
            wal_append_failures: r.counter("dar_durable_wal_append_failures_total"),
            wal_bytes: r.counter("dar_durable_wal_bytes_total"),
            wal_fsyncs: r.counter("dar_durable_wal_fsyncs_total"),
            snapshot_seals: r.counter("dar_durable_snapshot_seals_total"),
            snapshot_failures: r.counter("dar_durable_snapshot_failures_total"),
        }
    })
}
