//! The write-ahead log: length-prefixed, CRC32-checksummed records,
//! appended with fsync-on-commit, recovered with tolerant truncated-tail
//! semantics.
//!
//! File layout:
//!
//! ```text
//! "DARWAL1\n"                                     (8-byte file header)
//! record := len:u32-LE  crc:u32-LE  payload       (len = payload bytes,
//!                                                  crc over payload)
//! payload := seq:u64-LE  body                     (body = batch codec)
//! ```
//!
//! Each record carries a monotonically increasing sequence number inside
//! the checksummed payload. Snapshots record the last sequence they
//! include, so replay is *seq-filtered*: a crash between "snapshot
//! installed" and "WAL truncated" merely replays zero extra records,
//! never a record twice.
//!
//! Recovery walks records from the front and stops at the first frame
//! that is truncated or fails its checksum — the torn tail a crash
//! mid-append leaves behind — reporting how many bytes it dropped.
//! Everything before the tear was fsynced before being acknowledged, so
//! the committed prefix is exactly what comes back.

use crate::crc::crc32;
use crate::error::DurableError;
use crate::storage::Storage;
use std::path::Path;

/// The 8-byte file magic.
pub const WAL_MAGIC: &[u8; 8] = b"DARWAL1\n";

/// One committed WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The record's sequence number (1-based, strictly increasing).
    pub seq: u64,
    /// The checksummed payload body (a batch, under the batch codec).
    pub body: Vec<u8>,
}

/// What recovery found in a WAL file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalReport {
    /// Committed records recovered.
    pub records: usize,
    /// Bytes dropped from a torn tail (0 for a clean log).
    pub tail_dropped_bytes: usize,
}

/// Frames one record: `len | crc | seq | body`.
fn frame(seq: u64, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + body.len());
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(body);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Creates the WAL file with its header if it does not exist yet.
pub fn ensure(storage: &dyn Storage, path: &Path) -> Result<(), DurableError> {
    if storage.exists(path) {
        return Ok(());
    }
    storage.write(path, WAL_MAGIC).map_err(|e| DurableError::io("write", path, e))?;
    storage.sync_file(path).map_err(|e| DurableError::io("sync_file", path, e))?;
    if let Some(dir) = path.parent() {
        storage.sync_dir(dir).map_err(|e| DurableError::io("sync_dir", dir, e))?;
    }
    Ok(())
}

/// Appends one record and syncs it to stable storage (the commit point:
/// when this returns `Ok`, the record survives any crash).
pub fn append_record(
    storage: &dyn Storage,
    path: &Path,
    seq: u64,
    body: &[u8],
) -> Result<(), DurableError> {
    ensure(storage, path)?;
    let framed = frame(seq, body);
    let m = crate::metrics::metrics();
    match storage.append(path, &framed) {
        Ok(()) => {
            m.wal_appends.inc();
            m.wal_bytes.add(framed.len() as u64);
            m.wal_fsyncs.inc();
            Ok(())
        }
        Err(e) => {
            m.wal_append_failures.inc();
            Err(DurableError::io("append", path, e))
        }
    }
}

/// Reads every committed record, tolerating a torn tail. A missing file
/// is an empty log; a file whose header is wrong is corrupt (it is not a
/// WAL at all, and silently treating it as empty would invent data loss).
pub fn read_records(
    storage: &dyn Storage,
    path: &Path,
) -> Result<(Vec<WalRecord>, WalReport), DurableError> {
    if !storage.exists(path) {
        return Ok((Vec::new(), WalReport::default()));
    }
    let bytes = storage.read(path).map_err(|e| DurableError::io("read", path, e))?;
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(DurableError::corrupt(path, "missing or damaged WAL file header"));
    }
    let mut records = Vec::new();
    let mut cursor = WAL_MAGIC.len();
    let mut last_seq = 0u64;
    while cursor < bytes.len() {
        let Some(record) = parse_frame(&bytes[cursor..]) else {
            break; // torn tail: truncated frame or checksum mismatch
        };
        // A sequence that jumps backwards means the frame boundary landed
        // on garbage that happened to checksum — impossible for CRC32 over
        // a torn tail, but cheap to refuse outright.
        if record.seq <= last_seq {
            break;
        }
        last_seq = record.seq;
        cursor += 8 + record.body.len() + 8;
        records.push(record);
    }
    let report = WalReport { records: records.len(), tail_dropped_bytes: bytes.len() - cursor };
    Ok((records, report))
}

/// Parses one frame from the front of `bytes`; `None` means truncated or
/// checksum-mismatched (the caller treats either as the torn tail).
fn parse_frame(bytes: &[u8]) -> Option<WalRecord> {
    if bytes.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if len < 8 || bytes.len() < 8 + len {
        return None;
    }
    let payload = &bytes[8..8 + len];
    if crc32(payload) != crc {
        return None;
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().ok()?);
    Some(WalRecord { seq, body: payload[8..].to_vec() })
}

/// Atomically rewrites the log to hold exactly `records` — used to drop
/// records already covered by an installed snapshot. Goes through a tmp
/// file and a rename, so a crash mid-rewrite leaves the old (complete)
/// log in place; replay stays correct either way because it is
/// seq-filtered.
pub fn rewrite(
    storage: &dyn Storage,
    path: &Path,
    records: &[WalRecord],
) -> Result<(), DurableError> {
    let mut bytes = WAL_MAGIC.to_vec();
    for record in records {
        bytes.extend_from_slice(&frame(record.seq, &record.body));
    }
    let tmp = tmp_path(path);
    storage.write(&tmp, &bytes).map_err(|e| DurableError::io("write", &tmp, e))?;
    storage.sync_file(&tmp).map_err(|e| DurableError::io("sync_file", &tmp, e))?;
    storage.rename(&tmp, path).map_err(|e| DurableError::io("rename", &tmp, e))?;
    if let Some(dir) = path.parent() {
        storage.sync_dir(dir).map_err(|e| DurableError::io("sync_dir", dir, e))?;
    }
    Ok(())
}

pub(crate) fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{scratch_dir, DiskStorage};

    #[test]
    fn append_and_read_round_trip() {
        let dir = scratch_dir("wal_rt");
        let path = dir.join("log.wal");
        let s = DiskStorage;
        append_record(&s, &path, 1, b"alpha").unwrap();
        append_record(&s, &path, 2, b"").unwrap();
        append_record(&s, &path, 3, b"gamma").unwrap();
        let (records, report) = read_records(&s, &path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], WalRecord { seq: 1, body: b"alpha".to_vec() });
        assert_eq!(records[1].body, b"");
        assert_eq!(records[2].seq, 3);
        assert_eq!(report, WalReport { records: 3, tail_dropped_bytes: 0 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_an_empty_log_but_bad_magic_is_corrupt() {
        let dir = scratch_dir("wal_magic");
        let path = dir.join("log.wal");
        let s = DiskStorage;
        let (records, _) = read_records(&s, &path).unwrap();
        assert!(records.is_empty());
        s.write(&path, b"NOTAWAL!").unwrap();
        let err = read_records(&s, &path).unwrap_err();
        assert!(err.is_corruption(), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_committed_prefix_survives() {
        let dir = scratch_dir("wal_tail");
        let path = dir.join("log.wal");
        let s = DiskStorage;
        append_record(&s, &path, 1, b"keep me").unwrap();
        append_record(&s, &path, 2, b"keep me too").unwrap();
        let full = s.read(&path).unwrap();
        // Simulate a crash at every byte of a third, torn append.
        let torn = frame(3, b"lost to the crash");
        for cut in 0..torn.len() {
            let mut bytes = full.clone();
            bytes.extend_from_slice(&torn[..cut]);
            s.write(&path, &bytes).unwrap();
            let (records, report) = read_records(&s, &path).unwrap();
            assert_eq!(records.len(), 2, "cut at {cut}");
            assert_eq!(report.tail_dropped_bytes, cut);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flips_anywhere_in_a_record_are_detected() {
        let dir = scratch_dir("wal_flip");
        let path = dir.join("log.wal");
        let s = DiskStorage;
        append_record(&s, &path, 1, b"only record").unwrap();
        let clean = s.read(&path).unwrap();
        for byte in WAL_MAGIC.len()..clean.len() {
            let mut bytes = clean.clone();
            bytes[byte] ^= 0x10;
            s.write(&path, &bytes).unwrap();
            let (records, _) = read_records(&s, &path).unwrap();
            assert!(records.is_empty(), "flip at byte {byte} mis-parsed");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rewrite_drops_records_atomically() {
        let dir = scratch_dir("wal_rw");
        let path = dir.join("log.wal");
        let s = DiskStorage;
        for seq in 1..=5u64 {
            append_record(&s, &path, seq, format!("r{seq}").as_bytes()).unwrap();
        }
        let (records, _) = read_records(&s, &path).unwrap();
        rewrite(&s, &path, &records[3..]).unwrap();
        let (kept, report) = read_records(&s, &path).unwrap();
        assert_eq!(kept.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(report.tail_dropped_bytes, 0);
        // Appends continue after a rewrite.
        append_record(&s, &path, 6, b"r6").unwrap();
        let (kept, _) = read_records(&s, &path).unwrap();
        assert_eq!(kept.last().unwrap().seq, 6);
        std::fs::remove_dir_all(&dir).ok();
    }
}
