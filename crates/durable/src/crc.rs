//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
//!
//! Every durable artifact in this crate — WAL records and snapshot
//! footers — is guarded by this checksum, so corruption (torn writes,
//! bit rot, truncation mid-record) is *detected* rather than mis-parsed.
//! CRC-32 detects all single- and double-bit errors and any burst error
//! up to 32 bits, which covers the failure modes a kill-at-any-instruction
//! crash can leave behind on a journaled filesystem.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the engine's whole value is the summaries".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
