//! The injectable storage backend: a narrow file-system trait the WAL and
//! snapshot machinery are written against, with a real [`DiskStorage`]
//! implementation and a [`FaultyStorage`] wrapper that injects partial
//! writes, torn renames, and failing syncs at chosen points — the
//! substrate of the deterministic crash tests.

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The file operations durability needs, and nothing more. Implementors
/// must make `append` *commit*: when it returns `Ok`, the bytes are on
/// stable storage (fsync-on-commit), which is what lets the WAL promise
/// that acknowledged batches survive a kill at any instruction after the
/// acknowledgement.
pub trait Storage: Send + Sync + std::fmt::Debug {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Whether a path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Creates or truncates `path` and writes `data` (no sync — pair with
    /// [`Storage::sync_file`] for the atomic-snapshot protocol's explicit
    /// crash points).
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Appends `data` to `path` (creating it if needed) and syncs it to
    /// stable storage before returning.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Syncs a file's contents to stable storage.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Syncs a directory, making completed renames durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Removes a file (missing files are fine).
    fn remove(&self, path: &Path) -> io::Result<()>;
}

/// The real thing: `std::fs` with fsync where the trait demands it.
#[derive(Debug, Default, Clone)]
pub struct DiskStorage;

impl Storage for DiskStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut file = File::create(path)?;
        file.write_all(data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(data)?;
        file.sync_data()
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        OpenOptions::new().read(true).open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is how a rename becomes durable on POSIX; on
        // platforms where opening a directory fails, the rename was still
        // atomic, so degrade quietly rather than failing the snapshot.
        match File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// Which injected faults are armed. Operation indices are 0-based and
/// count *attempts* of that operation since the plan was installed.
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// After this many appended bytes have succeeded in total, the next
    /// `append` writes only the bytes that fit under the budget — a torn
    /// record tail — and then fails.
    pub fail_append_after_bytes: Option<u64>,
    /// Fail every `append` whose index is ≥ this (no bytes written).
    pub fail_append_from: Option<u64>,
    /// Fail every `write` whose index is ≥ this, leaving the first half
    /// of the data behind — a torn snapshot body.
    pub fail_write_from: Option<u64>,
    /// Fail every `rename` whose index is ≥ this without renaming — the
    /// crash-before-rename half of a torn snapshot install.
    pub fail_rename_from: Option<u64>,
    /// Fail every `sync_file`/`sync_dir` whose index is ≥ this.
    pub fail_sync_from: Option<u64>,
}

#[derive(Debug, Default)]
struct FaultState {
    plan: FaultPlan,
    appended_bytes: u64,
    appends: u64,
    writes: u64,
    renames: u64,
    syncs: u64,
}

/// A [`Storage`] that fails on cue: wraps [`DiskStorage`] and consults a
/// runtime-replaceable [`FaultPlan`] before every mutating operation.
/// Reads are never failed — recovery always sees exactly what the "crash"
/// left on disk.
#[derive(Debug)]
pub struct FaultyStorage {
    inner: DiskStorage,
    state: Mutex<FaultState>,
}

impl FaultyStorage {
    /// A faulty storage with the given initial plan.
    pub fn new(plan: FaultPlan) -> Arc<Self> {
        Arc::new(FaultyStorage {
            inner: DiskStorage,
            state: Mutex::new(FaultState { plan, ..FaultState::default() }),
        })
    }

    /// Replaces the fault plan mid-run (operation counters reset, so
    /// indices in the new plan count from "now").
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut state = self.lock();
        *state = FaultState { plan, ..FaultState::default() };
    }

    /// Disarms all faults.
    pub fn heal(&self) {
        self.set_plan(FaultPlan::default());
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn injected(op: &str) -> io::Error {
        io::Error::other(format!("injected fault: {op}"))
    }
}

impl Storage for FaultyStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let torn = {
            let mut state = self.lock();
            let index = state.writes;
            state.writes += 1;
            state.plan.fail_write_from.is_some_and(|from| index >= from)
        };
        if torn {
            // Crash mid-body: the first half lands, the rest never does.
            self.inner.write(path, &data[..data.len() / 2])?;
            return Err(Self::injected("write"));
        }
        self.inner.write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let allowed = {
            let mut state = self.lock();
            let index = state.appends;
            state.appends += 1;
            if state.plan.fail_append_from.is_some_and(|from| index >= from) {
                Some(0)
            } else if let Some(budget) = state.plan.fail_append_after_bytes {
                let room = budget.saturating_sub(state.appended_bytes);
                if (data.len() as u64) > room {
                    state.appended_bytes += room;
                    Some(room as usize)
                } else {
                    state.appended_bytes += data.len() as u64;
                    None
                }
            } else {
                state.appended_bytes += data.len() as u64;
                None
            }
        };
        match allowed {
            None => self.inner.append(path, data),
            Some(partial) => {
                if partial > 0 {
                    self.inner.append(path, &data[..partial])?;
                }
                Err(Self::injected("append"))
            }
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        if self.tick_sync() {
            return Err(Self::injected("sync_file"));
        }
        self.inner.sync_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let fail = {
            let mut state = self.lock();
            let index = state.renames;
            state.renames += 1;
            state.plan.fail_rename_from.is_some_and(|f| index >= f)
        };
        if fail {
            return Err(Self::injected("rename"));
        }
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if self.tick_sync() {
            return Err(Self::injected("sync_dir"));
        }
        self.inner.sync_dir(dir)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }
}

impl FaultyStorage {
    fn tick_sync(&self) -> bool {
        let mut state = self.lock();
        let index = state.syncs;
        state.syncs += 1;
        state.plan.fail_sync_from.is_some_and(|from| index >= from)
    }
}

/// A fresh scratch directory under the system temp dir, unique per test.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dar_durable_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_storage_round_trips_and_appends() {
        let dir = scratch_dir("disk");
        let path = dir.join("file.bin");
        let s = DiskStorage;
        s.write(&path, b"hello").unwrap();
        s.append(&path, b" world").unwrap();
        assert_eq!(s.read(&path).unwrap(), b"hello world");
        assert!(s.exists(&path));
        let moved = dir.join("moved.bin");
        s.rename(&path, &moved).unwrap();
        assert!(!s.exists(&path));
        s.sync_dir(&dir).unwrap();
        s.remove(&moved).unwrap();
        s.remove(&moved).unwrap(); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_append_tears_at_the_byte_budget() {
        let dir = scratch_dir("tear");
        let path = dir.join("wal.bin");
        let s = FaultyStorage::new(FaultPlan {
            fail_append_after_bytes: Some(10),
            ..FaultPlan::default()
        });
        s.append(&path, b"12345678").unwrap(); // 8 ≤ 10
        let err = s.append(&path, b"abcdef").unwrap_err(); // 2 more fit, then torn
        assert!(err.to_string().contains("injected"));
        assert_eq!(s.read(&path).unwrap(), b"12345678ab");
        s.heal();
        s.append(&path, b"!").unwrap();
        assert_eq!(s.read(&path).unwrap(), b"12345678ab!");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_rename_and_write_fail_on_cue() {
        let dir = scratch_dir("cue");
        let a = dir.join("a");
        let b = dir.join("b");
        let s = FaultyStorage::new(FaultPlan {
            fail_rename_from: Some(1),
            fail_write_from: Some(1),
            ..FaultPlan::default()
        });
        s.write(&a, b"0123456789").unwrap(); // write #0 fine
        s.rename(&a, &b).unwrap(); // rename #0 fine
        assert!(s.rename(&b, &a).is_err()); // rename #1 injected, b untouched
        assert!(s.exists(&b));
        assert!(s.write(&a, b"0123456789").is_err()); // write #1 torn
        assert_eq!(s.read(&a).unwrap(), b"01234"); // half landed
        std::fs::remove_dir_all(&dir).ok();
    }
}
