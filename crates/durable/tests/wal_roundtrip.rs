//! Property tests for the WAL: arbitrary batches round-trip bit-exactly,
//! and arbitrary damage (truncation at any byte, a bit flip at any
//! position) is *detected* — recovery returns a clean prefix of what was
//! committed, or reports corruption, but never mis-parses.

use dar_durable::storage::{scratch_dir, DiskStorage, Storage};
use dar_durable::{decode_batch, encode_batch, wal};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

fn case_path(dir: &std::path::Path) -> PathBuf {
    dir.join(format!("case_{}.wal", CASE.fetch_add(1, Ordering::Relaxed)))
}

/// Writes each batch as one WAL record and returns the raw file bytes.
fn write_wal(path: &std::path::Path, batches: &[Vec<Vec<f64>>]) -> Vec<u8> {
    let s = DiskStorage;
    for (i, rows) in batches.iter().enumerate() {
        wal::append_record(&s, path, (i + 1) as u64, &encode_batch(rows)).unwrap();
    }
    wal::ensure(&s, path).unwrap(); // zero-batch case still gets a header
    s.read(path).unwrap()
}

#[test]
fn arbitrary_batches_round_trip_bit_exactly() {
    let dir = scratch_dir("prop_rt");
    proptest!(|(batches in prop::collection::vec(
        prop::collection::vec(
            prop::collection::vec(-1.0e9f64..1.0e9, 0..6),
            0..5),
        0..4))| {
        let path = case_path(&dir);
        write_wal(&path, &batches);
        let (records, report) = wal::read_records(&DiskStorage, &path).unwrap();
        prop_assert_eq!(records.len(), batches.len());
        prop_assert_eq!(report.tail_dropped_bytes, 0);
        for (record, rows) in records.iter().zip(batches.iter()) {
            let decoded = decode_batch(&record.body).unwrap();
            prop_assert_eq!(decoded.len(), rows.len());
            for (a, b) in decoded.iter().zip(rows.iter()) {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_at_any_byte_yields_a_committed_prefix() {
    let dir = scratch_dir("prop_trunc");
    proptest!(|(rows in prop::collection::vec(
                    prop::collection::vec(-50.0f64..50.0, 1..4), 1..4),
                extra in 0u64..1000,
                cut_frac in 0.0f64..1.0)| {
        let path = case_path(&dir);
        let batches = vec![rows.clone(), vec![vec![extra as f64]]];
        let full = write_wal(&path, &batches);
        let cut = wal::WAL_MAGIC.len()
            + ((full.len() - wal::WAL_MAGIC.len()) as f64 * cut_frac) as usize;
        let s = DiskStorage;
        s.write(&path, &full[..cut]).unwrap();
        let (records, report) = wal::read_records(&s, &path).unwrap();
        // Whatever survives is an exact prefix of what was written.
        prop_assert!(records.len() <= batches.len());
        for (record, rows) in records.iter().zip(batches.iter()) {
            prop_assert_eq!(&decode_batch(&record.body).unwrap(), rows);
        }
        // And the accounting adds up: recovered frames + dropped tail
        // cover the whole truncated file.
        let consumed: usize =
            records.iter().map(|r| 16 + r.body.len()).sum::<usize>() + wal::WAL_MAGIC.len();
        prop_assert_eq!(consumed + report.tail_dropped_bytes, cut);
    });
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flips_are_detected_never_mis_parsed() {
    let dir = scratch_dir("prop_flip");
    proptest!(|(rows in prop::collection::vec(
                    prop::collection::vec(-50.0f64..50.0, 1..4), 1..4),
                byte_frac in 0.0f64..1.0,
                bit in 0u8..8)| {
        let path = case_path(&dir);
        let batches = vec![rows.clone(), vec![vec![1.0]], vec![vec![2.0, 3.0]]];
        let full = write_wal(&path, &batches);
        let byte = (full.len() as f64 * byte_frac) as usize % full.len();
        let mut damaged = full.clone();
        damaged[byte] ^= 1 << bit;
        let s = DiskStorage;
        s.write(&path, &damaged).unwrap();
        match wal::read_records(&s, &path) {
            // A flip inside the file header is refused outright.
            Err(e) => prop_assert!(e.is_corruption(), "unexpected error kind: {}", e),
            // A flip inside a record stops recovery at that record; every
            // record before it parses back exactly.
            Ok((records, _)) => {
                prop_assert!(records.len() < batches.len(),
                    "flip at byte {} bit {} went undetected", byte, bit);
                for (record, rows) in records.iter().zip(batches.iter()) {
                    prop_assert_eq!(&decode_batch(&record.body).unwrap(), rows);
                }
            }
        }
    });
    std::fs::remove_dir_all(&dir).ok();
}
