//! The crash matrix: inject a fault at every reachable point of the WAL
//! append path and the snapshot install protocol, "crash" (drop the
//! store), recover, and assert the recovered state is exactly the
//! acknowledged prefix — nothing lost, nothing double-applied.
//!
//! The model under test is deliberately tiny: the durable state is the
//! list of acknowledged batches, and a snapshot body is `acked=<n>`
//! (the engine analogue: a snapshot is a fold over all ingested batches).

use dar_durable::storage::scratch_dir;
use dar_durable::{DurableStore, FaultPlan, FaultyStorage, SnapshotSource, Storage as _};
use std::path::Path;
use std::sync::Arc;

fn batch(tag: u64) -> Vec<Vec<f64>> {
    vec![vec![tag as f64, 0.5], vec![-(tag as f64)]]
}

fn open(storage: Arc<FaultyStorage>, dir: &Path) -> (DurableStore, dar_durable::Recovered) {
    DurableStore::open(storage, Some(dir.join("epoch.snap")), Some(dir.join("ingest.wal"))).unwrap()
}

/// Parses `acked=<n>` back out of a recovered snapshot body.
fn snapshot_count(body: &[u8]) -> u64 {
    std::str::from_utf8(body)
        .expect("test snapshot bodies are text")
        .trim()
        .strip_prefix("acked=")
        .expect("snapshot body shape")
        .parse()
        .unwrap()
}

/// Asserts that recovery reconstructed exactly `acked` batches: the
/// snapshot's fold plus the replayed WAL suffix, with replayed batches
/// matching what was acknowledged after the snapshot point.
fn assert_recovers_exactly(recovered: &dar_durable::Recovered, acked: u64) {
    let base = match &recovered.snapshot {
        Some(body) => {
            let n = snapshot_count(body);
            assert_eq!(n, recovered.snapshot_seq, "snapshot body vs footer seq");
            n
        }
        None => 0,
    };
    assert_eq!(
        base + recovered.batches.len() as u64,
        acked,
        "snapshot covers {base}, WAL replays {}, but {acked} were acknowledged",
        recovered.batches.len()
    );
    for (offset, rows) in recovered.batches.iter().enumerate() {
        assert_eq!(rows, &batch(base + 1 + offset as u64), "replayed batch content");
    }
}

/// Crash mid-append at every byte offset: the torn tail is dropped and
/// exactly the acknowledged batches come back.
#[test]
fn torn_append_at_every_byte_recovers_the_acked_prefix() {
    // One batch's frame is fixed-size here; cover several records' worth
    // of budgets so tears land in every field of every frame.
    let probe = scratch_dir("faults_probe");
    let storage = FaultyStorage::new(FaultPlan::default());
    let (mut store, _) = open(storage.clone(), &probe);
    store.log_batch(&batch(1)).unwrap();
    let frame_len = storage.read(&probe.join("ingest.wal")).unwrap().len() - 8;
    drop(store);
    std::fs::remove_dir_all(&probe).ok();

    for budget in 0..(3 * frame_len as u64) {
        let dir = scratch_dir(&format!("faults_tear_{budget}"));
        let storage = FaultyStorage::new(FaultPlan {
            fail_append_after_bytes: Some(budget),
            ..FaultPlan::default()
        });
        let (mut store, _) = open(storage.clone(), &dir);
        let mut acked = 0u64;
        for tag in 1..=4u64 {
            match store.log_batch(&batch(tag)) {
                Ok(_) => acked += 1,
                Err(_) => break, // unacked: the client saw the failure
            }
        }
        assert_eq!(acked, budget / frame_len as u64, "acks stop at the torn frame");
        drop(store); // crash

        storage.heal();
        let (mut store, recovered) = open(storage.clone(), &dir);
        assert_recovers_exactly(&recovered, acked);
        assert_eq!(recovered.report.wal_tail_dropped_bytes as u64, budget % frame_len as u64);
        // Life goes on: the next batch gets the next sequence and survives.
        store.log_batch(&batch(acked + 1)).unwrap();
        let (_, recovered) = open(storage, &dir);
        assert_recovers_exactly(&recovered, acked + 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Crash at every step of the snapshot install protocol; the fallback
/// chain plus seq-filtered replay always reconstructs the acked state.
#[test]
fn snapshot_install_crash_points_all_recover() {
    // Step indices within install(): write tmp (write #0), sync tmp
    // (sync #0), rename path→prev (only when path exists), rename
    // tmp→path, sync dir. Each plan kills one step.
    let plans: &[(&str, FaultPlan)] = &[
        ("torn tmp write", FaultPlan { fail_write_from: Some(0), ..FaultPlan::default() }),
        ("tmp fsync", FaultPlan { fail_sync_from: Some(0), ..FaultPlan::default() }),
        ("first rename", FaultPlan { fail_rename_from: Some(0), ..FaultPlan::default() }),
        ("second rename", FaultPlan { fail_rename_from: Some(1), ..FaultPlan::default() }),
        ("dir fsync", FaultPlan { fail_sync_from: Some(1), ..FaultPlan::default() }),
    ];
    for (label, plan) in plans {
        let dir = scratch_dir(&format!("faults_snap_{}", label.replace(' ', "_")));
        let storage = FaultyStorage::new(FaultPlan::default());
        let (mut store, _) = open(storage.clone(), &dir);
        // An older installed snapshot so the rotation path (rename #0 =
        // path→prev, rename #1 = tmp→path) is exercised.
        store.log_batch(&batch(1)).unwrap();
        store.install_snapshot(b"acked=1\n").unwrap();
        store.log_batch(&batch(2)).unwrap();
        store.log_batch(&batch(3)).unwrap();

        storage.set_plan(plan.clone());
        let result = store.install_snapshot(b"acked=3\n");
        drop(store); // crash wherever the fault left us

        storage.heal();
        let (_, recovered) = open(storage, &dir);
        // Acked batches: 3, regardless of whether the install made it.
        assert_recovers_exactly(&recovered, 3);
        if result.is_err() {
            // The new snapshot may or may not have landed, but recovery
            // must have found *some* verifiable snapshot: the old one is
            // never destroyed before the new one is in place.
            assert!(recovered.snapshot.is_some(), "{label}: lost every snapshot");
        } else {
            assert_eq!(recovered.snapshot_seq, 3, "{label}: install acked but not durable");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Crash after a fully-synced tmp but before its rename: recovery trusts
/// the tmp slot (it is newer than the primary and verifies).
#[test]
fn fresh_install_crash_before_rename_recovers_from_tmp() {
    let dir = scratch_dir("faults_tmp_slot");
    let storage = FaultyStorage::new(FaultPlan::default());
    let (mut store, _) = open(storage.clone(), &dir);
    store.log_batch(&batch(1)).unwrap();
    storage.set_plan(FaultPlan { fail_rename_from: Some(0), ..FaultPlan::default() });
    assert!(store.install_snapshot(b"acked=1\n").is_err());
    drop(store);

    storage.heal();
    let (_, recovered) = open(storage, &dir);
    assert_recovers_exactly(&recovered, 1);
    assert_eq!(recovered.report.snapshot_source, Some(SnapshotSource::Tmp));
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash between "snapshot installed" and "WAL truncated": the stale WAL
/// records are filtered by sequence, never double-replayed.
#[test]
fn crash_between_install_and_truncate_never_double_replays() {
    let dir = scratch_dir("faults_no_truncate");
    let storage = FaultyStorage::new(FaultPlan::default());
    let (mut store, _) = open(storage.clone(), &dir);
    store.log_batch(&batch(1)).unwrap();
    store.log_batch(&batch(2)).unwrap();
    // Install's only rename on a fresh chain is #0 (tmp→path); the prune
    // rewrite's rename is #1. Failing from #1 means the snapshot lands
    // but the WAL keeps records 1 and 2.
    storage.set_plan(FaultPlan { fail_rename_from: Some(1), ..FaultPlan::default() });
    store.install_snapshot(b"acked=2\n").unwrap();
    store.log_batch(&batch(3)).unwrap();
    drop(store);

    storage.heal();
    let (_, recovered) = open(storage.clone(), &dir);
    // The full WAL survived (prune failed), but only seq 3 replays.
    assert_eq!(recovered.report.wal_records, 3);
    assert_eq!(recovered.batches.len(), 1);
    assert_recovers_exactly(&recovered, 3);
    std::fs::remove_dir_all(&dir).ok();
}
