//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! the real `rand` cannot be fetched. This workspace-local shim implements
//! the (small) subset of the rand 0.9 API the repository actually uses:
//!
//! * [`rngs::StdRng`] — here a **xoshiro256\*\*** generator seeded through
//!   SplitMix64 (not the real `StdRng`'s ChaCha12; streams differ, but every
//!   consumer in this workspace treats the generator as an opaque seeded
//!   source of uniform bits);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::random`] for `f64`/`f32`/`u32`/`u64`/`bool`;
//! * [`Rng::random_range`] over half-open integer and float ranges.
//!
//! Determinism is preserved: the same seed always yields the same stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// A seeded xoshiro256\*\* pseudo-random generator (the shim's stand-in for
/// rand's `StdRng`).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

impl StdRng {
    /// The next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the full 256-bit state, the
        // initialization recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        StdRng { state }
    }
}

/// Types that can be drawn uniformly from a generator ([`Rng::random`]).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn draw(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo reduction: the bias is negligible for the spans
                // used in this workspace (far below 2^64).
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::draw(rng)
    }
}

/// Uniform sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Draws one uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T;
    /// Draws one value uniformly from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;
}

impl Rng for StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = rng.random_range(0usize..10);
            seen[i] = true;
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let s = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }
}
