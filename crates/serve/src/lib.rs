//! # dar-serve
//!
//! A **concurrent network serving layer** over the long-lived
//! [`dar_engine::DarEngine`] — the step from "an engine one thread can
//! drive in-process" to "a server many clients mine against at once".
//!
//! The concurrency story is the paper's: Theorem 6.1 makes every query a
//! pure function of the ACF summaries (and the Phase II artifacts derived
//! from them), so once an epoch is closed, any number of clients can be
//! answered from one epoch's cached cliques *in parallel* while ingest
//! proceeds on the single writer path. Concretely:
//!
//! * [`SharedEngine`] — the epoch-aware `RwLock` wrapper: re-tuned
//!   [`mining::RuleQuery`]s are answered under the *read* lock via
//!   [`dar_engine::DarEngine::query_cached`]; ingest/snapshot (and cold
//!   graph builds) take the write lock.
//! * [`json`] — the hand-rolled wire codec (encoder + recursive-descent
//!   parser) for the newline-delimited JSON protocol; deterministic
//!   encoding makes equal rule sets byte-identical on the wire.
//! * [`protocol`] — the verb vocabulary: `ingest`, `query`, `clusters`,
//!   `stats`, `metrics`, `snapshot`, `shutdown`, with structured errors.
//! * [`Server`] / [`ServerHandle`] — a std-only threaded TCP server:
//!   fixed worker pool, bounded accept queue with refuse-not-queue
//!   backpressure, per-connection timeouts, periodic snapshot-to-disk,
//!   and graceful shutdown that drains, closes the epoch, and persists a
//!   final snapshot.
//! * [`ServerStats`] — connections, per-verb request counters, rejects,
//!   histogram-derived p50/p99 latency; served over the wire by the
//!   `stats` verb. The `metrics` verb returns the full `dar-obs`
//!   registry (every crate's metrics plus the event journal) as JSON,
//!   and [`ServeConfig::metrics_addr`] adds a plain-TCP Prometheus
//!   text-exposition listener for scrapers.
//! * [`Client`] — a small blocking client for scripting and load
//!   generation, with bounded-backoff retry helpers for `overloaded`/
//!   `degraded` responses.
//! * [`recover_engine`] / [`recover_backend`] / [`Durability`] — the
//!   `dar-durable` wiring: boot-time recovery (snapshot restore + WAL
//!   replay, window-tag-aware for sliding-window servers), apply-then-log
//!   ingest acknowledged only after the WAL append, atomic snapshot
//!   installs, and sticky degraded (read-only) mode when the log fails.
//! * **Streaming**: a server started over a
//!   [`dar_stream::WindowedEngine`] additionally serves `advance`
//!   (explicit window seal, logged as a tagged WAL marker) and
//!   `subscribe` — a long-lived connection receiving newline-JSON
//!   rule-churn events (`{added, dropped, epoch, window_span}`) diffed
//!   after every window advance by the [`churn`]-feed machinery, with a
//!   bounded per-subscriber queue that cuts the laggard, never the
//!   server.
//!
//! The CLI front-end is `dar serve --addr … --threads … --snapshot-path …`;
//! the load generator lives in `dar-bench` (`--bin server`). See
//! `DESIGN.md`, "Serving layer".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod b64;
pub mod churn;
pub mod client;
mod durability;
pub mod json;
mod metrics;
pub mod protocol;
mod server;
mod shared;
mod stats;

pub use client::{Backoff, Client, ServerError, Subscription};
pub use durability::{recover_backend, recover_engine, Durability};
pub use json::{Json, JsonError};
pub use protocol::Request;
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
pub use shared::SharedEngine;
pub use stats::{ServerStats, StatsSnapshot};

// Re-exported so server embedders don't need a direct dar-stream dep to
// name the types in [`Server::start`] / [`recover_backend`] signatures.
pub use dar_stream::{
    AdvanceOutcome, EngineBackend, RetirePolicy, WindowSpec, WindowedEngine, WindowedIngest,
};
