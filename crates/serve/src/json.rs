//! A small hand-rolled JSON codec — the wire format of the `dar-serve`
//! newline-delimited protocol, shared by the server, the CLI `serve`
//! command, and the bench load generator.
//!
//! The build environment is offline (no serde), so this module implements
//! exactly the subset the protocol needs: a [`Json`] value tree, an
//! encoder with deterministic output (object keys keep insertion order,
//! floats use Rust's shortest-roundtrip `Display`), and a recursive-descent
//! parser with position-carrying errors and a depth limit. `encode` →
//! [`parse`] round-trips every finite value bit-exactly (there is a
//! proptest property for this in `tests/json_roundtrip.rs`).

use std::fmt;

/// A parsed JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map): the
/// protocol's responses are compared byte-for-byte in tests, so encoding
/// must be deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. JSON has no NaN/∞; encoding a non-finite value yields
    /// `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (a readability helper).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON string (no trailing newline).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's Display prints the shortest decimal that
                    // parses back to the same f64 (and never uses exponent
                    // notation), so this is both valid JSON and bit-exact
                    // under round-trip.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Nesting depth cap: protects the recursive-descent parser from
/// stack-overflowing on adversarial input (this codec fronts a network
/// socket).
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
///
/// # Errors
/// Returns a [`JsonError`] naming the offending byte offset.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8; find the next char boundary).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            value = value * 16 + d;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Num(0.0)),
            ("-0", Json::Num(-0.0)),
            ("42", Json::Num(42.0)),
            ("-1.5", Json::Num(-1.5)),
            ("\"hi\"", Json::Str("hi".into())),
            ("\"\"", Json::Str(String::new())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
        }
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("-2.5E-2").unwrap(), Json::Num(-0.025));
    }

    #[test]
    fn containers_round_trip_byte_exactly() {
        let text = r#"{"verb":"query","density":[1.5,2],"nested":{"a":[],"b":{}},"ok":true}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.encode(), text);
        assert_eq!(value.get("verb").unwrap().as_str().unwrap(), "query");
        assert_eq!(value.get("density").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(value.get("nested").unwrap().get("a").unwrap(), &Json::Arr(vec![]));
    }

    #[test]
    fn string_escapes_and_unicode() {
        let original = Json::Str("q\"uo\\te\n\t\u{0001} ⇒ é 😀".into());
        let encoded = original.encode();
        assert_eq!(parse(&encoded).unwrap(), original);
        // Surrogate pairs parse.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        // Unpaired surrogates do not.
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\ud83dx\"").is_err());
    }

    #[test]
    fn whitespace_is_tolerated_garbage_is_not() {
        assert_eq!(parse("  { \"a\" : [ 1 , 2 ] }  ").unwrap().encode(), r#"{"a":[1,2]}"#);
        for bad in
            ["", "{", "[1,]", "{\"a\":}", "tru", "1.2.3", "\"a\" x", "{\"a\" 1}", "[1 2]", "01x"]
        {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = parse("[1,]").unwrap_err();
        assert!(err.to_string().contains("byte 3"), "{err}");
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = format!("{}1{}", "[".repeat(1000), "]".repeat(1000));
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn non_finite_numbers_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn integer_accessor_is_exact() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("7".into()).as_u64(), None);
    }
}
