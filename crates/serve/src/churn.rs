//! The rule-churn feed: diffing the canonical rule artifact across
//! epochs and fanning the diffs out to `subscribe` connections.
//!
//! One feed per server. After every window advance the serving layer
//! re-mines the canonical query ([`mining::RuleQuery::default`]), encodes
//! each rule through the deterministic wire codec, and hands the encoded
//! set here. The feed diffs it against the previous epoch's set
//! ([`dar_stream::diff`]), renders one `event` frame, and pushes the
//! frame's line into every subscriber's **bounded** queue:
//!
//! * a subscriber that keeps up receives every event, in epoch order,
//!   byte-identical across runs (the codec is deterministic end to end);
//! * a subscriber whose queue is full is *dropped* — the publisher never
//!   blocks and never buffers unboundedly — and its connection thread
//!   writes a final structured `lagged` frame before hanging up;
//! * a bounded history of recent events lets a reconnecting subscriber
//!   resume from its last seen epoch without replaying everything; a gap
//!   beyond the history is bridged with a `resync` baseline frame
//!   carrying the full current rule set, so replaying the stream always
//!   reconstructs the live rules.

use crate::json::{self, Json};
use crate::protocol;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Event frames retained for resuming subscribers.
const HISTORY_DEPTH: usize = 64;
/// Per-subscriber bounded queue depth (event lines). Overflow drops the
/// subscriber, never delays the publisher.
const QUEUE_DEPTH: usize = 256;

/// Why a subscriber's stream ended, shared between the publisher (which
/// decides) and the connection thread (which tells the client).
pub(crate) struct SubscriberCut {
    lagged: AtomicBool,
    /// The epoch of the event that overflowed the queue.
    at_epoch: AtomicU64,
}

impl SubscriberCut {
    /// Whether the publisher cut this subscriber for lagging (as opposed
    /// to a server shutdown closing the feed).
    pub fn is_lagged(&self) -> bool {
        self.lagged.load(Ordering::SeqCst)
    }

    /// The epoch whose event overflowed the queue.
    pub fn epoch(&self) -> u64 {
        self.at_epoch.load(Ordering::SeqCst)
    }
}

struct Subscriber {
    tx: SyncSender<String>,
    cut: Arc<SubscriberCut>,
}

struct DiffEvent {
    epoch: u64,
    line: String,
}

struct ChurnState {
    /// The previous epoch's canonical rule set, each rule pre-encoded
    /// through the wire codec (the byte-stable diff unit).
    prev_rules: Vec<String>,
    prev_epoch: u64,
    prev_span: Option<(u64, u64)>,
    history: VecDeque<DiffEvent>,
    /// The epoch of the newest event evicted from `history` (0 = nothing
    /// evicted yet): a resume point below this needs a resync baseline.
    history_floor: u64,
    subscribers: Vec<Subscriber>,
    closed: bool,
}

/// What [`ChurnFeed::subscribe`] hands the connection thread.
pub(crate) struct SubscriptionRx {
    /// The bounded event-line queue (catch-up frames already enqueued).
    pub rx: Receiver<String>,
    /// The cut reason, set by the publisher before dropping the sender.
    pub cut: Arc<SubscriberCut>,
    /// The epoch the stream starts after (for the handshake).
    pub epoch: u64,
    /// The window span at subscription time (for the handshake).
    pub window_span: Option<(u64, u64)>,
}

/// The per-server churn feed (see module docs).
pub(crate) struct ChurnFeed {
    state: Mutex<ChurnState>,
    /// Detached subscriber connection threads, joined on close.
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ChurnFeed {
    pub fn new() -> Self {
        ChurnFeed {
            state: Mutex::new(ChurnState {
                prev_rules: Vec::new(),
                prev_epoch: 0,
                prev_span: None,
                history: VecDeque::new(),
                history_floor: 0,
                subscribers: Vec::new(),
                closed: false,
            }),
            threads: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChurnState> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Publishes one epoch's canonical rule artifact. Diffs against the
    /// previous epoch, fans the event out, and becomes the new baseline.
    /// Stale epochs (at or below the last published) are ignored, so
    /// racing writers cannot reorder the stream. No-churn epochs advance
    /// the baseline without emitting an event.
    pub fn publish(&self, epoch: u64, window_span: Option<(u64, u64)>, rules: Vec<String>) {
        let mut state = self.lock();
        if state.closed || (state.prev_epoch != 0 && epoch <= state.prev_epoch) {
            return;
        }
        let d = dar_stream::diff(&state.prev_rules, &rules);
        state.prev_rules = rules;
        state.prev_epoch = epoch;
        state.prev_span = window_span;
        if d.is_empty() {
            return;
        }
        let line = protocol::event_frame(
            epoch,
            window_span,
            parse_rules(&d.added),
            parse_rules(&d.dropped),
            false,
        )
        .encode();
        if state.history.len() >= HISTORY_DEPTH {
            if let Some(evicted) = state.history.pop_front() {
                state.history_floor = evicted.epoch;
            }
        }
        state.history.push_back(DiffEvent { epoch, line: line.clone() });
        fan_out(&mut state, epoch, &line);
    }

    /// Registers a subscriber, enqueueing its catch-up frames under the
    /// same lock that orders live publishes — no event can fall between
    /// catch-up and the live stream.
    pub fn subscribe(&self, from_epoch: Option<u64>) -> SubscriptionRx {
        let mut state = self.lock();
        let (tx, rx) = std::sync::mpsc::sync_channel::<String>(QUEUE_DEPTH);
        let metrics = dar_stream::metrics::metrics();
        match from_epoch {
            // Resume: replay retained events newer than the subscriber's
            // last seen epoch, if the history still covers the gap.
            Some(seen) if seen >= state.history_floor => {
                for event in state.history.iter().filter(|e| e.epoch > seen) {
                    let _ = tx.try_send(event.line.clone());
                    metrics.events_pushed.inc();
                }
            }
            // Fresh subscriber, or a gap beyond the history: baseline the
            // stream with the full current rule set so replay reconstructs
            // the live rules.
            _ => {
                if state.prev_epoch != 0 {
                    let line = protocol::event_frame(
                        state.prev_epoch,
                        state.prev_span,
                        parse_rules(&state.prev_rules),
                        Vec::new(),
                        true,
                    )
                    .encode();
                    let _ = tx.try_send(line);
                    metrics.events_pushed.inc();
                }
            }
        }
        let cut =
            Arc::new(SubscriberCut { lagged: AtomicBool::new(false), at_epoch: AtomicU64::new(0) });
        state.subscribers.push(Subscriber { tx, cut: Arc::clone(&cut) });
        metrics.subscribers.add(1);
        SubscriptionRx { rx, cut, epoch: state.prev_epoch, window_span: state.prev_span }
    }

    /// Tracks a subscriber connection thread for join-on-close.
    pub fn track(&self, handle: JoinHandle<()>) {
        self.threads.lock().unwrap_or_else(|p| p.into_inner()).push(handle);
    }

    /// Closes the feed: drops every subscriber sender (their connection
    /// threads see the disconnect and hang up) and joins the threads.
    pub fn close(&self) {
        let dropped = {
            let mut state = self.lock();
            state.closed = true;
            std::mem::take(&mut state.subscribers)
        };
        dar_stream::metrics::metrics().subscribers.add(-(dropped.len() as i64));
        drop(dropped);
        let threads = std::mem::take(&mut *self.threads.lock().unwrap_or_else(|p| p.into_inner()));
        for handle in threads {
            let _ = handle.join();
        }
    }
}

/// Pushes one event line into every subscriber queue; a full queue cuts
/// that subscriber (lagged), a disconnected one is reaped silently.
fn fan_out(state: &mut ChurnState, epoch: u64, line: &str) {
    let metrics = dar_stream::metrics::metrics();
    state.subscribers.retain(|sub| match sub.tx.try_send(line.to_string()) {
        Ok(()) => {
            metrics.events_pushed.inc();
            true
        }
        Err(TrySendError::Full(_)) => {
            sub.cut.at_epoch.store(epoch, Ordering::SeqCst);
            sub.cut.lagged.store(true, Ordering::SeqCst);
            metrics.events_dropped.inc();
            metrics.subscribers.add(-1);
            false
        }
        Err(TrySendError::Disconnected(_)) => {
            metrics.subscribers.add(-1);
            false
        }
    });
}

/// Re-parses pre-encoded rule lines into wire values for embedding in an
/// event frame. The lines came out of the deterministic encoder, so this
/// cannot fail on real input; a hypothetically malformed line is carried
/// as a string rather than dropped.
fn parse_rules(rules: &[String]) -> Vec<Json> {
    rules.iter().map(|r| json::parse(r).unwrap_or_else(|_| Json::Str(r.clone()))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(tags: &[u64]) -> Vec<String> {
        tags.iter().map(|t| format!("{{\"rule\":{t}}}")).collect()
    }

    fn added_tags(line: &str) -> Vec<u64> {
        let frame = json::parse(line).unwrap();
        match frame.get("added").unwrap() {
            Json::Arr(items) => {
                items.iter().map(|r| r.get("rule").unwrap().as_u64().unwrap()).collect()
            }
            _ => panic!("added is an array"),
        }
    }

    #[test]
    fn events_flow_in_epoch_order_and_skip_no_churn_epochs() {
        let feed = ChurnFeed::new();
        let sub = feed.subscribe(None);
        feed.publish(1, Some((0, 0)), rules(&[1, 2]));
        feed.publish(2, Some((0, 1)), rules(&[1, 2])); // no churn: no event
        feed.publish(3, Some((1, 2)), rules(&[2, 3]));
        let first = sub.rx.try_recv().unwrap();
        assert_eq!(added_tags(&first), vec![1, 2]);
        let second = sub.rx.try_recv().unwrap();
        assert_eq!(added_tags(&second), vec![3]);
        let frame = json::parse(&second).unwrap();
        assert_eq!(frame.get("epoch").unwrap().as_u64(), Some(3));
        assert!(sub.rx.try_recv().is_err(), "no-churn epoch emitted nothing");
    }

    #[test]
    fn late_subscriber_gets_a_resync_baseline() {
        let feed = ChurnFeed::new();
        feed.publish(1, None, rules(&[1, 2]));
        feed.publish(2, None, rules(&[2, 3]));
        let sub = feed.subscribe(None);
        assert_eq!(sub.epoch, 2);
        let baseline = sub.rx.try_recv().unwrap();
        let frame = json::parse(&baseline).unwrap();
        assert_eq!(frame.get("resync").unwrap().as_bool(), Some(true));
        assert_eq!(added_tags(&baseline), vec![2, 3], "baseline carries the full live set");
    }

    #[test]
    fn resuming_from_a_seen_epoch_replays_only_newer_events() {
        let feed = ChurnFeed::new();
        feed.publish(1, None, rules(&[1]));
        feed.publish(2, None, rules(&[1, 2]));
        feed.publish(3, None, rules(&[1, 2, 3]));
        let sub = feed.subscribe(Some(1));
        let lines: Vec<String> = sub.rx.try_iter().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(added_tags(&lines[0]), vec![2]);
        assert_eq!(added_tags(&lines[1]), vec![3]);
        let frames: Vec<Json> = lines.iter().map(|l| json::parse(l).unwrap()).collect();
        assert!(frames.iter().all(|f| f.get("resync").unwrap().as_bool() == Some(false)));
    }

    #[test]
    fn stale_epochs_are_ignored() {
        let feed = ChurnFeed::new();
        let sub = feed.subscribe(None);
        feed.publish(5, None, rules(&[1]));
        feed.publish(4, None, rules(&[9])); // stale racing writer
        let lines: Vec<String> = sub.rx.try_iter().collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(added_tags(&lines[0]), vec![1]);
    }

    #[test]
    fn a_full_queue_cuts_the_subscriber_not_the_publisher() {
        let feed = ChurnFeed::new();
        let sub = feed.subscribe(None);
        // Overflow the bounded queue: one event per epoch, never draining.
        for epoch in 1..=(QUEUE_DEPTH as u64 + 8) {
            feed.publish(epoch, None, rules(&[epoch]));
        }
        assert!(sub.cut.is_lagged());
        assert!(sub.cut.epoch() > QUEUE_DEPTH as u64);
        // The queue still drains what was delivered before the cut, then
        // reports the disconnect the dropped sender left behind.
        let delivered = sub.rx.try_iter().count();
        assert_eq!(delivered, QUEUE_DEPTH);
        assert!(sub.rx.try_recv().is_err());
    }
}
