//! The epoch-aware concurrency wrapper around an [`EngineBackend`].
//!
//! Theorem 6.1 makes the engine naturally read-concurrent: once an epoch
//! is closed, a query is a pure function of the cached ACF summaries and
//! Phase II artifacts. [`SharedEngine`] turns that into an `RwLock`
//! discipline — many readers answer re-tuned queries from the cached
//! cliques in parallel through [`dar_engine::DarEngine::query_cached`];
//! the write lock is taken only to ingest, advance a window, close an
//! epoch, build a missing density setting, or snapshot. The backend is
//! either a classic all-history engine or a sliding-window
//! [`dar_stream::WindowedEngine`]; the lock discipline is identical.

use dar_core::{ClusterSummary, CoreError};
use dar_engine::{EngineStats, QueryOutcome};
use dar_stream::{AdvanceOutcome, EngineBackend, WindowedIngest};
use mining::RuleQuery;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// An [`EngineBackend`] shared between one writer path and many reader
/// threads.
pub struct SharedEngine {
    engine: RwLock<EngineBackend>,
    /// Queries answered entirely under the read lock (the engine's own
    /// counters need `&mut`, so the read path keeps its tally here).
    read_hits: AtomicU64,
}

impl SharedEngine {
    /// Wraps an engine for shared use. Accepts a plain
    /// [`dar_engine::DarEngine`], a [`dar_stream::WindowedEngine`], or an
    /// [`EngineBackend`] directly.
    pub fn new(engine: impl Into<EngineBackend>) -> Self {
        SharedEngine { engine: RwLock::new(engine.into()), read_hits: AtomicU64::new(0) }
    }

    fn read(&self) -> RwLockReadGuard<'_, EngineBackend> {
        self.engine.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, EngineBackend> {
        self.engine.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Answers a rule query, preferring the concurrent read path: when the
    /// epoch is closed and this density setting is cached, any number of
    /// threads answer in parallel without blocking each other (or the
    /// writer's next batch). Only an open epoch or an unseen density
    /// setting takes the write lock to build — after which every later
    /// query at that setting is a shared read again.
    ///
    /// # Errors
    /// Propagates arity errors from explicit density thresholds.
    pub fn query(&self, query: &RuleQuery) -> Result<QueryOutcome, CoreError> {
        {
            let engine = self.read();
            if let Some(outcome) = engine.query_cached(query)? {
                self.read_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(outcome);
            }
        }
        // Between dropping the read lock and acquiring the write lock the
        // world may change (another builder, another ingest) — the full
        // query path handles every interleaving and re-checks its cache.
        self.write().query(query)
    }

    /// Ingests a batch (single-writer path), returning the engine's total
    /// tuple count after the batch plus, for a windowed backend, what the
    /// batch did to the window ring (the serving layer tags the WAL frame
    /// and publishes rule churn from it).
    ///
    /// # Errors
    /// Validation errors from ingest; the batch is rejected whole and the
    /// engine is untouched.
    pub fn ingest(&self, rows: &[Vec<f64>]) -> Result<(u64, Option<WindowedIngest>), CoreError> {
        let mut engine = self.write();
        let windowed = engine.ingest(rows)?;
        Ok((engine.tuples(), windowed))
    }

    /// Seals the open window explicitly (windowed backend only).
    ///
    /// # Errors
    /// The static backend has no windows to advance.
    pub fn advance(&self) -> Result<AdvanceOutcome, CoreError> {
        self.write().advance()
    }

    /// Whether the backend mines a sliding window.
    pub fn is_windowed(&self) -> bool {
        self.read().is_windowed()
    }

    /// The live window horizon `(oldest seq, open seq)`, if windowed.
    pub fn window_span(&self) -> Option<(u64, u64)> {
        self.read().window_span()
    }

    /// Closes the current epoch (if open) and serializes it, returning
    /// `(bytes, epoch, tuples)`.
    ///
    /// # Errors
    /// Serialization errors from the backend snapshot.
    pub fn snapshot(&self) -> Result<(Vec<u8>, u64, u64), CoreError> {
        let mut engine = self.write();
        let bytes = engine.snapshot()?;
        Ok((bytes, engine.epoch(), engine.tuples()))
    }

    /// The backend's *mergeable* serialization for a coordinator's
    /// `pull_snapshot` — a plain engine-v2 body even on a windowed
    /// backend (live horizon only, no ring framing), returning
    /// `(bytes, epoch, tuples)`.
    ///
    /// # Errors
    /// Serialization errors from the backend snapshot.
    pub fn pull_snapshot(&self) -> Result<(Vec<u8>, u64, u64), CoreError> {
        let mut engine = self.write();
        let bytes = engine.pull_snapshot()?;
        Ok((bytes, engine.epoch(), engine.tuples()))
    }

    /// The current epoch's cluster summaries (closing the epoch if
    /// needed), with the epoch number they belong to.
    pub fn clusters(&self) -> (u64, Vec<ClusterSummary>) {
        let mut engine = self.write();
        let clusters = engine.clusters().to_vec();
        (engine.epoch(), clusters)
    }

    /// Engine counters plus the read-path hit tally.
    pub fn stats(&self) -> (EngineStats, u64) {
        (self.read().stats(), self.read_hits.load(Ordering::Relaxed))
    }

    /// Tuples in the mining horizon (read lock only) — lifetime count for
    /// an all-history backend, live-window count for a windowed one.
    pub fn tuples(&self) -> u64 {
        self.read().tuples()
    }

    /// Shard-identity summary for the `shard_stats` verb: `(epoch,
    /// tuples, required row width)` under one read lock.
    pub fn meta(&self) -> (u64, u64, usize) {
        let engine = self.read();
        (engine.epoch(), engine.tuples(), engine.required_row_width())
    }

    /// A clone of the engine's partitioning (read lock only) — the
    /// `shard_rescan` verb assigns WAL rows to coordinator-supplied
    /// clusters under it.
    pub fn partitioning(&self) -> dar_core::Partitioning {
        self.read().partitioning().clone()
    }

    /// The engine's configured worker-thread count (read lock only) —
    /// `shard_rescan` parallelizes its WAL re-scan with the same budget
    /// the engine mines under.
    pub fn engine_threads(&self) -> usize {
        self.read().config().threads
    }

    /// Cache hits served entirely under the read lock.
    pub fn read_hits(&self) -> u64 {
        self.read_hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Metric, Partitioning, Schema};
    use dar_engine::{DarEngine, EngineConfig};
    use dar_stream::{RetirePolicy, WindowSpec, WindowedEngine};

    fn config() -> EngineConfig {
        let mut config = EngineConfig::default();
        config.birch.initial_threshold = 1.0;
        config.min_support_frac = 0.2;
        config
    }

    fn partitioning() -> Partitioning {
        Partitioning::per_attribute(&Schema::interval_attrs(2), Metric::Euclidean)
    }

    fn shared() -> SharedEngine {
        SharedEngine::new(DarEngine::new(partitioning(), config()).unwrap())
    }

    fn rows(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let block = if i % 2 == 0 { 0.0 } else { 50.0 };
                vec![block, block + 10.0]
            })
            .collect()
    }

    #[test]
    fn first_query_builds_then_readers_hit() {
        let shared = shared();
        assert_eq!(shared.ingest(&rows(40)).unwrap(), (40, None));
        let q = RuleQuery::default();
        let first = shared.query(&q).unwrap();
        assert!(!first.cached);
        assert_eq!(shared.read_hits(), 0);
        let again = shared.query(&q).unwrap();
        assert!(again.cached);
        assert_eq!(again.rules, first.rules);
        assert_eq!(shared.read_hits(), 1);
        let (stats, read_hits) = shared.stats();
        assert_eq!(stats.queries, 1, "the read path bypasses engine counters");
        assert_eq!(read_hits, 1);
    }

    #[test]
    fn ingest_reopens_the_epoch_for_everyone() {
        let shared = shared();
        shared.ingest(&rows(40)).unwrap();
        let q = RuleQuery::default();
        let before = shared.query(&q).unwrap();
        shared.ingest(&rows(40)).unwrap();
        let after = shared.query(&q).unwrap();
        assert!(after.epoch > before.epoch);
        assert!(!after.cached);
    }

    #[test]
    fn windowed_backend_reports_window_movement() {
        let engine = WindowedEngine::new(
            partitioning(),
            config(),
            WindowSpec { batches: 1, slots: 2 },
            RetirePolicy::Remerge,
        )
        .unwrap();
        let windowed = SharedEngine::new(engine);
        assert!(windowed.is_windowed());
        assert_eq!(windowed.window_span(), Some((0, 0)));
        let (total, info) = windowed.ingest(&rows(40)).unwrap();
        let info = info.expect("windowed backend reports window movement");
        assert_eq!(total, 40, "one-batch windows: the batch fills window 0");
        assert!(info.advanced);
        assert_eq!(info.window_seq, 0);
        let out = windowed.advance().unwrap();
        assert_eq!(out.retired_seq, Some(0), "two slots overflow on the second seal");
        assert_eq!(windowed.tuples(), 0, "window 0's rows left the horizon");

        let fixed = shared();
        assert!(!fixed.is_windowed());
        assert!(fixed.advance().is_err(), "static backend refuses advance");
    }
}
