//! The request/response vocabulary of the newline-delimited JSON protocol.
//!
//! Every request is one JSON object on one line with a `"verb"` key;
//! every response is one JSON object on one line with an `"ok"` key.
//! Verbs:
//!
//! ```text
//! {"verb":"ingest","rows":[[…],…]}          → {"ok":true,"verb":"ingest","tuples":…,"total":…}
//! {"verb":"query", …RuleQuery knobs…}       → {"ok":true,"verb":"query","epoch":…,"rules":[…]}
//! {"verb":"clusters"}                       → {"ok":true,"verb":"clusters","clusters":[…]}
//! {"verb":"stats"}                          → {"ok":true,"verb":"stats","server":{…},"engine":{…}}
//! {"verb":"metrics"}                        → {"ok":true,"verb":"metrics","registry":{…}}
//! {"verb":"snapshot"}                       → {"ok":true,"verb":"snapshot","epoch":…,"path":…}
//! {"verb":"shutdown"}                       → {"ok":true,"verb":"shutdown"}
//! ```
//!
//! Streaming verbs — available when the server mines a sliding window
//! (`--window-batches`):
//!
//! ```text
//! {"verb":"advance"}                        → {"ok":true,…,"sealed":…,"opened":…,"retired":…,"window_span":[…]}
//! {"verb":"subscribe","from_epoch":…}       → {"ok":true,"verb":"subscribe","epoch":…}, then event frames
//! ```
//!
//! `subscribe` turns the connection into a long-lived push stream: after
//! the handshake, the server writes one `{"ok":true,"verb":"event",…}`
//! frame per window advance, carrying the rules `added` and `dropped`
//! relative to the previous epoch (deterministically encoded, so equal
//! diffs are byte-identical). A subscriber that cannot keep up is dropped
//! with a final structured `{"ok":false,"error":"lagged",…}` frame — the
//! server never blocks or buffers unboundedly on a slow consumer.
//! `from_epoch` resumes a reconnecting subscriber: events it has already
//! seen are not repeated, and a gap the server no longer retains is
//! bridged by a `"resync":true` event carrying the full current rule set.
//!
//! Shard verbs — the coordinator side of `dar-cluster`'s distributed
//! ingest, spoken by a `dar serve` instance acting as a shard worker:
//!
//! ```text
//! {"verb":"shard_ingest","seq":…,"rows":[…]} → {"ok":true,…,"seq":…,"applied":…,"total":…}
//! {"verb":"pull_snapshot"}                   → {"ok":true,…,"epoch":…,"snapshot_b64":"<base64>"}
//! {"verb":"shard_stats"}                     → {"ok":true,…,"epoch":…,"width":…,"last_seq":…}
//! {"verb":"shard_rescan","clusters":…,"rules":[…]} → {"ok":true,…,"counts":[…]}
//! ```
//!
//! `shard_ingest` carries the coordinator's global batch sequence number;
//! a shard remembers the highest it has applied and acknowledges
//! duplicates (`"applied":false`) without re-applying, which makes the
//! coordinator's at-least-once retries idempotent. `pull_snapshot`
//! returns the shard's binary epoch snapshot sealed with a checksum
//! footer (`dar_durable::seal_bytes`) and base64-encoded for the UTF-8
//! wire, so corruption is caught at merge time. `shard_rescan` is the
//! SON-style verify pass: the coordinator ships the merged cluster
//! summaries (base64 persist v2, with raw v1 text still accepted) plus
//! each candidate rule as a list of cluster positions, and the shard
//! counts its own WAL-retained tuples that fall in every one of the
//! rule's clusters.
//!
//! A coordinator serving with some shards down (`--allow-partial`)
//! annotates responses computed from a subset of the data with coverage
//! keys ([`annotate_degraded`]):
//!
//! ```text
//! {…,"degraded":true,"live_shards":…,"total_shards":…,
//!    "covered_tuples":…,"expected_tuples":…,"coverage":0.75}
//! ```
//!
//! `coverage` is the fraction of routed-and-acknowledged tuples the
//! answer actually saw. Full-coverage responses omit every one of these
//! keys, so a healthy cluster's lines stay byte-identical to a
//! single server's.
//!
//! Errors are structured, never a dropped connection:
//! `{"ok":false,"error":"<code>","message":"<detail>"}`.
//!
//! `query` accepts the re-tunable [`RuleQuery`] knobs by name —
//! `density_factor` *or* `density` (explicit per-set array),
//! `degree_factor`, `max_antecedent`, `max_consequent`, `max_rules`,
//! `max_pair_work` — plus the rank knobs `measure` (one of `degree`,
//! `lift`, `conviction`, `leverage`, `jaccard`), `min_measure`, `top_k`,
//! `prune_redundant`, and `budget_ms` — all optional, defaulting to the
//! server's base query (its own CLI flags over [`RuleQuery::default`]).
//! The response names the ranking `measure`, and each rule carries its
//! value under that measure. A budgeted (`budget_ms`) answer that did not
//! examine every clique pair is explicitly marked `"approx":true` with
//! the honest `"coverage"` fraction in `(0, 1]`, mirroring the degraded
//! annotation — exact answers omit both keys, so they stay byte-identical
//! across worker counts and shard layouts. Rule encoding is deterministic
//! (insertion-ordered keys, shortest round-trip floats), so equal rule
//! sets encode to equal bytes.

use crate::json::Json;
use dar_core::ClusterSummary;
use dar_engine::{EngineStats, QueryOutcome};
use mining::{DensitySpec, Measure, RuleQuery};

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Feed a batch of full tuples into the engine (writer path).
    Ingest {
        /// The tuples, one `Vec<f64>` per row, indexed by attribute.
        rows: Vec<Vec<f64>>,
    },
    /// Mine rules from the current epoch (concurrent reader path).
    Query {
        /// The re-tunable Phase II parameters.
        query: RuleQuery,
    },
    /// The current epoch's cluster summaries (reader path).
    Clusters,
    /// Server + engine counters (reader path).
    Stats,
    /// The full `dar-obs` registry — every metric across the stack plus
    /// the event journal — as deterministic JSON (reader path).
    Metrics,
    /// Close the epoch and persist it to the server's snapshot path.
    Snapshot,
    /// Seal the open window explicitly (windowed servers only).
    Advance,
    /// Turn this connection into a long-lived rule-churn push stream
    /// (windowed servers only).
    Subscribe {
        /// Resume point: the last epoch this subscriber saw (events at or
        /// below it are not repeated). `None` starts from a full baseline.
        from_epoch: Option<u64>,
    },
    /// Gracefully stop the server (responds first, then shuts down).
    Shutdown,
    /// Coordinator-routed ingest (writer path): like [`Request::Ingest`]
    /// but carrying the coordinator's global batch sequence number for
    /// duplicate suppression across retries.
    ShardIngest {
        /// The coordinator's global batch sequence number (1-based,
        /// strictly increasing per coordinator).
        seq: u64,
        /// The tuples, one `Vec<f64>` per row, indexed by attribute.
        rows: Vec<Vec<f64>>,
    },
    /// Pull this shard's epoch snapshot, sealed with a checksum footer,
    /// for coordinator-side forest merging.
    PullSnapshot,
    /// Shard health/identity summary for the coordinator's handshake.
    ShardStats,
    /// SON-style verify pass: count, per candidate rule, the tuples in
    /// this shard's write-ahead log assigned to every one of the rule's
    /// clusters (nearest-centroid, as `mining::pipeline::rescan_frequencies`).
    ShardRescan {
        /// The merged cluster summaries: base64-encoded `mining::persist`
        /// v2 binary, or (legacy coordinators) raw v1 text — the server
        /// sniffs, since v1 text can never parse as base64.
        clusters: String,
        /// Each rule as its cluster positions (antecedent ∪ consequent)
        /// into the shipped cluster slice.
        rules: Vec<Vec<usize>>,
    },
}

/// Decodes an `ingest`/`shard_ingest` rows array.
fn parse_rows(value: &Json, verb: &str) -> Result<Vec<Vec<f64>>, String> {
    let rows = value
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{verb} needs a \"rows\" array"))?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            row.as_array()
                .ok_or_else(|| format!("row {i} is not an array"))?
                .iter()
                .map(|v| v.as_f64().ok_or_else(|| format!("row {i} has a non-number")))
                .collect()
        })
        .collect()
}

impl Request {
    /// Decodes a request from its wire value, with query knobs defaulting
    /// to [`RuleQuery::default`].
    ///
    /// # Errors
    /// A human-readable message naming the malformed part.
    pub fn from_json(value: &Json) -> Result<Request, String> {
        Request::from_json_with(value, &RuleQuery::default())
    }

    /// Decodes a request from its wire value; `query` knobs the client
    /// did not send fall back to `base` (the server's own configured
    /// defaults) rather than the library defaults.
    ///
    /// # Errors
    /// A human-readable message naming the malformed part.
    pub fn from_json_with(value: &Json, base: &RuleQuery) -> Result<Request, String> {
        let verb = value
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| "request must be an object with a string \"verb\"".to_string())?;
        match verb {
            "ingest" => Ok(Request::Ingest { rows: parse_rows(value, "ingest")? }),
            "query" => Ok(Request::Query { query: parse_query_with(value, base)? }),
            "clusters" => Ok(Request::Clusters),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "snapshot" => Ok(Request::Snapshot),
            "advance" => Ok(Request::Advance),
            "subscribe" => {
                let from_epoch = match value.get("from_epoch") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_u64().ok_or_else(|| {
                        "subscribe \"from_epoch\" must be a non-negative integer".to_string()
                    })?),
                };
                Ok(Request::Subscribe { from_epoch })
            }
            "shutdown" => Ok(Request::Shutdown),
            "shard_ingest" => {
                let seq = value
                    .get("seq")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "shard_ingest needs a non-negative \"seq\"".to_string())?;
                Ok(Request::ShardIngest { seq, rows: parse_rows(value, "shard_ingest")? })
            }
            "pull_snapshot" => Ok(Request::PullSnapshot),
            "shard_stats" => Ok(Request::ShardStats),
            "shard_rescan" => {
                let clusters = value
                    .get("clusters")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "shard_rescan needs a \"clusters\" string".to_string())?
                    .to_string();
                let rules = value
                    .get("rules")
                    .and_then(Json::as_array)
                    .ok_or_else(|| "shard_rescan needs a \"rules\" array".to_string())?;
                let rules: Result<Vec<Vec<usize>>, String> = rules
                    .iter()
                    .enumerate()
                    .map(|(i, rule)| {
                        rule.as_array()
                            .ok_or_else(|| format!("rule {i} is not an array"))?
                            .iter()
                            .map(|v| {
                                v.as_u64().map(|p| p as usize).ok_or_else(|| {
                                    format!("rule {i} has a non-integer cluster position")
                                })
                            })
                            .collect()
                    })
                    .collect();
                Ok(Request::ShardRescan { clusters, rules: rules? })
            }
            other => Err(format!("unknown verb {other:?}")),
        }
    }

    /// Encodes this request as its wire value (the client side of the
    /// codec).
    pub fn to_json(&self) -> Json {
        let rows_json = |rows: &[Vec<f64>]| {
            Json::Arr(
                rows.iter().map(|r| Json::Arr(r.iter().map(|v| Json::Num(*v)).collect())).collect(),
            )
        };
        match self {
            Request::Ingest { rows } => {
                Json::obj(vec![("verb", Json::Str("ingest".into())), ("rows", rows_json(rows))])
            }
            Request::Query { query } => {
                let mut pairs = vec![("verb", Json::Str("query".into()))];
                match &query.density {
                    DensitySpec::Auto { factor } => {
                        pairs.push(("density_factor", Json::Num(*factor)));
                    }
                    DensitySpec::Explicit(thresholds) => {
                        pairs.push((
                            "density",
                            Json::Arr(thresholds.iter().map(|v| Json::Num(*v)).collect()),
                        ));
                    }
                }
                pairs.push(("degree_factor", Json::Num(query.degree_factor)));
                pairs.push(("max_antecedent", Json::Num(query.max_antecedent as f64)));
                pairs.push(("max_consequent", Json::Num(query.max_consequent as f64)));
                pairs.push(("max_rules", Json::Num(query.max_rules as f64)));
                pairs.push(("max_pair_work", Json::Num(query.max_pair_work as f64)));
                pairs.push(("measure", Json::Str(query.measure.as_str().into())));
                if let Some(floor) = query.min_measure {
                    pairs.push(("min_measure", Json::Num(floor)));
                }
                pairs.push(("top_k", Json::Num(query.top_k as f64)));
                pairs.push(("prune_redundant", Json::Bool(query.prune_redundant)));
                pairs.push(("budget_ms", Json::Num(query.budget_ms as f64)));
                Json::obj(pairs)
            }
            Request::Clusters => verb_only("clusters"),
            Request::Stats => verb_only("stats"),
            Request::Metrics => verb_only("metrics"),
            Request::Snapshot => verb_only("snapshot"),
            Request::Advance => verb_only("advance"),
            Request::Subscribe { from_epoch } => {
                let mut pairs = vec![("verb", Json::Str("subscribe".into()))];
                if let Some(epoch) = from_epoch {
                    pairs.push(("from_epoch", Json::Num(*epoch as f64)));
                }
                Json::obj(pairs)
            }
            Request::Shutdown => verb_only("shutdown"),
            Request::ShardIngest { seq, rows } => Json::obj(vec![
                ("verb", Json::Str("shard_ingest".into())),
                ("seq", Json::Num(*seq as f64)),
                ("rows", rows_json(rows)),
            ]),
            Request::PullSnapshot => verb_only("pull_snapshot"),
            Request::ShardStats => verb_only("shard_stats"),
            Request::ShardRescan { clusters, rules } => Json::obj(vec![
                ("verb", Json::Str("shard_rescan".into())),
                ("clusters", Json::Str(clusters.clone())),
                (
                    "rules",
                    Json::Arr(
                        rules
                            .iter()
                            .map(|r| Json::Arr(r.iter().map(|&p| Json::Num(p as f64)).collect()))
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

fn verb_only(verb: &str) -> Json {
    Json::obj(vec![("verb", Json::Str(verb.into()))])
}

fn parse_query_with(value: &Json, base: &RuleQuery) -> Result<RuleQuery, String> {
    let mut query = base.clone();
    if let Some(v) = value.get("density_factor") {
        let factor = v.as_f64().ok_or("density_factor must be a number")?;
        query.density = DensitySpec::Auto { factor };
    }
    if let Some(v) = value.get("density") {
        let items = v.as_array().ok_or("density must be an array")?;
        let thresholds: Result<Vec<f64>, &str> =
            items.iter().map(|t| t.as_f64().ok_or("density entries must be numbers")).collect();
        query.density = DensitySpec::Explicit(thresholds?);
    }
    if let Some(v) = value.get("degree_factor") {
        query.degree_factor = v.as_f64().ok_or("degree_factor must be a number")?;
    }
    for (key, slot) in [
        ("max_antecedent", &mut query.max_antecedent),
        ("max_consequent", &mut query.max_consequent),
        ("max_rules", &mut query.max_rules),
    ] {
        if let Some(v) = value.get(key) {
            *slot =
                v.as_u64().ok_or_else(|| format!("{key} must be a non-negative integer"))? as usize;
        }
    }
    if let Some(v) = value.get("max_pair_work") {
        query.max_pair_work = v.as_u64().ok_or("max_pair_work must be a non-negative integer")?;
    }
    if let Some(v) = value.get("measure") {
        let name = v.as_str().ok_or("measure must be a string")?;
        query.measure = Measure::parse(name)
            .ok_or_else(|| format!("unknown measure {name:?} (try degree, lift, …)"))?;
    }
    if let Some(v) = value.get("min_measure") {
        query.min_measure = match v {
            Json::Null => None,
            _ => Some(v.as_f64().ok_or("min_measure must be a number")?),
        };
    }
    if let Some(v) = value.get("top_k") {
        query.top_k = v.as_u64().ok_or("top_k must be a non-negative integer")? as usize;
    }
    if let Some(v) = value.get("prune_redundant") {
        query.prune_redundant = v.as_bool().ok_or("prune_redundant must be a boolean")?;
    }
    if let Some(v) = value.get("budget_ms") {
        query.budget_ms = v.as_u64().ok_or("budget_ms must be a non-negative integer")?;
    }
    Ok(query)
}

/// A structured error response: `{"ok":false,"error":…,"message":…}`.
pub fn error_response(code: &str, message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(code.into())),
        ("message", Json::Str(message.into())),
    ])
}

/// The `ingest` success response.
pub fn ingest_response(tuples: u64, total: u64) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("ingest".into())),
        ("tuples", Json::Num(tuples as f64)),
        ("total", Json::Num(total as f64)),
    ])
}

/// The `query` success response, including the full ranked rule set.
///
/// Rules are encoded in the ranking's deterministic order (measure value,
/// then rule identity — the historical degree order under the default
/// measure), so two equal rule sets produce byte-identical lines. An
/// anytime answer that did not examine every clique pair appends
/// `"approx":true` and its honest `"coverage"` fraction; exact answers
/// omit both keys entirely.
pub fn query_response(outcome: &QueryOutcome) -> Json {
    let rules: Vec<Json> = outcome
        .rules
        .iter()
        .zip(&outcome.values)
        .map(|(rule, &value)| rule_json(rule, value))
        .collect();
    let mut pairs = vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("query".into())),
        ("epoch", Json::Num(outcome.epoch as f64)),
        ("s0", Json::Num(outcome.s0 as f64)),
        ("cached", Json::Bool(outcome.cached)),
        ("truncated", Json::Bool(outcome.truncated)),
        ("measure", Json::Str(outcome.measure.as_str().into())),
        ("rules", Json::Arr(rules)),
    ];
    if let Some(coverage) = outcome.coverage {
        if coverage < 1.0 {
            pairs.push(("approx", Json::Bool(true)));
            pairs.push(("coverage", Json::Num(coverage)));
        }
    }
    Json::obj(pairs)
}

/// One rule as its wire object — the unit `query` responses and
/// rule-churn `event` frames share, so a rule encodes to the same bytes
/// everywhere it appears. `value` is the rule's score under the ranking
/// measure in force (its degree under the default measure).
pub fn rule_json(rule: &mining::Dar, value: f64) -> Json {
    Json::obj(vec![
        ("antecedent", Json::Arr(rule.antecedent.iter().map(|&i| Json::Num(i as f64)).collect())),
        ("consequent", Json::Arr(rule.consequent.iter().map(|&i| Json::Num(i as f64)).collect())),
        ("degree", Json::Num(rule.degree)),
        ("min_support", Json::Num(rule.min_cluster_support as f64)),
        ("measure", Json::Num(value)),
    ])
}

/// The `clusters` success response: the epoch's cluster summaries.
pub fn clusters_response(epoch: u64, clusters: &[ClusterSummary]) -> Json {
    let items: Vec<Json> = clusters
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("id", Json::Num(c.id.0 as f64)),
                ("set", Json::Num(c.set as f64)),
                ("support", Json::Num(c.support() as f64)),
                ("diameter", Json::Num(c.diameter())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("clusters".into())),
        ("epoch", Json::Num(epoch as f64)),
        ("clusters", Json::Arr(items)),
    ])
}

/// The `snapshot` success response.
pub fn snapshot_response(epoch: u64, tuples: u64, path: Option<&str>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("snapshot".into())),
        ("epoch", Json::Num(epoch as f64)),
        ("tuples", Json::Num(tuples as f64)),
        ("path", path.map_or(Json::Null, |p| Json::Str(p.into()))),
    ])
}

/// The `shutdown` acknowledgement.
pub fn shutdown_response() -> Json {
    Json::obj(vec![("ok", Json::Bool(true)), ("verb", Json::Str("shutdown".into()))])
}

/// The `advance` success response: what sealing the open window did.
pub fn advance_response(
    sealed: u64,
    opened: u64,
    retired: Option<u64>,
    window_span: (u64, u64),
) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("advance".into())),
        ("sealed", Json::Num(sealed as f64)),
        ("opened", Json::Num(opened as f64)),
        ("retired", retired.map_or(Json::Null, |s| Json::Num(s as f64))),
        ("window_span", span_json(window_span)),
    ])
}

/// The `subscribe` handshake: acknowledges the stream and reports the
/// epoch the following event frames start after.
pub fn subscribe_response(epoch: u64, window_span: Option<(u64, u64)>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("subscribe".into())),
        ("epoch", Json::Num(epoch as f64)),
        ("window_span", window_span.map_or(Json::Null, span_json)),
    ])
}

/// One rule-churn event frame: the rules `added` and `dropped` by the
/// epoch, as raw rule objects ([`rule_json`] encoding). `resync` marks a
/// baseline frame whose `added` is the *full* current rule set (sent when
/// a resuming subscriber's gap exceeds the server's retained history —
/// replaying events after a resync still reconstructs the live set).
pub fn event_frame(
    epoch: u64,
    window_span: Option<(u64, u64)>,
    added: Vec<Json>,
    dropped: Vec<Json>,
    resync: bool,
) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("event".into())),
        ("epoch", Json::Num(epoch as f64)),
        ("window_span", window_span.map_or(Json::Null, span_json)),
        ("resync", Json::Bool(resync)),
        ("added", Json::Arr(added)),
        ("dropped", Json::Arr(dropped)),
    ])
}

/// The final frame a subscriber receives when its bounded queue
/// overflowed: the server dropped the subscriber (never itself) and tells
/// it the epoch to resume from (`subscribe` with `from_epoch`).
pub fn lagged_frame(epoch: u64) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str("lagged".into())),
        (
            "message",
            Json::Str("subscriber queue overflowed; resubscribe with from_epoch to resume".into()),
        ),
        ("epoch", Json::Num(epoch as f64)),
    ])
}

fn span_json((oldest, open): (u64, u64)) -> Json {
    Json::Arr(vec![Json::Num(oldest as f64), Json::Num(open as f64)])
}

/// The `shard_ingest` success response. `applied` is `false` when `seq`
/// was at or below the shard's watermark and the batch was acknowledged
/// as a duplicate without touching the engine.
pub fn shard_ingest_response(seq: u64, applied: bool, tuples: u64, total: u64) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("shard_ingest".into())),
        ("seq", Json::Num(seq as f64)),
        ("applied", Json::Bool(applied)),
        ("tuples", Json::Num(tuples as f64)),
        ("total", Json::Num(total as f64)),
    ])
}

/// The `pull_snapshot` success response: the shard's epoch snapshot
/// (binary engine-v2 body), sealed with a checksum footer (`seq` = the
/// shard's coordinator-batch watermark, so the coordinator can tell which
/// routed batches the snapshot covers) and base64-encoded to ride the
/// UTF-8 JSON wire.
pub fn pull_snapshot_response(epoch: u64, tuples: u64, sealed: &[u8]) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("pull_snapshot".into())),
        ("epoch", Json::Num(epoch as f64)),
        ("tuples", Json::Num(tuples as f64)),
        ("snapshot_b64", Json::Str(crate::b64::encode(sealed))),
    ])
}

/// The `shard_stats` success response: the coordinator's health/identity
/// handshake.
pub fn shard_stats_response(
    epoch: u64,
    tuples: u64,
    width: usize,
    degraded: bool,
    last_seq: u64,
) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("shard_stats".into())),
        ("epoch", Json::Num(epoch as f64)),
        ("tuples", Json::Num(tuples as f64)),
        ("width", Json::Num(width as f64)),
        ("degraded", Json::Bool(degraded)),
        ("last_seq", Json::Num(last_seq as f64)),
    ])
}

/// Appends the degraded-coverage annotation to a coordinator response
/// served from a subset of shards: `degraded:true`, the live/total shard
/// counts, the acknowledged tuples the answer covered vs. expected, and
/// their ratio as `coverage`. Callers must only invoke this on genuinely
/// partial answers — full-coverage responses omit the keys entirely so a
/// healthy cluster's lines stay byte-identical to a single server's.
pub fn annotate_degraded(
    response: &mut Json,
    live_shards: u64,
    total_shards: u64,
    covered_tuples: u64,
    expected_tuples: u64,
) {
    let Json::Obj(pairs) = response else {
        return;
    };
    let coverage =
        if expected_tuples == 0 { 1.0 } else { covered_tuples as f64 / expected_tuples as f64 };
    pairs.push(("degraded".into(), Json::Bool(true)));
    pairs.push(("live_shards".into(), Json::Num(live_shards as f64)));
    pairs.push(("total_shards".into(), Json::Num(total_shards as f64)));
    pairs.push(("covered_tuples".into(), Json::Num(covered_tuples as f64)));
    pairs.push(("expected_tuples".into(), Json::Num(expected_tuples as f64)));
    pairs.push(("coverage".into(), Json::Num(coverage)));
}

/// The `shard_rescan` success response: per-rule exact frequencies over
/// the `rows_scanned` tuples this shard retains in its write-ahead log.
pub fn shard_rescan_response(rows_scanned: u64, counts: &[u64]) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("shard_rescan".into())),
        ("rows_scanned", Json::Num(rows_scanned as f64)),
        ("counts", Json::Arr(counts.iter().map(|&c| Json::Num(c as f64)).collect())),
    ])
}

/// The `metrics` response: the global `dar-obs` registry (every metric
/// across the stack plus the event journal), embedded by parsing the
/// registry's own deterministic JSON rendering so there is exactly one
/// encoding source.
pub fn metrics_response() -> Json {
    let registry = crate::json::parse(&dar_obs::global().render_json())
        .unwrap_or_else(|e| error_response("internal", &format!("registry rendering: {e}")));
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("metrics".into())),
        ("registry", registry),
    ])
}

/// The engine half of the `stats` response.
pub fn engine_stats_json(stats: &EngineStats, shared_read_hits: u64) -> Json {
    Json::obj(vec![
        ("tuples_ingested", Json::Num(stats.tuples_ingested as f64)),
        ("batches", Json::Num(stats.batches as f64)),
        ("rejected_batches", Json::Num(stats.rejected_batches as f64)),
        ("epochs", Json::Num(stats.epochs as f64)),
        ("wal_batches_replayed", Json::Num(stats.wal_batches_replayed as f64)),
        ("forest_rebuilds", Json::Num(stats.forest_rebuilds as f64)),
        ("queries", Json::Num(stats.queries as f64)),
        ("cache_hits", Json::Num(stats.cache_hits as f64)),
        ("cache_misses", Json::Num(stats.cache_misses as f64)),
        // Cache hits served lock-free through the read path, on top of the
        // engine's own (write-path) counters.
        ("shared_read_hits", Json::Num(shared_read_hits as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn requests_round_trip_through_the_codec() {
        let requests = vec![
            Request::Ingest { rows: vec![vec![1.0, 2.5], vec![-3.0, 0.0]] },
            Request::Query {
                query: RuleQuery {
                    density: DensitySpec::Explicit(vec![1.25, 2.5]),
                    degree_factor: 3.0,
                    max_antecedent: 2,
                    max_consequent: 1,
                    max_rules: 500,
                    max_pair_work: 1_000,
                    ..RuleQuery::default()
                },
            },
            Request::Query {
                query: RuleQuery {
                    measure: mining::Measure::Lift,
                    min_measure: Some(1.5),
                    top_k: 10,
                    prune_redundant: true,
                    budget_ms: 250,
                    ..RuleQuery::default()
                },
            },
            Request::Query { query: RuleQuery::default() },
            Request::Clusters,
            Request::Stats,
            Request::Metrics,
            Request::Snapshot,
            Request::Advance,
            Request::Subscribe { from_epoch: None },
            Request::Subscribe { from_epoch: Some(17) },
            Request::Shutdown,
            Request::ShardIngest { seq: 42, rows: vec![vec![0.5, -1.0]] },
            Request::PullSnapshot,
            Request::ShardStats,
            Request::ShardRescan {
                clusters: "acf-clusters v1 sets=0 dims=\n".into(),
                rules: vec![vec![0, 3], vec![1, 2, 4]],
            },
        ];
        for request in requests {
            let line = request.to_json().encode();
            let back = Request::from_json(&parse(&line).unwrap()).unwrap();
            assert_eq!(back, request, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_named() {
        for (line, needle) in [
            ("{}", "verb"),
            (r#"{"verb":"frobnicate"}"#, "frobnicate"),
            (r#"{"verb":"ingest"}"#, "rows"),
            (r#"{"verb":"ingest","rows":[[1],"x"]}"#, "row 1"),
            (r#"{"verb":"query","degree_factor":"big"}"#, "degree_factor"),
            (r#"{"verb":"query","max_rules":-1}"#, "max_rules"),
            (r#"{"verb":"query","measure":"pagerank"}"#, "pagerank"),
            (r#"{"verb":"query","measure":7}"#, "measure"),
            (r#"{"verb":"query","min_measure":"low"}"#, "min_measure"),
            (r#"{"verb":"query","top_k":-3}"#, "top_k"),
            (r#"{"verb":"query","prune_redundant":1}"#, "prune_redundant"),
            (r#"{"verb":"query","budget_ms":-1}"#, "budget_ms"),
            (r#"{"verb":"subscribe","from_epoch":-1}"#, "from_epoch"),
            (r#"{"verb":"subscribe","from_epoch":"x"}"#, "from_epoch"),
            (r#"{"verb":"shard_ingest","rows":[]}"#, "seq"),
            (r#"{"verb":"shard_ingest","seq":1}"#, "rows"),
            (r#"{"verb":"shard_rescan","rules":[]}"#, "clusters"),
            (r#"{"verb":"shard_rescan","clusters":"x"}"#, "rules"),
            (r#"{"verb":"shard_rescan","clusters":"x","rules":[[0.5]]}"#, "rule 0"),
        ] {
            let err = Request::from_json(&parse(line).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn unsent_query_knobs_fall_back_to_the_server_base() {
        let base = RuleQuery {
            measure: Measure::Jaccard,
            top_k: 7,
            prune_redundant: true,
            ..RuleQuery::default()
        };
        let value = parse(r#"{"verb":"query","max_rules":9}"#).unwrap();
        let Request::Query { query } = Request::from_json_with(&value, &base).unwrap() else {
            panic!("not a query");
        };
        assert_eq!(query.max_rules, 9, "sent knobs apply");
        assert_eq!(query.measure, Measure::Jaccard, "unsent knobs keep the base");
        assert_eq!(query.top_k, 7);
        assert!(query.prune_redundant);
        // An explicit knob still overrides the base.
        let value =
            parse(r#"{"verb":"query","measure":"degree","prune_redundant":false}"#).unwrap();
        let Request::Query { query } = Request::from_json_with(&value, &base).unwrap() else {
            panic!("not a query");
        };
        assert_eq!(query.measure, Measure::Degree);
        assert!(!query.prune_redundant);
    }

    #[test]
    fn degraded_annotation_reports_honest_coverage() {
        let mut response = Json::obj(vec![("ok", Json::Bool(true))]);
        annotate_degraded(&mut response, 3, 4, 120, 160);
        assert_eq!(response.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(response.get("live_shards").and_then(Json::as_u64), Some(3));
        assert_eq!(response.get("total_shards").and_then(Json::as_u64), Some(4));
        assert_eq!(response.get("covered_tuples").and_then(Json::as_u64), Some(120));
        assert_eq!(response.get("expected_tuples").and_then(Json::as_u64), Some(160));
        assert_eq!(response.get("coverage").and_then(Json::as_f64), Some(0.75));
        // The empty cluster degenerates to full coverage, not NaN.
        let mut empty = Json::obj(vec![("ok", Json::Bool(true))]);
        annotate_degraded(&mut empty, 1, 2, 0, 0);
        assert_eq!(empty.get("coverage").and_then(Json::as_f64), Some(1.0));
        // Non-objects are left untouched rather than panicking.
        let mut not_an_object = Json::Null;
        annotate_degraded(&mut not_an_object, 1, 2, 0, 0);
        assert_eq!(not_an_object, Json::Null);
    }

    #[test]
    fn error_responses_are_structured() {
        let e = error_response("overloaded", "accept queue is full");
        assert!(!e.get("ok").unwrap().as_bool().unwrap());
        assert_eq!(e.get("error").unwrap().as_str().unwrap(), "overloaded");
    }
}
