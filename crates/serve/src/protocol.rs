//! The request/response vocabulary of the newline-delimited JSON protocol.
//!
//! Every request is one JSON object on one line with a `"verb"` key;
//! every response is one JSON object on one line with an `"ok"` key.
//! Verbs:
//!
//! ```text
//! {"verb":"ingest","rows":[[…],…]}          → {"ok":true,"verb":"ingest","tuples":…,"total":…}
//! {"verb":"query", …RuleQuery knobs…}       → {"ok":true,"verb":"query","epoch":…,"rules":[…]}
//! {"verb":"clusters"}                       → {"ok":true,"verb":"clusters","clusters":[…]}
//! {"verb":"stats"}                          → {"ok":true,"verb":"stats","server":{…},"engine":{…}}
//! {"verb":"metrics"}                        → {"ok":true,"verb":"metrics","registry":{…}}
//! {"verb":"snapshot"}                       → {"ok":true,"verb":"snapshot","epoch":…,"path":…}
//! {"verb":"shutdown"}                       → {"ok":true,"verb":"shutdown"}
//! ```
//!
//! Errors are structured, never a dropped connection:
//! `{"ok":false,"error":"<code>","message":"<detail>"}`.
//!
//! `query` accepts the re-tunable [`RuleQuery`] knobs by name —
//! `density_factor` *or* `density` (explicit per-set array),
//! `degree_factor`, `max_antecedent`, `max_consequent`, `max_rules`,
//! `max_pair_work` — all optional, defaulting to [`RuleQuery::default`].
//! Rule encoding is deterministic (insertion-ordered keys, shortest
//! round-trip floats), so equal rule sets encode to equal bytes.

use crate::json::Json;
use dar_core::ClusterSummary;
use dar_engine::{EngineStats, QueryOutcome};
use mining::{DensitySpec, RuleQuery};

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Feed a batch of full tuples into the engine (writer path).
    Ingest {
        /// The tuples, one `Vec<f64>` per row, indexed by attribute.
        rows: Vec<Vec<f64>>,
    },
    /// Mine rules from the current epoch (concurrent reader path).
    Query {
        /// The re-tunable Phase II parameters.
        query: RuleQuery,
    },
    /// The current epoch's cluster summaries (reader path).
    Clusters,
    /// Server + engine counters (reader path).
    Stats,
    /// The full `dar-obs` registry — every metric across the stack plus
    /// the event journal — as deterministic JSON (reader path).
    Metrics,
    /// Close the epoch and persist it to the server's snapshot path.
    Snapshot,
    /// Gracefully stop the server (responds first, then shuts down).
    Shutdown,
}

impl Request {
    /// Decodes a request from its wire value.
    ///
    /// # Errors
    /// A human-readable message naming the malformed part.
    pub fn from_json(value: &Json) -> Result<Request, String> {
        let verb = value
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| "request must be an object with a string \"verb\"".to_string())?;
        match verb {
            "ingest" => {
                let rows = value
                    .get("rows")
                    .and_then(Json::as_array)
                    .ok_or_else(|| "ingest needs a \"rows\" array".to_string())?;
                let rows: Result<Vec<Vec<f64>>, String> = rows
                    .iter()
                    .enumerate()
                    .map(|(i, row)| {
                        row.as_array()
                            .ok_or_else(|| format!("row {i} is not an array"))?
                            .iter()
                            .map(|v| v.as_f64().ok_or_else(|| format!("row {i} has a non-number")))
                            .collect()
                    })
                    .collect();
                Ok(Request::Ingest { rows: rows? })
            }
            "query" => Ok(Request::Query { query: parse_query(value)? }),
            "clusters" => Ok(Request::Clusters),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "snapshot" => Ok(Request::Snapshot),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown verb {other:?}")),
        }
    }

    /// Encodes this request as its wire value (the client side of the
    /// codec).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ingest { rows } => Json::obj(vec![
                ("verb", Json::Str("ingest".into())),
                (
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|r| Json::Arr(r.iter().map(|v| Json::Num(*v)).collect()))
                            .collect(),
                    ),
                ),
            ]),
            Request::Query { query } => {
                let mut pairs = vec![("verb", Json::Str("query".into()))];
                match &query.density {
                    DensitySpec::Auto { factor } => {
                        pairs.push(("density_factor", Json::Num(*factor)));
                    }
                    DensitySpec::Explicit(thresholds) => {
                        pairs.push((
                            "density",
                            Json::Arr(thresholds.iter().map(|v| Json::Num(*v)).collect()),
                        ));
                    }
                }
                pairs.push(("degree_factor", Json::Num(query.degree_factor)));
                pairs.push(("max_antecedent", Json::Num(query.max_antecedent as f64)));
                pairs.push(("max_consequent", Json::Num(query.max_consequent as f64)));
                pairs.push(("max_rules", Json::Num(query.max_rules as f64)));
                pairs.push(("max_pair_work", Json::Num(query.max_pair_work as f64)));
                Json::obj(pairs)
            }
            Request::Clusters => verb_only("clusters"),
            Request::Stats => verb_only("stats"),
            Request::Metrics => verb_only("metrics"),
            Request::Snapshot => verb_only("snapshot"),
            Request::Shutdown => verb_only("shutdown"),
        }
    }
}

fn verb_only(verb: &str) -> Json {
    Json::obj(vec![("verb", Json::Str(verb.into()))])
}

fn parse_query(value: &Json) -> Result<RuleQuery, String> {
    let mut query = RuleQuery::default();
    if let Some(v) = value.get("density_factor") {
        let factor = v.as_f64().ok_or("density_factor must be a number")?;
        query.density = DensitySpec::Auto { factor };
    }
    if let Some(v) = value.get("density") {
        let items = v.as_array().ok_or("density must be an array")?;
        let thresholds: Result<Vec<f64>, &str> =
            items.iter().map(|t| t.as_f64().ok_or("density entries must be numbers")).collect();
        query.density = DensitySpec::Explicit(thresholds?);
    }
    if let Some(v) = value.get("degree_factor") {
        query.degree_factor = v.as_f64().ok_or("degree_factor must be a number")?;
    }
    for (key, slot) in [
        ("max_antecedent", &mut query.max_antecedent),
        ("max_consequent", &mut query.max_consequent),
        ("max_rules", &mut query.max_rules),
    ] {
        if let Some(v) = value.get(key) {
            *slot =
                v.as_u64().ok_or_else(|| format!("{key} must be a non-negative integer"))? as usize;
        }
    }
    if let Some(v) = value.get("max_pair_work") {
        query.max_pair_work = v.as_u64().ok_or("max_pair_work must be a non-negative integer")?;
    }
    Ok(query)
}

/// A structured error response: `{"ok":false,"error":…,"message":…}`.
pub fn error_response(code: &str, message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(code.into())),
        ("message", Json::Str(message.into())),
    ])
}

/// The `ingest` success response.
pub fn ingest_response(tuples: u64, total: u64) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("ingest".into())),
        ("tuples", Json::Num(tuples as f64)),
        ("total", Json::Num(total as f64)),
    ])
}

/// The `query` success response, including the full rule set.
///
/// Rules are encoded in the engine's deterministic order (sorted by
/// degree, then antecedent, then consequent), so two equal rule sets
/// produce byte-identical lines.
pub fn query_response(outcome: &QueryOutcome) -> Json {
    let rules: Vec<Json> = outcome
        .rules
        .iter()
        .map(|rule| {
            Json::obj(vec![
                (
                    "antecedent",
                    Json::Arr(rule.antecedent.iter().map(|&i| Json::Num(i as f64)).collect()),
                ),
                (
                    "consequent",
                    Json::Arr(rule.consequent.iter().map(|&i| Json::Num(i as f64)).collect()),
                ),
                ("degree", Json::Num(rule.degree)),
                ("min_support", Json::Num(rule.min_cluster_support as f64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("query".into())),
        ("epoch", Json::Num(outcome.epoch as f64)),
        ("s0", Json::Num(outcome.s0 as f64)),
        ("cached", Json::Bool(outcome.cached)),
        ("truncated", Json::Bool(outcome.truncated)),
        ("rules", Json::Arr(rules)),
    ])
}

/// The `clusters` success response: the epoch's cluster summaries.
pub fn clusters_response(epoch: u64, clusters: &[ClusterSummary]) -> Json {
    let items: Vec<Json> = clusters
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("id", Json::Num(c.id.0 as f64)),
                ("set", Json::Num(c.set as f64)),
                ("support", Json::Num(c.support() as f64)),
                ("diameter", Json::Num(c.diameter())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("clusters".into())),
        ("epoch", Json::Num(epoch as f64)),
        ("clusters", Json::Arr(items)),
    ])
}

/// The `snapshot` success response.
pub fn snapshot_response(epoch: u64, tuples: u64, path: Option<&str>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("snapshot".into())),
        ("epoch", Json::Num(epoch as f64)),
        ("tuples", Json::Num(tuples as f64)),
        ("path", path.map_or(Json::Null, |p| Json::Str(p.into()))),
    ])
}

/// The `shutdown` acknowledgement.
pub fn shutdown_response() -> Json {
    Json::obj(vec![("ok", Json::Bool(true)), ("verb", Json::Str("shutdown".into()))])
}

/// The `metrics` response: the global `dar-obs` registry (every metric
/// across the stack plus the event journal), embedded by parsing the
/// registry's own deterministic JSON rendering so there is exactly one
/// encoding source.
pub fn metrics_response() -> Json {
    let registry = crate::json::parse(&dar_obs::global().render_json())
        .unwrap_or_else(|e| error_response("internal", &format!("registry rendering: {e}")));
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("verb", Json::Str("metrics".into())),
        ("registry", registry),
    ])
}

/// The engine half of the `stats` response.
pub fn engine_stats_json(stats: &EngineStats, shared_read_hits: u64) -> Json {
    Json::obj(vec![
        ("tuples_ingested", Json::Num(stats.tuples_ingested as f64)),
        ("batches", Json::Num(stats.batches as f64)),
        ("rejected_batches", Json::Num(stats.rejected_batches as f64)),
        ("epochs", Json::Num(stats.epochs as f64)),
        ("wal_batches_replayed", Json::Num(stats.wal_batches_replayed as f64)),
        ("forest_rebuilds", Json::Num(stats.forest_rebuilds as f64)),
        ("queries", Json::Num(stats.queries as f64)),
        ("cache_hits", Json::Num(stats.cache_hits as f64)),
        ("cache_misses", Json::Num(stats.cache_misses as f64)),
        // Cache hits served lock-free through the read path, on top of the
        // engine's own (write-path) counters.
        ("shared_read_hits", Json::Num(shared_read_hits as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn requests_round_trip_through_the_codec() {
        let requests = vec![
            Request::Ingest { rows: vec![vec![1.0, 2.5], vec![-3.0, 0.0]] },
            Request::Query {
                query: RuleQuery {
                    density: DensitySpec::Explicit(vec![1.25, 2.5]),
                    degree_factor: 3.0,
                    max_antecedent: 2,
                    max_consequent: 1,
                    max_rules: 500,
                    max_pair_work: 1_000,
                },
            },
            Request::Query { query: RuleQuery::default() },
            Request::Clusters,
            Request::Stats,
            Request::Metrics,
            Request::Snapshot,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_json().encode();
            let back = Request::from_json(&parse(&line).unwrap()).unwrap();
            assert_eq!(back, request, "{line}");
        }
    }

    #[test]
    fn malformed_requests_are_named() {
        for (line, needle) in [
            ("{}", "verb"),
            (r#"{"verb":"frobnicate"}"#, "frobnicate"),
            (r#"{"verb":"ingest"}"#, "rows"),
            (r#"{"verb":"ingest","rows":[[1],"x"]}"#, "row 1"),
            (r#"{"verb":"query","degree_factor":"big"}"#, "degree_factor"),
            (r#"{"verb":"query","max_rules":-1}"#, "max_rules"),
        ] {
            let err = Request::from_json(&parse(line).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn error_responses_are_structured() {
        let e = error_response("overloaded", "accept queue is full");
        assert!(!e.get("ok").unwrap().as_bool().unwrap());
        assert_eq!(e.get("error").unwrap().as_str().unwrap(), "overloaded");
    }
}
