//! Server observability: lock-free counters plus a lock-free latency
//! histogram, exposed over the wire via the `stats` verb.
//!
//! Latencies land in a per-server `dar-obs` log2-bucket [`Histogram`]
//! (replacing the old mutex-guarded overwrite-when-full reservoir): every
//! request is counted — no sampling window, no bias, no lock on the hot
//! path — and p50/p99 are derived from the full population at snapshot
//! time. Each request is also recorded into the process-global per-verb
//! `dar_serve_requests_total{verb=…}` / `dar_serve_request_ns{verb=…}`
//! series for Prometheus exposition.

use crate::json::Json;
use dar_obs::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared, thread-safe server counters. Every update is lock-free,
/// including latency recording (relaxed atomics into histogram buckets).
#[derive(Default)]
pub struct ServerStats {
    /// Connections accepted and handed to the worker pool.
    pub connections: AtomicU64,
    /// Connections refused because the bounded accept queue was full
    /// (each received a structured `overloaded` error before close).
    pub rejected_connections: AtomicU64,
    /// `ingest` requests served.
    pub ingest_requests: AtomicU64,
    /// `query` requests served.
    pub query_requests: AtomicU64,
    /// `clusters` requests served.
    pub clusters_requests: AtomicU64,
    /// `stats` requests served.
    pub stats_requests: AtomicU64,
    /// `snapshot` requests served.
    pub snapshot_requests: AtomicU64,
    /// `shutdown` requests served.
    pub shutdown_requests: AtomicU64,
    /// `metrics` requests served.
    pub metrics_requests: AtomicU64,
    /// `advance` requests served (explicit window seals).
    pub advance_requests: AtomicU64,
    /// `subscribe` requests served (accepted churn subscriptions).
    pub subscribe_requests: AtomicU64,
    /// `shard_ingest` requests served (coordinator-routed batches,
    /// including duplicate acknowledgements).
    pub shard_ingest_requests: AtomicU64,
    /// `shard_ingest` requests acknowledged as duplicates (sequence at or
    /// below the watermark) without re-applying the batch.
    pub shard_dup_batches: AtomicU64,
    /// `pull_snapshot` requests served.
    pub pull_snapshot_requests: AtomicU64,
    /// `shard_rescan` requests served.
    pub shard_rescan_requests: AtomicU64,
    /// Highest coordinator batch sequence applied via `shard_ingest` —
    /// the duplicate-suppression watermark. In-memory only: a restarted
    /// shard starts at 0, so a (single) coordinator must not retry
    /// batches it has already seen acknowledged across a shard restart.
    pub shard_last_seq: AtomicU64,
    /// Request-line bytes read across all verbs (newline included).
    pub bytes_read: AtomicU64,
    /// Response-line bytes written across all verbs (newline included).
    pub bytes_written: AtomicU64,
    /// Requests that produced a structured error response (parse errors,
    /// unknown verbs, engine rejections).
    pub error_responses: AtomicU64,
    /// Snapshots written to disk (periodic + final).
    pub snapshots_written: AtomicU64,
    /// Snapshot installs that failed (the previous good snapshot stays).
    pub snapshot_failures: AtomicU64,
    /// Ingest batches committed to the write-ahead log.
    pub wal_appends: AtomicU64,
    /// WAL appends that failed; each flips the server to degraded mode.
    pub wal_append_failures: AtomicU64,
    /// 0/1: whether the server is in degraded (read-only) mode. Sticky —
    /// once the WAL refuses a committed batch, acknowledging further
    /// ingest would silently lose data on the next crash, so ingest stays
    /// refused until an operator restarts with healthy storage.
    degraded: AtomicU64,
    /// Per-server request-latency histogram in nanoseconds. Private (not
    /// the global registry) so each server's `stats` verb reports its own
    /// traffic exactly, even with several servers in one process.
    latency: Histogram,
}

impl ServerStats {
    /// Flips the server into degraded (read-only) mode. Sticky.
    pub fn set_degraded(&self) {
        self.degraded.store(1, Ordering::SeqCst);
        crate::metrics::metrics().degraded.set(1);
        dar_obs::event("serve.degraded", &[("mode", "read-only")]);
    }

    /// Whether the server is refusing ingest in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst) != 0
    }

    /// Records one request's wall-clock latency under its verb label
    /// (`"error"` for requests that never resolved to a verb).
    pub fn record_latency(&self, verb: &str, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.latency.observe(ns);
        let m = crate::metrics::metrics().verb(verb);
        m.requests.inc();
        m.request_ns.observe(ns);
    }

    /// Records one request's wire traffic under its verb label: the
    /// request line read and the response line written, newlines
    /// included. Feeds both the aggregate counters here and the per-verb
    /// `dar_serve_bytes_{read,written}_total{verb=…}` series.
    pub fn record_io(&self, verb: &str, bytes_read: u64, bytes_written: u64) {
        self.bytes_read.fetch_add(bytes_read, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes_written, Ordering::Relaxed);
        let m = crate::metrics::metrics().verb(verb);
        m.bytes_read.add(bytes_read);
        m.bytes_written.add(bytes_written);
    }

    /// A point-in-time copy of this server's latency histogram — the
    /// exact population `snapshot()` derives p50/p99 from.
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.latency.snapshot()
    }

    /// A consistent point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let latency = self.latency.snapshot();
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            connections: get(&self.connections),
            rejected_connections: get(&self.rejected_connections),
            ingest_requests: get(&self.ingest_requests),
            query_requests: get(&self.query_requests),
            clusters_requests: get(&self.clusters_requests),
            stats_requests: get(&self.stats_requests),
            snapshot_requests: get(&self.snapshot_requests),
            shutdown_requests: get(&self.shutdown_requests),
            metrics_requests: get(&self.metrics_requests),
            advance_requests: get(&self.advance_requests),
            subscribe_requests: get(&self.subscribe_requests),
            shard_ingest_requests: get(&self.shard_ingest_requests),
            shard_dup_batches: get(&self.shard_dup_batches),
            pull_snapshot_requests: get(&self.pull_snapshot_requests),
            shard_rescan_requests: get(&self.shard_rescan_requests),
            shard_last_seq: get(&self.shard_last_seq),
            bytes_read: get(&self.bytes_read),
            bytes_written: get(&self.bytes_written),
            error_responses: get(&self.error_responses),
            snapshots_written: get(&self.snapshots_written),
            snapshot_failures: get(&self.snapshot_failures),
            wal_appends: get(&self.wal_appends),
            wal_append_failures: get(&self.wal_append_failures),
            degraded: self.is_degraded(),
            requests_sampled: latency.count,
            p50_us: latency.quantile(0.50) / 1_000,
            p99_us: latency.quantile(0.99) / 1_000,
        }
    }
}

/// A plain-value copy of [`ServerStats`], ready to assert on or encode.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Connections accepted and handed to the worker pool.
    pub connections: u64,
    /// Connections refused by the bounded accept queue.
    pub rejected_connections: u64,
    /// `ingest` requests served.
    pub ingest_requests: u64,
    /// `query` requests served.
    pub query_requests: u64,
    /// `clusters` requests served.
    pub clusters_requests: u64,
    /// `stats` requests served.
    pub stats_requests: u64,
    /// `snapshot` requests served.
    pub snapshot_requests: u64,
    /// `shutdown` requests served.
    pub shutdown_requests: u64,
    /// `metrics` requests served.
    pub metrics_requests: u64,
    /// `advance` requests served (explicit window seals).
    pub advance_requests: u64,
    /// `subscribe` requests served (accepted churn subscriptions).
    pub subscribe_requests: u64,
    /// `shard_ingest` requests served (including duplicate acks).
    pub shard_ingest_requests: u64,
    /// `shard_ingest` duplicates acknowledged without re-applying.
    pub shard_dup_batches: u64,
    /// `pull_snapshot` requests served.
    pub pull_snapshot_requests: u64,
    /// `shard_rescan` requests served.
    pub shard_rescan_requests: u64,
    /// Highest coordinator batch sequence applied via `shard_ingest`.
    pub shard_last_seq: u64,
    /// Request-line bytes read across all verbs.
    pub bytes_read: u64,
    /// Response-line bytes written across all verbs.
    pub bytes_written: u64,
    /// Structured error responses sent.
    pub error_responses: u64,
    /// Snapshots written to disk.
    pub snapshots_written: u64,
    /// Snapshot installs that failed.
    pub snapshot_failures: u64,
    /// Ingest batches committed to the write-ahead log.
    pub wal_appends: u64,
    /// WAL appends that failed.
    pub wal_append_failures: u64,
    /// Whether the server is in degraded (read-only) mode.
    pub degraded: bool,
    /// Requests whose latency was recorded — every request since start
    /// (the histogram has no sampling window).
    pub requests_sampled: u64,
    /// Median request latency over all recorded requests, microseconds
    /// (histogram-derived).
    pub p50_us: u64,
    /// 99th-percentile request latency over all recorded requests,
    /// microseconds (histogram-derived).
    pub p99_us: u64,
}

impl StatsSnapshot {
    /// Total requests served across all verbs (excluding refused
    /// connections, which never reach a worker).
    pub fn total_requests(&self) -> u64 {
        self.ingest_requests
            + self.query_requests
            + self.clusters_requests
            + self.stats_requests
            + self.snapshot_requests
            + self.shutdown_requests
            + self.metrics_requests
            + self.advance_requests
            + self.subscribe_requests
            + self.shard_ingest_requests
            + self.pull_snapshot_requests
            + self.shard_rescan_requests
    }

    /// The server half of the `stats` response.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("connections", Json::Num(self.connections as f64)),
            ("rejected_connections", Json::Num(self.rejected_connections as f64)),
            ("ingest_requests", Json::Num(self.ingest_requests as f64)),
            ("query_requests", Json::Num(self.query_requests as f64)),
            ("clusters_requests", Json::Num(self.clusters_requests as f64)),
            ("stats_requests", Json::Num(self.stats_requests as f64)),
            ("snapshot_requests", Json::Num(self.snapshot_requests as f64)),
            ("shutdown_requests", Json::Num(self.shutdown_requests as f64)),
            ("metrics_requests", Json::Num(self.metrics_requests as f64)),
            ("advance_requests", Json::Num(self.advance_requests as f64)),
            ("subscribe_requests", Json::Num(self.subscribe_requests as f64)),
            ("shard_ingest_requests", Json::Num(self.shard_ingest_requests as f64)),
            ("shard_dup_batches", Json::Num(self.shard_dup_batches as f64)),
            ("pull_snapshot_requests", Json::Num(self.pull_snapshot_requests as f64)),
            ("shard_rescan_requests", Json::Num(self.shard_rescan_requests as f64)),
            ("shard_last_seq", Json::Num(self.shard_last_seq as f64)),
            ("bytes_read", Json::Num(self.bytes_read as f64)),
            ("bytes_written", Json::Num(self.bytes_written as f64)),
            ("error_responses", Json::Num(self.error_responses as f64)),
            ("snapshots_written", Json::Num(self.snapshots_written as f64)),
            ("snapshot_failures", Json::Num(self.snapshot_failures as f64)),
            ("wal_appends", Json::Num(self.wal_appends as f64)),
            ("wal_append_failures", Json::Num(self.wal_append_failures as f64)),
            ("degraded", Json::Bool(self.degraded)),
            ("p50_us", Json::Num(self.p50_us as f64)),
            ("p99_us", Json::Num(self.p99_us as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_track_samples() {
        let stats = ServerStats::default();
        assert_eq!(stats.snapshot().p99_us, 0, "empty histogram reports zeros");
        for ms in 1..=100u64 {
            stats.record_latency("query", Duration::from_millis(ms));
        }
        let snap = stats.snapshot();
        assert_eq!(snap.requests_sampled, 100);
        assert!((49_000..=52_000).contains(&snap.p50_us), "p50 = {}", snap.p50_us);
        assert!((98_000..=100_000).contains(&snap.p99_us), "p99 = {}", snap.p99_us);
        assert!(snap.p50_us <= snap.p99_us);
    }

    #[test]
    fn histogram_has_no_sampling_window() {
        // The old reservoir overwrote past 8192 samples; the histogram
        // counts every request and stays exact.
        let stats = ServerStats::default();
        for _ in 0..8_692u64 {
            stats.record_latency("ingest", Duration::from_micros(7));
        }
        let snap = stats.snapshot();
        assert_eq!(snap.requests_sampled, 8_692);
        assert_eq!(snap.p50_us, 7);
        assert_eq!(snap.p99_us, 7);
    }

    #[test]
    fn wire_percentiles_match_histogram_quantiles() {
        let stats = ServerStats::default();
        for ms in [3u64, 14, 159, 26, 5] {
            stats.record_latency("query", Duration::from_millis(ms));
        }
        let snap = stats.snapshot();
        let hist = stats.latency_snapshot();
        assert_eq!(snap.p50_us, hist.quantile(0.50) / 1_000);
        assert_eq!(snap.p99_us, hist.quantile(0.99) / 1_000);
        assert_eq!(snap.requests_sampled, hist.count);
    }

    #[test]
    fn snapshot_encodes_and_totals() {
        let stats = ServerStats::default();
        stats.query_requests.fetch_add(3, Ordering::Relaxed);
        stats.ingest_requests.fetch_add(1, Ordering::Relaxed);
        stats.shard_ingest_requests.fetch_add(2, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.total_requests(), 6);
        let json = snap.to_json();
        assert_eq!(json.get("query_requests").unwrap().as_u64(), Some(3));
        assert_eq!(json.get("shard_ingest_requests").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn io_bytes_accumulate_per_verb_and_in_aggregate() {
        let stats = ServerStats::default();
        stats.record_io("query", 120, 4_500);
        stats.record_io("query", 80, 1_500);
        stats.record_io("ingest", 10_000, 60);
        let snap = stats.snapshot();
        assert_eq!(snap.bytes_read, 10_200);
        assert_eq!(snap.bytes_written, 6_060);
        let json = snap.to_json();
        assert_eq!(json.get("bytes_read").unwrap().as_u64(), Some(10_200));
        assert_eq!(json.get("bytes_written").unwrap().as_u64(), Some(6_060));
        // The per-verb global series saw the same traffic (cumulative
        // across tests sharing the process-global registry, so ≥).
        let m = crate::metrics::metrics().verb("query");
        assert!(m.bytes_read.get() >= 200);
        assert!(m.bytes_written.get() >= 6_000);
    }
}
