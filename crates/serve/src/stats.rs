//! Server observability: lock-free counters plus a bounded latency
//! reservoir, exposed over the wire via the `stats` verb.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How many request latencies the reservoir keeps. Once full, new samples
/// overwrite old ones round-robin, so the percentiles track recent load.
const LATENCY_CAPACITY: usize = 8192;

/// Shared, thread-safe server counters. Every field is updated lock-free
/// except the latency reservoir (a short critical section per request).
#[derive(Default)]
pub struct ServerStats {
    /// Connections accepted and handed to the worker pool.
    pub connections: AtomicU64,
    /// Connections refused because the bounded accept queue was full
    /// (each received a structured `overloaded` error before close).
    pub rejected_connections: AtomicU64,
    /// `ingest` requests served.
    pub ingest_requests: AtomicU64,
    /// `query` requests served.
    pub query_requests: AtomicU64,
    /// `clusters` requests served.
    pub clusters_requests: AtomicU64,
    /// `stats` requests served.
    pub stats_requests: AtomicU64,
    /// `snapshot` requests served.
    pub snapshot_requests: AtomicU64,
    /// `shutdown` requests served.
    pub shutdown_requests: AtomicU64,
    /// Requests that produced a structured error response (parse errors,
    /// unknown verbs, engine rejections).
    pub error_responses: AtomicU64,
    /// Snapshots written to disk (periodic + final).
    pub snapshots_written: AtomicU64,
    /// Snapshot installs that failed (the previous good snapshot stays).
    pub snapshot_failures: AtomicU64,
    /// Ingest batches committed to the write-ahead log.
    pub wal_appends: AtomicU64,
    /// WAL appends that failed; each flips the server to degraded mode.
    pub wal_append_failures: AtomicU64,
    /// 0/1: whether the server is in degraded (read-only) mode. Sticky —
    /// once the WAL refuses a committed batch, acknowledging further
    /// ingest would silently lose data on the next crash, so ingest stays
    /// refused until an operator restarts with healthy storage.
    degraded: AtomicU64,
    latencies: Mutex<LatencyReservoir>,
}

#[derive(Default)]
struct LatencyReservoir {
    samples_us: Vec<u64>,
    next: usize,
    total: u64,
}

impl ServerStats {
    /// Flips the server into degraded (read-only) mode. Sticky.
    pub fn set_degraded(&self) {
        self.degraded.store(1, Ordering::SeqCst);
    }

    /// Whether the server is refusing ingest in degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst) != 0
    }

    /// Records one request's wall-clock latency.
    pub fn record_latency(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let mut r = self.latencies.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        r.total += 1;
        if r.samples_us.len() < LATENCY_CAPACITY {
            r.samples_us.push(us);
        } else {
            let slot = r.next;
            r.samples_us[slot] = us;
            r.next = (slot + 1) % LATENCY_CAPACITY;
        }
    }

    /// A consistent point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let (p50_us, p99_us, requests_sampled) = {
            let r = self.latencies.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            let mut sorted = r.samples_us.clone();
            sorted.sort_unstable();
            (percentile(&sorted, 0.50), percentile(&sorted, 0.99), r.total)
        };
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        StatsSnapshot {
            connections: get(&self.connections),
            rejected_connections: get(&self.rejected_connections),
            ingest_requests: get(&self.ingest_requests),
            query_requests: get(&self.query_requests),
            clusters_requests: get(&self.clusters_requests),
            stats_requests: get(&self.stats_requests),
            snapshot_requests: get(&self.snapshot_requests),
            shutdown_requests: get(&self.shutdown_requests),
            error_responses: get(&self.error_responses),
            snapshots_written: get(&self.snapshots_written),
            snapshot_failures: get(&self.snapshot_failures),
            wal_appends: get(&self.wal_appends),
            wal_append_failures: get(&self.wal_append_failures),
            degraded: self.is_degraded(),
            requests_sampled,
            p50_us,
            p99_us,
        }
    }
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// A plain-value copy of [`ServerStats`], ready to assert on or encode.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Connections accepted and handed to the worker pool.
    pub connections: u64,
    /// Connections refused by the bounded accept queue.
    pub rejected_connections: u64,
    /// `ingest` requests served.
    pub ingest_requests: u64,
    /// `query` requests served.
    pub query_requests: u64,
    /// `clusters` requests served.
    pub clusters_requests: u64,
    /// `stats` requests served.
    pub stats_requests: u64,
    /// `snapshot` requests served.
    pub snapshot_requests: u64,
    /// `shutdown` requests served.
    pub shutdown_requests: u64,
    /// Structured error responses sent.
    pub error_responses: u64,
    /// Snapshots written to disk.
    pub snapshots_written: u64,
    /// Snapshot installs that failed.
    pub snapshot_failures: u64,
    /// Ingest batches committed to the write-ahead log.
    pub wal_appends: u64,
    /// WAL appends that failed.
    pub wal_append_failures: u64,
    /// Whether the server is in degraded (read-only) mode.
    pub degraded: bool,
    /// Requests whose latency was recorded (lifetime, not just the
    /// reservoir window).
    pub requests_sampled: u64,
    /// Median request latency over the reservoir window, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency over the reservoir window,
    /// microseconds.
    pub p99_us: u64,
}

impl StatsSnapshot {
    /// Total requests served across all verbs (excluding refused
    /// connections, which never reach a worker).
    pub fn total_requests(&self) -> u64 {
        self.ingest_requests
            + self.query_requests
            + self.clusters_requests
            + self.stats_requests
            + self.snapshot_requests
            + self.shutdown_requests
    }

    /// The server half of the `stats` response.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("connections", Json::Num(self.connections as f64)),
            ("rejected_connections", Json::Num(self.rejected_connections as f64)),
            ("ingest_requests", Json::Num(self.ingest_requests as f64)),
            ("query_requests", Json::Num(self.query_requests as f64)),
            ("clusters_requests", Json::Num(self.clusters_requests as f64)),
            ("stats_requests", Json::Num(self.stats_requests as f64)),
            ("snapshot_requests", Json::Num(self.snapshot_requests as f64)),
            ("shutdown_requests", Json::Num(self.shutdown_requests as f64)),
            ("error_responses", Json::Num(self.error_responses as f64)),
            ("snapshots_written", Json::Num(self.snapshots_written as f64)),
            ("snapshot_failures", Json::Num(self.snapshot_failures as f64)),
            ("wal_appends", Json::Num(self.wal_appends as f64)),
            ("wal_append_failures", Json::Num(self.wal_append_failures as f64)),
            ("degraded", Json::Bool(self.degraded)),
            ("p50_us", Json::Num(self.p50_us as f64)),
            ("p99_us", Json::Num(self.p99_us as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_track_samples() {
        let stats = ServerStats::default();
        assert_eq!(stats.snapshot().p99_us, 0, "empty reservoir reports zeros");
        for ms in 1..=100u64 {
            stats.record_latency(Duration::from_millis(ms));
        }
        let snap = stats.snapshot();
        assert_eq!(snap.requests_sampled, 100);
        assert!((49_000..=52_000).contains(&snap.p50_us), "p50 = {}", snap.p50_us);
        assert!((98_000..=100_000).contains(&snap.p99_us), "p99 = {}", snap.p99_us);
        assert!(snap.p50_us <= snap.p99_us);
    }

    #[test]
    fn reservoir_overwrites_round_robin_past_capacity() {
        let stats = ServerStats::default();
        for _ in 0..(LATENCY_CAPACITY + 500) {
            stats.record_latency(Duration::from_micros(7));
        }
        let snap = stats.snapshot();
        assert_eq!(snap.requests_sampled, (LATENCY_CAPACITY + 500) as u64);
        assert_eq!(snap.p50_us, 7);
    }

    #[test]
    fn snapshot_encodes_and_totals() {
        let stats = ServerStats::default();
        stats.query_requests.fetch_add(3, Ordering::Relaxed);
        stats.ingest_requests.fetch_add(1, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.total_requests(), 4);
        let json = snap.to_json();
        assert_eq!(json.get("query_requests").unwrap().as_u64(), Some(3));
    }
}
