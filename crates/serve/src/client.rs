//! A small blocking client for the newline-delimited JSON protocol —
//! used by the bench load generator, the CI smoke test, and anyone
//! scripting a `dar serve` instance from Rust.
//!
//! Structured server errors surface as a typed [`ServerError`] inside the
//! returned `io::Error` (recover it with [`ServerError::of`]), so callers
//! can distinguish transient conditions — `overloaded` backpressure,
//! `degraded` read-only mode — from hard failures. The `*_with_retry`
//! methods do that automatically under a bounded-exponential [`Backoff`]
//! with deterministic jitter, reconnecting between attempts (a refused
//! connection is answered and then hung up on, so the old socket is dead).

use crate::json::{self, Json};
use crate::protocol::Request;
use mining::RuleQuery;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A structured error response from the server, carried inside the
/// `io::Error` that request methods return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerError {
    /// The machine-readable error code (`overloaded`, `degraded`,
    /// `rejected`, `bad-query`, …).
    pub code: String,
    /// The human-readable detail.
    pub message: String,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server error {}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServerError {}

impl ServerError {
    /// Recovers the structured error from an `io::Error`, if that is what
    /// it carries.
    pub fn of(err: &io::Error) -> Option<&ServerError> {
        err.get_ref()?.downcast_ref::<ServerError>()
    }

    /// Whether retrying (after a backoff delay) can plausibly succeed:
    /// `overloaded` clears when the accept queue drains, and `degraded`
    /// clears when an operator restarts the server on healthy storage.
    pub fn is_transient(&self) -> bool {
        matches!(self.code.as_str(), "overloaded" | "degraded")
    }
}

/// Bounded exponential backoff with deterministic jitter.
///
/// Delay for attempt *n* is `base · 2ⁿ` capped at `cap`, then jittered
/// into `[d/2, d]` by a hash of `seed` and *n* — deterministic, so tests
/// reproduce, but distinct across clients given distinct seeds (hand each
/// load-generator thread its index as the seed).
#[derive(Debug, Clone)]
pub struct Backoff {
    /// Retries after the initial attempt.
    pub attempts: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub cap: Duration,
    /// Jitter stream selector.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            attempts: 5,
            base: Duration::from_millis(20),
            cap: Duration::from_secs(1),
            seed: 0,
        }
    }
}

impl Backoff {
    /// The jittered delay before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(20)).min(self.cap);
        let d = exp.as_nanos().min(u64::MAX as u128) as u64;
        if d == 0 {
            return Duration::ZERO;
        }
        // SplitMix64 over (seed, attempt): cheap, deterministic jitter.
        let mut z = self.seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Duration::from_nanos(d / 2 + z % (d / 2 + 1))
    }
}

/// One connection to a `dar serve` instance.
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects with the given I/O timeouts. The dial itself is bounded
    /// by `timeout` too, so an unreachable (e.g. blackholed) address
    /// fails within the budget instead of hanging in `connect(2)`.
    ///
    /// # Errors
    /// Connection/setup failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout.max(Duration::from_millis(1)))?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { addr, timeout, reader, writer: BufWriter::new(stream) })
    }

    /// Drops the current socket and dials the same address again.
    ///
    /// # Errors
    /// Connection/setup failures.
    pub fn reconnect(&mut self) -> io::Result<()> {
        *self = Client::connect(self.addr, self.timeout)?;
        Ok(())
    }

    /// Temporarily clamps the socket's I/O timeouts to
    /// `min(limit, self.timeout)` — how the deadline-budgeted path keeps
    /// a single blocked read from overrunning the caller's budget.
    fn clamp_io_timeout(&self, limit: Duration) {
        let limit = limit.min(self.timeout).max(Duration::from_millis(1));
        let stream = self.reader.get_ref();
        let _ = stream.set_read_timeout(Some(limit));
        let _ = stream.set_write_timeout(Some(limit));
    }

    /// Sends one raw line and returns the raw response line — the
    /// byte-exact surface, for tests asserting byte-identical answers.
    ///
    /// # Errors
    /// I/O failures, or a server that hung up without responding.
    pub fn round_trip_line(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"));
        }
        Ok(response.trim_end_matches('\n').to_string())
    }

    /// Sends a [`Request`] and returns the decoded response.
    ///
    /// # Errors
    /// I/O failures or an undecodable response.
    pub fn request(&mut self, request: &Request) -> io::Result<Json> {
        let line = self.round_trip_line(&request.to_json().encode())?;
        json::parse(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}: {line}")))
    }

    /// Sends a [`Request`], retrying transient failures — `overloaded`
    /// backpressure, `degraded` mode, or a connection the server hung up
    /// on — under `backoff`, reconnecting before each retry.
    ///
    /// # Errors
    /// The last failure once retries are exhausted, or immediately on a
    /// non-transient error.
    pub fn request_with_retry(&mut self, request: &Request, backoff: &Backoff) -> io::Result<Json> {
        let mut attempt = 0;
        loop {
            match self.expect_ok(request) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    let transient = ServerError::of(&e).is_some_and(ServerError::is_transient)
                        || e.kind() == io::ErrorKind::UnexpectedEof;
                    if !transient || attempt >= backoff.attempts {
                        return Err(e);
                    }
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                    // A refused connection was hung up on; start clean. If
                    // the dial fails, the next expect_ok reports it.
                    let _ = self.reconnect();
                }
            }
        }
    }

    /// [`Client::request_with_retry`] under a hard wall-clock `deadline`:
    /// the total spent across attempts, socket reads, and backoff sleeps
    /// stays within the budget. Each attempt's socket timeout is clamped
    /// to the remaining budget, read timeouts count as transient (the
    /// next attempt redials, escaping a blackholed connection), and the
    /// loop never sleeps past the deadline. On exhaustion the last
    /// failure is returned (or a `deadline` [`ServerError`] when the
    /// budget was spent before the first attempt).
    ///
    /// # Errors
    /// As [`Client::request_with_retry`], plus deadline exhaustion.
    pub fn request_with_retry_deadline(
        &mut self,
        request: &Request,
        backoff: &Backoff,
        deadline: Instant,
    ) -> io::Result<Json> {
        let mut attempt = 0;
        let result = loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    ServerError {
                        code: "deadline".into(),
                        message: "request deadline exhausted before an attempt".into(),
                    },
                ));
            }
            self.clamp_io_timeout(remaining);
            match self.expect_ok(request) {
                Ok(response) => break Ok(response),
                Err(e) => {
                    let transient = ServerError::of(&e).is_some_and(ServerError::is_transient)
                        || matches!(
                            e.kind(),
                            io::ErrorKind::UnexpectedEof
                                | io::ErrorKind::WouldBlock
                                | io::ErrorKind::TimedOut
                        );
                    let delay = backoff.delay(attempt);
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if !transient || attempt >= backoff.attempts {
                        break Err(e);
                    }
                    if delay >= remaining {
                        // The budget, not the retry policy, ended the
                        // request: surface the structured deadline error
                        // so callers can tell a stall from a refusal.
                        break Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            ServerError {
                                code: "deadline".into(),
                                message: format!(
                                    "request deadline exhausted after {} attempt(s): {e}",
                                    attempt + 1
                                ),
                            },
                        ));
                    }
                    std::thread::sleep(delay);
                    attempt += 1;
                    // Redial within what is left of the budget; a failed
                    // dial surfaces on the next attempt's write.
                    let limit = deadline.saturating_duration_since(Instant::now());
                    if let Ok(fresh) = Client::connect(self.addr, limit.min(self.timeout)) {
                        let timeout = self.timeout;
                        *self = fresh;
                        self.timeout = timeout;
                    }
                }
            }
        };
        self.clamp_io_timeout(self.timeout);
        result
    }

    /// `ingest` a batch; returns the server's total tuple count.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn ingest(&mut self, rows: Vec<Vec<f64>>) -> io::Result<u64> {
        let response = self.expect_ok(&Request::Ingest { rows })?;
        Ok(response.get("total").and_then(Json::as_u64).unwrap_or(0))
    }

    /// [`Client::ingest`] with transient failures retried under `backoff`.
    ///
    /// # Errors
    /// As [`Client::request_with_retry`].
    pub fn ingest_with_retry(&mut self, rows: Vec<Vec<f64>>, backoff: &Backoff) -> io::Result<u64> {
        let response = self.request_with_retry(&Request::Ingest { rows }, backoff)?;
        Ok(response.get("total").and_then(Json::as_u64).unwrap_or(0))
    }

    /// `query`; returns the decoded response object.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn query(&mut self, query: RuleQuery) -> io::Result<Json> {
        self.expect_ok(&Request::Query { query })
    }

    /// [`Client::query`] with transient failures retried under `backoff`.
    ///
    /// # Errors
    /// As [`Client::request_with_retry`].
    pub fn query_with_retry(&mut self, query: RuleQuery, backoff: &Backoff) -> io::Result<Json> {
        self.request_with_retry(&Request::Query { query }, backoff)
    }

    /// `stats`; returns the decoded response object.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.expect_ok(&Request::Stats)
    }

    /// `metrics`; returns the decoded response object (the full `dar-obs`
    /// registry under `"registry"`).
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn metrics(&mut self) -> io::Result<Json> {
        self.expect_ok(&Request::Metrics)
    }

    /// `snapshot`; returns the decoded response object.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn snapshot(&mut self) -> io::Result<Json> {
        self.expect_ok(&Request::Snapshot)
    }

    /// `advance`: seals the open window explicitly (windowed servers
    /// only); returns the decoded response (`sealed`, `opened`,
    /// `retired`, `window_span`).
    ///
    /// # Errors
    /// I/O failures or a structured server error (`unsupported` on a
    /// non-windowed server).
    pub fn advance(&mut self) -> io::Result<Json> {
        self.expect_ok(&Request::Advance)
    }

    /// `shutdown`; returns once the server has acknowledged.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.expect_ok(&Request::Shutdown).map(|_| ())
    }

    /// `shard_ingest`: an idempotent ingest tagged with the coordinator's
    /// global batch sequence number. Returns `(applied, total)` — `applied`
    /// is `false` when the shard had already committed this `seq` (a
    /// retried delivery), in which case the batch was *not* re-applied.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn shard_ingest(&mut self, seq: u64, rows: Vec<Vec<f64>>) -> io::Result<(bool, u64)> {
        let response = self.expect_ok(&Request::ShardIngest { seq, rows })?;
        Ok(decode_shard_ingest(&response))
    }

    /// [`Client::shard_ingest`] with transient failures retried under
    /// `backoff`. Safe to retry precisely because the verb is idempotent:
    /// a duplicate delivery of `seq` acks without re-applying.
    ///
    /// # Errors
    /// As [`Client::request_with_retry`].
    pub fn shard_ingest_with_retry(
        &mut self,
        seq: u64,
        rows: Vec<Vec<f64>>,
        backoff: &Backoff,
    ) -> io::Result<(bool, u64)> {
        let response = self.request_with_retry(&Request::ShardIngest { seq, rows }, backoff)?;
        Ok(decode_shard_ingest(&response))
    }

    /// `pull_snapshot`: the shard's sealed engine snapshot. Returns
    /// `(epoch, tuples, sealed_bytes)`; the sealed body's footer carries
    /// the shard's last committed coordinator batch seq, verified on
    /// unseal. Current servers send the body base64-encoded under
    /// `snapshot_b64`; the pre-binary `snapshot` text key is still
    /// accepted.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn pull_snapshot(&mut self) -> io::Result<(u64, u64, Vec<u8>)> {
        let response = self.expect_ok(&Request::PullSnapshot)?;
        let epoch = response.get("epoch").and_then(Json::as_u64).unwrap_or(0);
        let tuples = response.get("tuples").and_then(Json::as_u64).unwrap_or(0);
        let sealed = match response.get("snapshot_b64").and_then(Json::as_str) {
            Some(b64) => crate::b64::decode(b64).map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("pull_snapshot body: {e}"))
            })?,
            None => response
                .get("snapshot")
                .and_then(Json::as_str)
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        "pull_snapshot response lacks snapshot_b64",
                    )
                })?
                .as_bytes()
                .to_vec(),
        };
        Ok((epoch, tuples, sealed))
    }

    /// `shard_stats`; returns the decoded response object (epoch, tuples,
    /// row width, degraded flag, last committed coordinator seq).
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn shard_stats(&mut self) -> io::Result<Json> {
        self.expect_ok(&Request::ShardStats)
    }

    /// `shard_rescan`: the SON verify pass — the shard replays its WAL
    /// against the coordinator's merged clusters and counts, per candidate
    /// rule, the rows matching every position. Returns `(rows_scanned,
    /// counts)` with `counts[i]` for `rules[i]`.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn shard_rescan(
        &mut self,
        clusters: &str,
        rules: &[Vec<usize>],
    ) -> io::Result<(u64, Vec<u64>)> {
        let request =
            Request::ShardRescan { clusters: clusters.to_string(), rules: rules.to_vec() };
        let response = self.expect_ok(&request)?;
        let rows_scanned = response.get("rows_scanned").and_then(Json::as_u64).unwrap_or(0);
        let counts = match response.get("counts") {
            Some(Json::Arr(items)) => items.iter().filter_map(Json::as_u64).collect(),
            _ => Vec::new(),
        };
        Ok((rows_scanned, counts))
    }

    /// Sends any [`Request`], mapping a non-`ok` response to a typed
    /// [`ServerError`] — the building block the verb helpers share, public
    /// so the cluster coordinator can drive shard verbs generically.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn expect_ok(&mut self, request: &Request) -> io::Result<Json> {
        let response = self.request(request)?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(response)
        } else {
            let code = response.get("error").and_then(Json::as_str).unwrap_or("unknown");
            let message = response.get("message").and_then(Json::as_str).unwrap_or("");
            Err(io::Error::other(ServerError { code: code.into(), message: message.into() }))
        }
    }

    /// `subscribe`: converts this connection into a live rule-churn
    /// [`Subscription`] (windowed servers only). The connection stops
    /// being request/response — the server pushes one newline-JSON
    /// `event` frame per window advance from here on, so the client is
    /// consumed. Pass `from_epoch` to resume after the given epoch (the
    /// server replays retained history, or sends a `resync` baseline
    /// frame when the gap exceeds it).
    ///
    /// # Errors
    /// I/O failures or a structured server error (`unsupported` on a
    /// non-windowed server).
    pub fn subscribe(
        mut self,
        from_epoch: Option<u64>,
        backoff: Backoff,
    ) -> io::Result<Subscription> {
        let (epoch, window_span) = self.subscribe_handshake(from_epoch)?;
        Ok(Subscription {
            addr: self.addr,
            timeout: self.timeout,
            reader: self.reader,
            backoff,
            // Resuming later from `from_epoch` (not the handshake epoch)
            // keeps any still-unread catch-up frames replayable.
            last_epoch: from_epoch.unwrap_or(epoch),
            window_span,
            reconnect_attempts: 0,
            lost: false,
        })
    }

    /// Sends the `subscribe` line and decodes the handshake, leaving the
    /// connection positioned at the event stream.
    fn subscribe_handshake(&mut self, from_epoch: Option<u64>) -> io::Result<SubscribeHandshake> {
        let response = self.expect_ok(&Request::Subscribe { from_epoch })?;
        let epoch = response.get("epoch").and_then(Json::as_u64).unwrap_or(0);
        Ok((epoch, decode_span(response.get("window_span"))))
    }
}

/// `(epoch, window_span)` from the `subscribe` handshake.
type SubscribeHandshake = (u64, Option<(u64, u64)>);

fn decode_span(value: Option<&Json>) -> Option<(u64, u64)> {
    match value {
        Some(Json::Arr(items)) if items.len() == 2 => {
            Some((items[0].as_u64()?, items[1].as_u64()?))
        }
        _ => None,
    }
}

/// A live rule-churn subscription: one `event` frame per window advance,
/// with `{added, dropped, epoch, window_span}` diffs in the server's
/// deterministic rule encoding.
///
/// The subscription self-heals: when the server cuts it (a `lagged` final
/// frame after its bounded queue overflowed) or the connection drops, the
/// next [`Subscription::next_event`] redials and resubscribes with
/// `from_epoch` set to the last epoch actually delivered, under the
/// bounded [`Backoff`] — so the caller sees a gapless event sequence (or
/// one `resync` baseline frame when the outage outlived the server's
/// retained history).
///
/// The self-healing is *bounded across calls*: the reconnect budget is
/// `backoff.attempts` consecutive failed redials, counted across
/// [`Subscription::next_event`] invocations and reset only when an event
/// is actually delivered. Once spent, the subscription is terminally
/// lost: the call (and every later call) returns a structured
/// `subscription-lost` [`ServerError`] instead of retrying forever
/// against a dead server.
pub struct Subscription {
    addr: SocketAddr,
    timeout: Duration,
    reader: BufReader<TcpStream>,
    backoff: Backoff,
    /// The resume point: the last epoch delivered to the caller (or the
    /// subscribe baseline before any event arrived).
    last_epoch: u64,
    window_span: Option<(u64, u64)>,
    /// Consecutive failed redials since the last delivered event —
    /// persists across `next_event` calls so a dead server cannot be
    /// retried indefinitely one call at a time.
    reconnect_attempts: u32,
    /// Terminal: the reconnect budget was exhausted.
    lost: bool,
}

impl Subscription {
    /// The last epoch delivered (the handshake baseline before any event).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// The live window horizon `(oldest seq, open seq)` as of the last
    /// frame.
    pub fn window_span(&self) -> Option<(u64, u64)> {
        self.window_span
    }

    /// Whether the reconnect budget has been exhausted — once true, every
    /// [`Subscription::next_event`] call fails fast with the structured
    /// `subscription-lost` error.
    pub fn is_lost(&self) -> bool {
        self.lost
    }

    /// Blocks for the next event frame, transparently reconnecting (and
    /// resuming from [`Subscription::last_epoch`]) on a lagged cut or a
    /// dropped connection.
    ///
    /// # Errors
    /// A read timeout (the feed idled past the client timeout — retrying
    /// is safe, nothing was lost), or — terminally — a structured
    /// `subscription-lost` [`ServerError`] once `backoff.attempts`
    /// consecutive reconnects have failed (across calls). After that the
    /// subscription never retries again; build a fresh one to resume.
    pub fn next_event(&mut self) -> io::Result<Json> {
        loop {
            if self.lost {
                return Err(self.lost_error());
            }
            let mut line = String::new();
            match self.reader.read_line(&mut line) {
                Ok(0) => {} // EOF: server shut down or cut us — reconnect
                Ok(_) => {
                    let trimmed = line.trim_end_matches('\n');
                    if trimmed.is_empty() {
                        continue;
                    }
                    let frame = json::parse(trimmed).map_err(|e| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("{e}: {trimmed}"))
                    })?;
                    if frame.get("ok").and_then(Json::as_bool) == Some(true) {
                        if let Some(epoch) = frame.get("epoch").and_then(Json::as_u64) {
                            self.last_epoch = epoch;
                        }
                        if let Some(span) = decode_span(frame.get("window_span")) {
                            self.window_span = Some(span);
                        }
                        self.reconnect_attempts = 0; // delivery refills the budget
                        return Ok(frame);
                    }
                    // A structured final frame (`lagged`) — fall through
                    // to resubscribe from the last delivered epoch.
                }
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    // An idle feed, not a failure: the caller may retry.
                    return Err(e);
                }
                Err(_) => {} // broken socket — reconnect
            }
            if self.reconnect_attempts >= self.backoff.attempts {
                self.lost = true;
                return Err(self.lost_error());
            }
            std::thread::sleep(self.backoff.delay(self.reconnect_attempts));
            self.reconnect_attempts += 1;
            // A failed redial just consumes the attempt; the next loop
            // iteration's read sees EOF-like state and retries.
            let _ = self.resubscribe();
        }
    }

    /// The terminal error for an exhausted reconnect budget — structured,
    /// so callers can match `ServerError::of(&e)` on `subscription-lost`.
    fn lost_error(&self) -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionAborted,
            ServerError {
                code: "subscription-lost".into(),
                message: format!(
                    "subscription to {} lost: {} consecutive reconnects failed (last delivered epoch {})",
                    self.addr, self.backoff.attempts, self.last_epoch
                ),
            },
        )
    }

    /// Redials and resubscribes from the last delivered epoch.
    fn resubscribe(&mut self) -> io::Result<()> {
        let mut client = Client::connect(self.addr, self.timeout)?;
        let (_, window_span) = client.subscribe_handshake(Some(self.last_epoch))?;
        self.reader = client.reader;
        self.window_span = window_span.or(self.window_span);
        Ok(())
    }
}

fn decode_shard_ingest(response: &Json) -> (bool, u64) {
    let applied = response.get("applied").and_then(Json::as_bool).unwrap_or(false);
    let total = response.get("total").and_then(Json::as_u64).unwrap_or(0);
    (applied, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_errors_survive_the_io_error_wrapper() {
        let inner = ServerError { code: "degraded".into(), message: "read-only".into() };
        let err = io::Error::other(inner.clone());
        let back = ServerError::of(&err).expect("downcast");
        assert_eq!(back, &inner);
        assert!(back.is_transient());
        assert!(!ServerError { code: "bad-query".into(), message: String::new() }.is_transient());
        assert!(ServerError::of(&io::Error::other("plain string")).is_none());
    }

    #[test]
    fn backoff_is_bounded_deterministic_and_jittered() {
        let b = Backoff { attempts: 8, base: Duration::from_millis(10), ..Backoff::default() };
        for attempt in 0..b.attempts {
            let d = b.delay(attempt);
            assert!(d <= b.cap, "attempt {attempt}: {d:?} exceeds cap");
            let exp = b.base.saturating_mul(1 << attempt).min(b.cap);
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} below half of {exp:?}");
            assert_eq!(d, b.delay(attempt), "same seed and attempt must repeat");
        }
        // Distinct seeds give distinct jitter streams (with overwhelming
        // probability for any particular attempt).
        let other = Backoff { seed: 1, ..b.clone() };
        assert!((0..8).any(|a| b.delay(a) != other.delay(a)));
    }
}
