//! A small blocking client for the newline-delimited JSON protocol —
//! used by the bench load generator, the CI smoke test, and anyone
//! scripting a `dar serve` instance from Rust.

use crate::json::{self, Json};
use crate::protocol::Request;
use mining::RuleQuery;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a `dar serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects with the given I/O timeouts.
    ///
    /// # Errors
    /// Connection/setup failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: BufWriter::new(stream) })
    }

    /// Sends one raw line and returns the raw response line — the
    /// byte-exact surface, for tests asserting byte-identical answers.
    ///
    /// # Errors
    /// I/O failures, or a server that hung up without responding.
    pub fn round_trip_line(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection"));
        }
        Ok(response.trim_end_matches('\n').to_string())
    }

    /// Sends a [`Request`] and returns the decoded response.
    ///
    /// # Errors
    /// I/O failures or an undecodable response.
    pub fn request(&mut self, request: &Request) -> io::Result<Json> {
        let line = self.round_trip_line(&request.to_json().encode())?;
        json::parse(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e}: {line}")))
    }

    /// `ingest` a batch; returns the server's total tuple count.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn ingest(&mut self, rows: Vec<Vec<f64>>) -> io::Result<u64> {
        let response = self.expect_ok(&Request::Ingest { rows })?;
        Ok(response.get("total").and_then(Json::as_u64).unwrap_or(0))
    }

    /// `query`; returns the decoded response object.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn query(&mut self, query: RuleQuery) -> io::Result<Json> {
        self.expect_ok(&Request::Query { query })
    }

    /// `stats`; returns the decoded response object.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.expect_ok(&Request::Stats)
    }

    /// `snapshot`; returns the decoded response object.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn snapshot(&mut self) -> io::Result<Json> {
        self.expect_ok(&Request::Snapshot)
    }

    /// `shutdown`; returns once the server has acknowledged.
    ///
    /// # Errors
    /// I/O failures or a structured server error.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.expect_ok(&Request::Shutdown).map(|_| ())
    }

    fn expect_ok(&mut self, request: &Request) -> io::Result<Json> {
        let response = self.request(request)?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(response)
        } else {
            let code = response.get("error").and_then(Json::as_str).unwrap_or("unknown");
            let message = response.get("message").and_then(Json::as_str).unwrap_or("");
            Err(io::Error::other(format!("server error {code}: {message}")))
        }
    }
}
