//! Standard base64 (RFC 4648, with padding) for carrying binary snapshot
//! bodies inside the JSON wire protocol, whose strings must be UTF-8.
//! Hand-rolled because the build environment is std-only.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `bytes` as padded standard base64.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let word = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(word >> 18) as usize & 63] as char);
        out.push(ALPHABET[(word >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { ALPHABET[(word >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { ALPHABET[word as usize & 63] as char } else { '=' });
    }
    out
}

fn sextet(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a') as u32 + 26),
        b'0'..=b'9' => Some((c - b'0') as u32 + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes padded standard base64. Rejects non-alphabet bytes, lengths
/// that are not a multiple of four, and misplaced padding.
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!("base64 length {} is not a multiple of 4", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err("misplaced base64 padding".into());
        }
        let mut word = 0u32;
        for &c in &chunk[..4 - pad] {
            word = (word << 6)
                | sextet(c).ok_or_else(|| format!("invalid base64 byte {:?}", c as char))?;
        }
        word <<= 6 * pad as u32;
        out.push((word >> 16) as u8);
        if pad < 2 {
            out.push((word >> 8) as u8);
        }
        if pad < 1 {
            out.push(word as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors_round_trip() {
        // RFC 4648 test vectors.
        for (plain, encoded) in [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(encode(plain.as_bytes()), encoded);
            assert_eq!(decode(encoded).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn arbitrary_bytes_round_trip() {
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&all)).unwrap(), all);
        for len in 0..32 {
            let v: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37).wrapping_add(11)).collect();
            assert_eq!(decode(&encode(&v)).unwrap(), v, "len {len}");
        }
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(decode("Zg=").is_err(), "length not a multiple of 4");
        assert!(decode("Z===").is_err(), "too much padding");
        assert!(decode("Zg==AAAA").is_err(), "padding mid-stream");
        assert!(decode("Zg==Zg==").is_err(), "padding mid-stream");
        assert!(decode("Zm 9").is_err(), "whitespace is not alphabet");
        assert!(decode("Zm\u{e9}A").is_err(), "non-ascii rejected");
    }
}
