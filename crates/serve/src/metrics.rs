//! Global observability handles for the serving layer (`dar_serve_*`).
//!
//! Per-verb request counters, latency histograms, and byte counters are
//! resolved once into a fixed table, so the per-request path is a table
//! scan over a dozen static strings plus relaxed atomics — no registry
//! lookup, no mutex.

use dar_obs::{global, Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// Verb labels with dedicated series. Unknown labels fold into `error`.
const VERBS: [&str; 14] = [
    "ingest",
    "query",
    "clusters",
    "stats",
    "snapshot",
    "shutdown",
    "metrics",
    "advance",
    "subscribe",
    "shard_ingest",
    "pull_snapshot",
    "shard_stats",
    "shard_rescan",
    "error",
];

/// One verb's metric handles.
pub(crate) struct VerbMetrics {
    name: &'static str,
    /// `dar_serve_requests_total{verb=…}`.
    pub requests: Counter,
    /// `dar_serve_request_ns{verb=…}`.
    pub request_ns: Histogram,
    /// `dar_serve_bytes_read_total{verb=…}`: request-line bytes received,
    /// attributed to the verb they decoded into.
    pub bytes_read: Counter,
    /// `dar_serve_bytes_written_total{verb=…}`: response-line bytes sent.
    pub bytes_written: Counter,
}

/// The serving-layer metric family.
pub(crate) struct ServeMetrics {
    /// `dar_serve_connections_total`: connections accepted.
    pub connections: Counter,
    /// `dar_serve_rejected_connections_total`: connections refused by the
    /// bounded accept queue.
    pub rejected_connections: Counter,
    /// `dar_serve_errors_total`: structured error responses sent.
    pub errors: Counter,
    /// `dar_serve_degraded`: 0/1 read-only mode flag.
    pub degraded: Gauge,
    /// The per-verb series, in [`VERBS`] order.
    verbs: [VerbMetrics; VERBS.len()],
}

impl ServeMetrics {
    /// The metric handles for a verb label.
    pub fn verb(&self, verb: &str) -> &VerbMetrics {
        self.verbs.iter().find(|v| v.name == verb).unwrap_or(&self.verbs[VERBS.len() - 1])
    }
}

/// The cached handles.
pub(crate) fn metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        ServeMetrics {
            connections: r.counter("dar_serve_connections_total"),
            rejected_connections: r.counter("dar_serve_rejected_connections_total"),
            errors: r.counter("dar_serve_errors_total"),
            degraded: r.gauge("dar_serve_degraded"),
            verbs: std::array::from_fn(|i| {
                let verb = VERBS[i];
                VerbMetrics {
                    name: verb,
                    requests: r.counter_with("dar_serve_requests_total", &[("verb", verb)]),
                    request_ns: r.histogram_with("dar_serve_request_ns", &[("verb", verb)]),
                    bytes_read: r.counter_with("dar_serve_bytes_read_total", &[("verb", verb)]),
                    bytes_written: r
                        .counter_with("dar_serve_bytes_written_total", &[("verb", verb)]),
                }
            }),
        }
    })
}
