//! Global observability handles for the serving layer (`dar_serve_*`).
//!
//! Per-verb request counters and latency histograms are resolved once
//! into a fixed table, so the per-request path is a table scan over eight
//! static strings plus relaxed atomics — no registry lookup, no mutex.

use dar_obs::{global, Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// Verb labels with dedicated series. Unknown labels fold into `error`.
const VERBS: [&str; 8] =
    ["ingest", "query", "clusters", "stats", "snapshot", "shutdown", "metrics", "error"];

/// The serving-layer metric family.
pub(crate) struct ServeMetrics {
    /// `dar_serve_connections_total`: connections accepted.
    pub connections: Counter,
    /// `dar_serve_rejected_connections_total`: connections refused by the
    /// bounded accept queue.
    pub rejected_connections: Counter,
    /// `dar_serve_errors_total`: structured error responses sent.
    pub errors: Counter,
    /// `dar_serve_degraded`: 0/1 read-only mode flag.
    pub degraded: Gauge,
    /// Per-verb `dar_serve_requests_total{verb=…}` and
    /// `dar_serve_request_ns{verb=…}`.
    verbs: [(&'static str, Counter, Histogram); VERBS.len()],
}

impl ServeMetrics {
    /// The counter/histogram pair for a verb label.
    pub fn verb(&self, verb: &str) -> (&Counter, &Histogram) {
        let entry = self
            .verbs
            .iter()
            .find(|(name, _, _)| *name == verb)
            .unwrap_or(&self.verbs[VERBS.len() - 1]);
        (&entry.1, &entry.2)
    }
}

/// The cached handles.
pub(crate) fn metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        ServeMetrics {
            connections: r.counter("dar_serve_connections_total"),
            rejected_connections: r.counter("dar_serve_rejected_connections_total"),
            errors: r.counter("dar_serve_errors_total"),
            degraded: r.gauge("dar_serve_degraded"),
            verbs: std::array::from_fn(|i| {
                let verb = VERBS[i];
                (
                    verb,
                    r.counter_with("dar_serve_requests_total", &[("verb", verb)]),
                    r.histogram_with("dar_serve_request_ns", &[("verb", verb)]),
                )
            }),
        }
    })
}
