//! The multi-threaded TCP server: a fixed worker pool behind a bounded
//! accept queue, serving the newline-delimited JSON protocol over a
//! [`SharedEngine`].
//!
//! Concurrency model (`std::net` + `std::thread` only):
//!
//! * one **acceptor** thread pushes accepted sockets into a bounded
//!   `sync_channel`; when the queue is full the connection is *refused
//!   with a structured error* rather than queued unboundedly
//!   (backpressure, counted in
//!   [`ServerStats::rejected_connections`](crate::ServerStats));
//! * `threads` **workers** pop connections and serve requests line by
//!   line under per-connection read/write timeouts — `query`/`stats`
//!   answer under the engine's read lock (cached Phase II), `ingest`/
//!   `snapshot` take the write lock;
//! * an optional **snapshotter** thread persists the epoch to disk every
//!   `snapshot_interval`;
//! * **graceful shutdown** via a shutdown pipe (an atomic flag plus a
//!   self-connection to unblock `accept`): triggered by
//!   [`ServerHandle::shutdown`] or the wire verb `shutdown`, it stops
//!   accepting, drains queued connections, joins every thread, closes the
//!   epoch, and writes a final snapshot.

use crate::churn::{ChurnFeed, SubscriptionRx};
use crate::durability::{persist_snapshot, Durability};
use crate::json::{self, Json};
use crate::protocol::{self, Request};
use crate::shared::SharedEngine;
use crate::stats::{ServerStats, StatsSnapshot};
use dar_durable::{DiskStorage, Storage};
use dar_stream::{EngineBackend, WindowedIngest};
use mining::RuleQuery;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker pool size.
    pub threads: usize,
    /// Bounded accept queue depth; a full queue refuses new connections
    /// with a structured `overloaded` error.
    pub queue_depth: usize,
    /// Per-connection read timeout (an idle client is disconnected).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Where `snapshot` requests, the periodic snapshotter, and the final
    /// shutdown snapshot write the epoch.
    pub snapshot_path: Option<PathBuf>,
    /// Periodic snapshot-to-disk interval (requires `snapshot_path`).
    pub snapshot_interval: Option<Duration>,
    /// Write-ahead log path. When set, every acknowledged ingest batch is
    /// appended (checksummed, fsynced) *before* the acknowledgement; a
    /// failed append flips the server to degraded read-only mode.
    pub wal_path: Option<PathBuf>,
    /// The storage backend the WAL and snapshot installs go through —
    /// [`DiskStorage`] in production, a fault-injecting double in tests.
    pub storage: Arc<dyn Storage>,
    /// Whether the wire verb `shutdown` may stop the server (on by
    /// default; operators driving the server from scripts need it).
    pub allow_remote_shutdown: bool,
    /// Optional Prometheus exposition address (e.g. `"127.0.0.1:9100"`).
    /// When set, a plain-TCP listener serves the global `dar-obs`
    /// registry in Prometheus text format to any scraper (or `nc`).
    pub metrics_addr: Option<String>,
    /// The server's default rule query: knobs a `query` request does not
    /// send fall back to these (set from CLI flags like `--measure` and
    /// `--top-k`), and rule-churn events mine and score the live horizon
    /// with them.
    pub base_query: RuleQuery,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            snapshot_path: None,
            snapshot_interval: None,
            wal_path: None,
            storage: Arc::new(DiskStorage),
            allow_remote_shutdown: true,
            metrics_addr: None,
            base_query: RuleQuery::default(),
        }
    }
}

/// The shutdown pipe: an atomic flag plus the listener's own address, so
/// `trigger` can unblock the acceptor's blocking `accept` with a
/// self-connection (the SIGINT-equivalent in a std-only server).
struct ShutdownSignal {
    flag: AtomicBool,
    addr: SocketAddr,
}

impl ShutdownSignal {
    fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    fn trigger(&self) {
        if self.flag.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        // Wake the acceptor out of accept(2).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

/// Everything a worker needs to serve one connection.
struct WorkerCtx {
    shared: Arc<SharedEngine>,
    stats: Arc<ServerStats>,
    shutdown: Arc<ShutdownSignal>,
    durability: Option<Arc<Durability>>,
    churn: Arc<ChurnFeed>,
    config: ServeConfig,
}

/// What a request line asks the connection loop to do after the response.
enum Action {
    /// Keep serving this connection.
    Continue,
    /// Trigger server shutdown (the `shutdown` verb).
    Shutdown,
    /// Hand the connection to the churn feed as a long-lived subscriber.
    Subscribe {
        /// The resume point from the `subscribe` request.
        from_epoch: Option<u64>,
    },
}

/// The running server's entry point.
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:7878"`, port 0 for ephemeral) and
    /// starts the acceptor, the worker pool, and (if configured) the
    /// snapshotter. Returns immediately with a handle; the server runs on
    /// background threads until [`ServerHandle::shutdown`] or a wire
    /// `shutdown` request.
    ///
    /// # Errors
    /// Propagates bind failures and unrepairable durability artifacts.
    ///
    /// Note: the engine passed in should already be recovered (see
    /// [`crate::recover_engine`] / [`crate::recover_backend`]); this
    /// constructor only reopens the durable store to position the WAL
    /// sequence counter. Accepts a plain [`dar_engine::DarEngine`], a sliding-window
    /// [`dar_stream::WindowedEngine`], or an [`EngineBackend`].
    pub fn start(
        engine: impl Into<EngineBackend>,
        addr: &str,
        config: ServeConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(SharedEngine::new(engine));
        let stats = Arc::new(ServerStats::default());
        let churn = Arc::new(ChurnFeed::new());
        let shutdown = Arc::new(ShutdownSignal { flag: AtomicBool::new(false), addr: local_addr });
        let durability = if config.snapshot_path.is_some() || config.wal_path.is_some() {
            Some(Arc::new(Durability::open(
                Arc::clone(&config.storage),
                config.snapshot_path.as_deref(),
                config.wal_path.as_deref(),
            )?))
        } else {
            None
        };

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(config.threads.max(1));
        for worker_id in 0..config.threads.max(1) {
            let rx = Arc::clone(&rx);
            let ctx = WorkerCtx {
                shared: Arc::clone(&shared),
                stats: Arc::clone(&stats),
                shutdown: Arc::clone(&shutdown),
                durability: durability.clone(),
                churn: Arc::clone(&churn),
                config: config.clone(),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("dar-serve-worker-{worker_id}"))
                    .spawn(move || worker_loop(&rx, &ctx))?,
            );
        }

        let acceptor = {
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let write_timeout = config.write_timeout;
            std::thread::Builder::new().name("dar-serve-acceptor".into()).spawn(move || {
                accept_loop(&listener, &tx, &stats, &shutdown, write_timeout);
                // Dropping `tx` here lets workers drain the queue and exit.
            })?
        };

        let snapshotter = match (&durability, &config.snapshot_path, config.snapshot_interval) {
            (Some(durability), Some(_), Some(interval)) => {
                let shared = Arc::clone(&shared);
                let stats = Arc::clone(&stats);
                let shutdown = Arc::clone(&shutdown);
                let durability = Arc::clone(durability);
                Some(std::thread::Builder::new().name("dar-serve-snapshotter".into()).spawn(
                    move || {
                        let mut last = Instant::now();
                        while !shutdown.is_set() {
                            std::thread::sleep(Duration::from_millis(25));
                            if last.elapsed() >= interval {
                                let _ = persist_snapshot(&shared, &durability, &stats);
                                last = Instant::now();
                            }
                        }
                    },
                )?)
            }
            _ => None,
        };

        let exposer = match &config.metrics_addr {
            Some(metrics_addr) => Some(dar_obs::MetricsExposer::bind(metrics_addr.as_str())?),
            None => None,
        };

        Ok(ServerHandle {
            addr: local_addr,
            shared,
            stats,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            snapshotter,
            durability,
            churn,
            snapshot_path: config.snapshot_path,
            exposer,
        })
    }
}

/// A handle to a running server: its address, shared state for
/// inspection, and the shutdown/join lifecycle.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<SharedEngine>,
    stats: Arc<ServerStats>,
    shutdown: Arc<ShutdownSignal>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    snapshotter: Option<JoinHandle<()>>,
    durability: Option<Arc<Durability>>,
    churn: Arc<ChurnFeed>,
    snapshot_path: Option<PathBuf>,
    exposer: Option<dar_obs::MetricsExposer>,
}

/// What a graceful shutdown left behind.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Final server counters.
    pub stats: StatsSnapshot,
    /// Where the final epoch snapshot was written, if a path was
    /// configured.
    pub snapshot_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine, for in-process inspection alongside the server.
    pub fn shared(&self) -> &Arc<SharedEngine> {
        &self.shared
    }

    /// A point-in-time copy of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// This server's latency histogram — the exact population the `stats`
    /// verb derives p50/p99 from.
    pub fn latency_snapshot(&self) -> dar_obs::HistogramSnapshot {
        self.stats.latency_snapshot()
    }

    /// Where the Prometheus exposition listener is bound, if enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.exposer.as_ref().map(dar_obs::MetricsExposer::addr)
    }

    /// Triggers graceful shutdown (idempotent): stop accepting, drain the
    /// queue, let in-flight connections finish.
    pub fn shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Waits for every thread to exit, closes the epoch, writes the final
    /// snapshot (if a path is configured), and returns the final
    /// counters. Call [`ServerHandle::shutdown`] first — or let a wire
    /// `shutdown` request arrive — or this blocks until one happens.
    ///
    /// # Errors
    /// Propagates final-snapshot I/O failures (the threads are already
    /// down by then).
    pub fn join(mut self) -> io::Result<ServeSummary> {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(snapshotter) = self.snapshotter.take() {
            let _ = snapshotter.join();
        }
        // Disconnect every churn subscriber and join their threads.
        self.churn.close();
        if let Some(mut exposer) = self.exposer.take() {
            exposer.shutdown();
        }
        if self.snapshot_path.is_some() {
            if let Some(durability) = &self.durability {
                persist_snapshot(&self.shared, durability, &self.stats)?;
            }
        }
        Ok(ServeSummary { stats: self.stats.snapshot(), snapshot_path: self.snapshot_path })
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &std::sync::mpsc::SyncSender<TcpStream>,
    stats: &ServerStats,
    shutdown: &ShutdownSignal,
    write_timeout: Duration,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.is_set() {
                    break;
                }
                continue;
            }
        };
        if shutdown.is_set() {
            break; // the wake-up self-connection (or a late client)
        }
        match tx.try_send(stream) {
            Ok(()) => {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                crate::metrics::metrics().connections.inc();
            }
            Err(TrySendError::Full(stream)) => {
                stats.rejected_connections.fetch_add(1, Ordering::Relaxed);
                crate::metrics::metrics().rejected_connections.inc();
                refuse(stream, write_timeout);
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

/// Backpressure: tell the refused client why, then hang up.
fn refuse(stream: TcpStream, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let mut writer = BufWriter::new(stream);
    let line = protocol::error_response("overloaded", "accept queue is full, retry later").encode();
    let _ = writeln!(writer, "{line}");
    let _ = writer.flush();
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, ctx: &WorkerCtx) {
    loop {
        // Hold the lock only for the pop, never while serving.
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match stream {
            Ok(stream) => {
                let _ = serve_connection(stream, ctx);
            }
            Err(_) => break, // acceptor gone and queue drained
        }
    }
}

fn serve_connection(stream: TcpStream, ctx: &WorkerCtx) -> io::Result<()> {
    stream.set_read_timeout(Some(ctx.config.read_timeout))?;
    stream.set_write_timeout(Some(ctx.config.write_timeout))?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // timeout, reset, or EOF mid-line
        };
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let (response, verb, action) = handle_line(&line, ctx);
        if let Action::Subscribe { from_epoch } = action {
            // The connection stops being request/response: register with
            // the churn feed (handshake + catch-up under the feed's lock,
            // so no event falls in between), then hand the socket to a
            // dedicated pusher thread and free this worker.
            let subscription = ctx.churn.subscribe(from_epoch);
            let handshake =
                protocol::subscribe_response(subscription.epoch, subscription.window_span).encode();
            writeln!(writer, "{handshake}")?;
            writer.flush()?;
            ctx.stats.record_latency(verb, started.elapsed());
            ctx.stats.record_io(verb, line.len() as u64 + 1, handshake.len() as u64 + 1);
            let handle = std::thread::Builder::new()
                .name("dar-serve-subscriber".into())
                .spawn(move || subscriber_loop(writer, subscription))?;
            ctx.churn.track(handle);
            return Ok(());
        }
        let encoded = response.encode();
        writeln!(writer, "{encoded}")?;
        writer.flush()?;
        ctx.stats.record_latency(verb, started.elapsed());
        // +1 on each side for the newline framing the codec strips/adds.
        ctx.stats.record_io(verb, line.len() as u64 + 1, encoded.len() as u64 + 1);
        if matches!(action, Action::Shutdown) {
            ctx.shutdown.trigger();
            break;
        }
    }
    Ok(())
}

/// The long-lived half of a `subscribe` connection: pushes event lines as
/// the feed delivers them; a disconnect means either a server shutdown
/// (hang up silently) or a lagged cut (write the structured final frame
/// first). A client that stopped reading fails the write and is reaped by
/// the publisher on its next fan-out.
fn subscriber_loop(mut writer: BufWriter<TcpStream>, subscription: SubscriptionRx) {
    loop {
        match subscription.rx.recv() {
            Ok(line) => {
                if writeln!(writer, "{line}").and_then(|()| writer.flush()).is_err() {
                    return;
                }
            }
            Err(_) => {
                if subscription.cut.is_lagged() {
                    let line = protocol::lagged_frame(subscription.cut.epoch()).encode();
                    let _ = writeln!(writer, "{line}");
                    let _ = writer.flush();
                }
                return;
            }
        }
    }
}

/// Dispatches one request line; returns the response, the verb label the
/// request's latency is recorded under (`"error"` when it never resolved
/// to a verb), and what the connection loop should do after the response
/// is written.
fn handle_line(line: &str, ctx: &WorkerCtx) -> (Json, &'static str, Action) {
    let request = match json::parse(line) {
        Ok(value) => match Request::from_json_with(&value, &ctx.config.base_query) {
            Ok(request) => request,
            Err(message) => {
                return (error(ctx, "bad-request", &message), "error", Action::Continue)
            }
        },
        Err(e) => return (error(ctx, "bad-json", &e.to_string()), "error", Action::Continue),
    };
    let verb = match &request {
        Request::Ingest { .. } => "ingest",
        Request::Query { .. } => "query",
        Request::Clusters => "clusters",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Snapshot => "snapshot",
        Request::Shutdown => "shutdown",
        Request::Advance => "advance",
        Request::Subscribe { .. } => "subscribe",
        Request::ShardIngest { .. } => "shard_ingest",
        Request::PullSnapshot => "pull_snapshot",
        Request::ShardStats => "shard_stats",
        Request::ShardRescan { .. } => "shard_rescan",
    };
    let count = |counter: &std::sync::atomic::AtomicU64| {
        counter.fetch_add(1, Ordering::Relaxed);
    };
    let (response, action) = match request {
        Request::Ingest { rows } => match commit_batch(ctx, &rows) {
            Ok((total, _)) => {
                count(&ctx.stats.ingest_requests);
                (protocol::ingest_response(rows.len() as u64, total), Action::Continue)
            }
            Err(response) => (response, Action::Continue),
        },
        Request::Advance => match advance_window(ctx) {
            Ok(response) => {
                count(&ctx.stats.advance_requests);
                (response, Action::Continue)
            }
            Err(response) => (response, Action::Continue),
        },
        Request::Subscribe { from_epoch } => {
            if ctx.shared.is_windowed() {
                count(&ctx.stats.subscribe_requests);
                // The handshake is written by the connection loop, under
                // the feed's lock, so no event can slip in between.
                (Json::Null, Action::Subscribe { from_epoch })
            } else {
                (
                    error(
                        ctx,
                        "unsupported",
                        "subscriptions require a windowed server (--window-batches)",
                    ),
                    Action::Continue,
                )
            }
        }
        Request::ShardIngest { seq, rows } => {
            count(&ctx.stats.shard_ingest_requests);
            // Duplicate suppression: the coordinator retries at-least-once,
            // so a sequence at or below the watermark was already applied
            // (and, when a WAL is configured, committed) — acknowledge it
            // without touching the engine.
            if seq <= ctx.stats.shard_last_seq.load(Ordering::SeqCst) {
                count(&ctx.stats.shard_dup_batches);
                let total = ctx.shared.tuples();
                (
                    protocol::shard_ingest_response(seq, false, rows.len() as u64, total),
                    Action::Continue,
                )
            } else {
                match commit_batch(ctx, &rows) {
                    Ok((total, _)) => {
                        ctx.stats.shard_last_seq.fetch_max(seq, Ordering::SeqCst);
                        (
                            protocol::shard_ingest_response(seq, true, rows.len() as u64, total),
                            Action::Continue,
                        )
                    }
                    Err(response) => (response, Action::Continue),
                }
            }
        }
        Request::PullSnapshot => match ctx.shared.pull_snapshot() {
            Ok((bytes, epoch, tuples)) => {
                count(&ctx.stats.pull_snapshot_requests);
                let sealed = dar_durable::seal_bytes(
                    &bytes,
                    ctx.stats.shard_last_seq.load(Ordering::SeqCst),
                );
                (protocol::pull_snapshot_response(epoch, tuples, &sealed), Action::Continue)
            }
            Err(e) => (error(ctx, "snapshot", &e.to_string()), Action::Continue),
        },
        Request::ShardStats => {
            count(&ctx.stats.stats_requests);
            let (epoch, tuples, width) = ctx.shared.meta();
            (
                protocol::shard_stats_response(
                    epoch,
                    tuples,
                    width,
                    ctx.stats.is_degraded(),
                    ctx.stats.shard_last_seq.load(Ordering::SeqCst),
                ),
                Action::Continue,
            )
        }
        Request::ShardRescan { clusters, rules } => match shard_rescan(ctx, &clusters, &rules) {
            Ok(response) => {
                count(&ctx.stats.shard_rescan_requests);
                (response, Action::Continue)
            }
            Err((code, message)) => (error(ctx, code, &message), Action::Continue),
        },
        Request::Query { query } => match ctx.shared.query(&query) {
            Ok(outcome) => {
                count(&ctx.stats.query_requests);
                (protocol::query_response(&outcome), Action::Continue)
            }
            Err(e) => (error(ctx, "bad-query", &e.to_string()), Action::Continue),
        },
        Request::Clusters => {
            count(&ctx.stats.clusters_requests);
            let (epoch, clusters) = ctx.shared.clusters();
            (protocol::clusters_response(epoch, &clusters), Action::Continue)
        }
        Request::Metrics => {
            count(&ctx.stats.metrics_requests);
            (protocol::metrics_response(), Action::Continue)
        }
        Request::Stats => {
            count(&ctx.stats.stats_requests);
            let (engine_stats, read_hits) = ctx.shared.stats();
            let response = Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("verb", Json::Str("stats".into())),
                ("server", ctx.stats.snapshot().to_json()),
                ("engine", protocol::engine_stats_json(&engine_stats, read_hits)),
            ]);
            (response, Action::Continue)
        }
        Request::Snapshot => match (&ctx.durability, &ctx.config.snapshot_path) {
            (Some(durability), Some(path)) => {
                match persist_snapshot(&ctx.shared, durability, &ctx.stats) {
                    Ok((epoch, tuples)) => {
                        count(&ctx.stats.snapshot_requests);
                        let shown = path.display().to_string();
                        (protocol::snapshot_response(epoch, tuples, Some(&shown)), Action::Continue)
                    }
                    Err(e) => (error(ctx, "io", &e.to_string()), Action::Continue),
                }
            }
            _ => match ctx.shared.snapshot() {
                Ok((_, epoch, tuples)) => {
                    count(&ctx.stats.snapshot_requests);
                    (protocol::snapshot_response(epoch, tuples, None), Action::Continue)
                }
                Err(e) => (error(ctx, "snapshot", &e.to_string()), Action::Continue),
            },
        },
        Request::Shutdown => {
            if ctx.config.allow_remote_shutdown {
                count(&ctx.stats.shutdown_requests);
                (protocol::shutdown_response(), Action::Shutdown)
            } else {
                (error(ctx, "forbidden", "remote shutdown is disabled"), Action::Continue)
            }
        }
    };
    (response, verb, action)
}

/// The shared writer-path commit protocol for `ingest` and
/// `shard_ingest`: refuse in degraded mode, apply to the engine under
/// store-before-engine lock order, append to the WAL, and acknowledge
/// only after the append. A windowed backend's batches are logged as
/// *tagged* frames carrying the window sequence they landed in, so
/// recovery rebuilds the ring exactly; a batch that sealed a window also
/// publishes rule churn to subscribers (after the store lock drops).
/// Returns the engine's post-batch tuple total plus the window movement,
/// or the structured error response to send instead.
fn commit_batch(ctx: &WorkerCtx, rows: &[Vec<f64>]) -> Result<(u64, Option<WindowedIngest>), Json> {
    if ctx.stats.is_degraded() {
        return Err(error(
            ctx,
            "degraded",
            "write-ahead log unavailable; serving reads only — \
             restart with healthy storage to resume ingest",
        ));
    }
    // Store lock before engine lock: WAL commit order must equal engine
    // apply order, or recovery replays a different history than the one
    // that was acknowledged.
    let mut store =
        ctx.durability.as_ref().filter(|_| ctx.config.wal_path.is_some()).map(|d| d.lock());
    let (total, windowed) = match ctx.shared.ingest(rows) {
        Ok(outcome) => outcome,
        Err(e) => return Err(error(ctx, "rejected", &e.to_string())),
    };
    if let Some(store) = store.as_deref_mut() {
        // Apply-then-log: acknowledge only once the batch is both
        // in memory and on the log.
        let logged = match &windowed {
            Some(w) => store.log_tagged_batch(w.window_seq, rows),
            None => store.log_batch(rows),
        };
        if let Err(e) = logged {
            ctx.stats.wal_append_failures.fetch_add(1, Ordering::Relaxed);
            ctx.stats.set_degraded();
            return Err(error(
                ctx,
                "degraded",
                &format!(
                    "batch applied in memory but not committed to the \
                     write-ahead log ({e}); entering read-only mode"
                ),
            ));
        }
        ctx.stats.wal_appends.fetch_add(1, Ordering::Relaxed);
    }
    drop(store);
    if windowed.as_ref().is_some_and(|w| w.advanced) {
        publish_churn(ctx);
    }
    Ok((total, windowed))
}

/// The `advance` verb: seal the open window explicitly (windowed backend
/// only), log an empty tagged frame as the advance marker so recovery
/// replays the seal at the same point in the batch order, and publish the
/// resulting rule churn.
fn advance_window(ctx: &WorkerCtx) -> Result<Json, Json> {
    if !ctx.shared.is_windowed() {
        return Err(error(
            ctx,
            "unsupported",
            "advance requires a windowed server (--window-batches)",
        ));
    }
    if ctx.stats.is_degraded() {
        return Err(error(
            ctx,
            "degraded",
            "write-ahead log unavailable; serving reads only — \
             restart with healthy storage to resume ingest",
        ));
    }
    // Same store-before-engine order as commit_batch: the advance marker
    // must land in the log exactly where the seal happened.
    let mut store =
        ctx.durability.as_ref().filter(|_| ctx.config.wal_path.is_some()).map(|d| d.lock());
    let outcome = match ctx.shared.advance() {
        Ok(outcome) => outcome,
        Err(e) => return Err(error(ctx, "rejected", &e.to_string())),
    };
    if let Some(store) = store.as_deref_mut() {
        // An empty frame tagged with the freshly-opened window: replay
        // fast-forwards `open_seq` past the sealed window and ingests
        // nothing.
        if let Err(e) = store.log_tagged_batch(outcome.opened_seq, &[]) {
            ctx.stats.wal_append_failures.fetch_add(1, Ordering::Relaxed);
            ctx.stats.set_degraded();
            return Err(error(
                ctx,
                "degraded",
                &format!(
                    "window advanced in memory but not committed to the \
                     write-ahead log ({e}); entering read-only mode"
                ),
            ));
        }
        ctx.stats.wal_appends.fetch_add(1, Ordering::Relaxed);
    }
    drop(store);
    publish_churn(ctx);
    let span = ctx.shared.window_span().unwrap_or((0, outcome.opened_seq));
    Ok(protocol::advance_response(
        outcome.sealed_seq,
        outcome.opened_seq,
        outcome.retired_seq,
        span,
    ))
}

/// Mines the live horizon at the server's base query and hands the
/// encoded rule set to the churn feed, which diffs it against the
/// previous epoch and fans events out to subscribers. Each event rule
/// carries its value under the base query's measure, so downstream
/// consumers can filter on quality without re-querying. Called after a
/// window seal, with no locks held — the query takes the engine lock,
/// the feed its own.
fn publish_churn(ctx: &WorkerCtx) {
    let Ok(outcome) = ctx.shared.query(&ctx.config.base_query) else {
        return; // a failed base query leaves subscribers at the old epoch
    };
    let rules: Vec<String> = outcome
        .rules
        .iter()
        .zip(&outcome.values)
        .map(|(rule, &value)| protocol::rule_json(rule, value).encode())
        .collect();
    ctx.churn.publish(outcome.epoch, ctx.shared.window_span(), rules);
}

/// The `shard_rescan` verb: re-read this shard's write-ahead log, assign
/// every retained tuple to its nearest coordinator-supplied cluster per
/// set, and count the tuples matching every position of each rule. The
/// scan is exact over the rows the WAL retains; `rows_scanned` lets the
/// coordinator detect a shard whose WAL no longer covers its whole
/// history (e.g. pruned by a snapshot install).
fn shard_rescan(
    ctx: &WorkerCtx,
    clusters: &str,
    rules: &[Vec<usize>],
) -> Result<Json, (&'static str, String)> {
    let Some(wal_path) = &ctx.config.wal_path else {
        return Err(("no-wal", "shard_rescan needs a write-ahead log to re-read".into()));
    };
    let pool = dar_par::ThreadPool::resolve(ctx.shared.engine_threads());
    // Base64 persist-v2 is the wire format; raw v1 text (which contains
    // spaces, so it can never decode as base64) is the legacy fallback.
    let clusters = match crate::b64::decode(clusters) {
        Ok(bytes) => mining::persist::decode_clusters(&bytes, &pool)
            .map_err(|e| ("bad-request", format!("clusters: {e}")))?,
        Err(_) => mining::persist::read_clusters(clusters)
            .map_err(|e| ("bad-request", format!("clusters: {e}")))?,
    };
    for (i, rule) in rules.iter().enumerate() {
        if let Some(&pos) = rule.iter().find(|&&pos| pos >= clusters.len()) {
            return Err((
                "bad-request",
                format!("rule {i} references cluster {pos} of {}", clusters.len()),
            ));
        }
    }
    let (records, _) = dar_durable::wal::read_records(&*ctx.config.storage, wal_path)
        .map_err(|e| ("io", e.to_string()))?;
    let partitioning = ctx.shared.partitioning();
    let width =
        partitioning.sets().iter().flat_map(|s| s.attrs.iter()).copied().max().map_or(0, |m| m + 1);
    let mut builder = dar_core::RelationBuilder::new(dar_core::Schema::interval_attrs(width));
    for record in &records {
        let (_, rows) = dar_durable::decode_frame(&record.body)
            .map_err(|e| ("io", format!("WAL record {}: {e}", record.seq)))?;
        for row in &rows {
            builder.push_row(row).map_err(|e| ("io", format!("WAL record {}: {e}", record.seq)))?;
        }
    }
    let relation = builder.finish();
    // Each rule re-shaped as a candidate `Dar` (only the positions
    // matter to the rescan); degree/support are placeholders.
    let candidates: Vec<mining::Dar> = rules
        .iter()
        .map(|positions| mining::Dar {
            antecedent: positions.clone(),
            consequent: Vec::new(),
            degree: 0.0,
            min_cluster_support: 0,
        })
        .collect();
    let counts = mining::pipeline::rescan_frequencies_pooled(
        &relation,
        &partitioning,
        &clusters,
        &candidates,
        &pool,
    );
    Ok(protocol::shard_rescan_response(relation.len() as u64, &counts))
}

fn error(ctx: &WorkerCtx, code: &str, message: &str) -> Json {
    ctx.stats.error_responses.fetch_add(1, Ordering::Relaxed);
    crate::metrics::metrics().errors.inc();
    protocol::error_response(code, message)
}
