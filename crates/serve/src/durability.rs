//! Crash-safety wiring between the server and `dar-durable`.
//!
//! The server's commit protocol: apply the batch to the engine, append it
//! to the WAL, and acknowledge only after the append succeeds. If the
//! append fails, the server flips to a sticky *degraded* (read-only) mode
//! — queries keep being served from memory, but further ingest is refused
//! with a structured `degraded` error, because acknowledging writes the
//! log cannot hold would silently lose them on the next crash.
//!
//! Lock ordering: the durable store's mutex is acquired **before** the
//! engine's `RwLock` on every path that touches both (ingest and
//! snapshot-install). That serializes WAL order with engine apply order —
//! the recovered replay sequence is exactly the acknowledged sequence —
//! and makes deadlock impossible by construction.

use crate::shared::SharedEngine;
use crate::stats::ServerStats;
use dar_durable::{DurableStore, RecoveryReport, Storage};
use dar_engine::DarEngine;
use dar_stream::EngineBackend;
use std::io;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};

/// The server's handle on the durable artifacts: the [`DurableStore`]
/// under the mutex that defines the store-before-engine lock order.
pub struct Durability {
    store: Mutex<DurableStore>,
}

impl Durability {
    /// Opens the durable store for the given paths. The recovered state is
    /// discarded — callers recover the engine separately (see
    /// [`recover_engine`]) before the server starts; this open only
    /// re-derives the next WAL sequence number from disk.
    ///
    /// # Errors
    /// Unreadable/unrepairable artifacts, as [`DurableStore::open`].
    pub fn open(
        storage: Arc<dyn Storage>,
        snapshot_path: Option<&Path>,
        wal_path: Option<&Path>,
    ) -> io::Result<Durability> {
        let (store, _) = DurableStore::open(
            storage,
            snapshot_path.map(Path::to_path_buf),
            wal_path.map(Path::to_path_buf),
        )
        .map_err(io::Error::other)?;
        Ok(Durability { store: Mutex::new(store) })
    }

    /// Locks the store. Callers must take this lock *before* any engine
    /// lock they intend to hold concurrently.
    pub fn lock(&self) -> MutexGuard<'_, DurableStore> {
        self.store.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Recovers an engine from the durable artifacts at boot: loads the
/// newest verifiable snapshot (falling back past corrupt ones), restores
/// it — or keeps `fresh` when no snapshot survives — and replays the WAL
/// suffix. Returns the recovered engine and a report of what was found.
///
/// # Errors
/// Unrepairable artifacts, an unparseable (but checksum-valid) snapshot,
/// or replay failures — all conditions where silently starting empty
/// would masquerade as data loss.
pub fn recover_engine(
    fresh: DarEngine,
    storage: Arc<dyn Storage>,
    snapshot_path: Option<&Path>,
    wal_path: Option<&Path>,
) -> io::Result<(DarEngine, RecoveryReport)> {
    let (_, recovered) = DurableStore::open(
        storage,
        snapshot_path.map(Path::to_path_buf),
        wal_path.map(Path::to_path_buf),
    )
    .map_err(io::Error::other)?;
    let config = fresh.config().clone();
    let mut engine = match &recovered.snapshot {
        Some(body) => DarEngine::restore(body, config)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        None => fresh,
    };
    engine
        .replay_wal(&recovered.batches)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((engine, recovered.report))
}

/// Recovers an [`EngineBackend`] from the durable artifacts at boot —
/// the windowed-aware sibling of [`recover_engine`]. The snapshot header
/// decides the variant (a `dar-stream` body restores the window ring;
/// anything else the classic engine), falling back to `fresh` when no
/// snapshot survives. The WAL suffix is then replayed *frame by frame*:
/// tagged frames fast-forward the window ring to the sequence they carry
/// (empty tagged frames are explicit-advance markers), so a crash-restart
/// rebuilds the exact ring the acknowledged history produced.
///
/// # Errors
/// Unrepairable artifacts, an unparseable (but checksum-valid) snapshot,
/// a snapshot variant mismatching `fresh`'s window configuration, or
/// replay failures.
pub fn recover_backend(
    fresh: EngineBackend,
    storage: Arc<dyn Storage>,
    snapshot_path: Option<&Path>,
    wal_path: Option<&Path>,
) -> io::Result<(EngineBackend, RecoveryReport)> {
    let (_, recovered) = DurableStore::open(
        storage,
        snapshot_path.map(Path::to_path_buf),
        wal_path.map(Path::to_path_buf),
    )
    .map_err(io::Error::other)?;
    let config = fresh.config().clone();
    let was_windowed = fresh.is_windowed();
    let mut backend = match &recovered.snapshot {
        Some(body) => {
            let restored = EngineBackend::restore(body, config)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if restored.is_windowed() != was_windowed {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "snapshot is a {} engine but the server was configured {} — \
                         match --window-batches to the on-disk state",
                        if restored.is_windowed() { "windowed" } else { "static" },
                        if was_windowed { "windowed" } else { "static" },
                    ),
                ));
            }
            restored
        }
        None => fresh,
    };
    for (tag, rows) in &recovered.frames {
        backend
            .replay_frame(*tag, rows)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    }
    Ok((backend, recovered.report))
}

/// Closes the current epoch and installs it through the atomic snapshot
/// protocol, returning `(epoch, tuples)`. Counts the outcome in
/// `snapshots_written` / `snapshot_failures`.
///
/// # Errors
/// Serialization or install failures; the previous good snapshot (and the
/// WAL records it needs) remain untouched on disk.
pub fn persist_snapshot(
    shared: &SharedEngine,
    durability: &Durability,
    stats: &ServerStats,
) -> io::Result<(u64, u64)> {
    // Store lock before engine lock — same order as the ingest path.
    let mut store = durability.lock();
    let outcome = (|| {
        let (text, epoch, tuples) = shared
            .snapshot()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        store.install_snapshot(&text).map_err(io::Error::other)?;
        Ok((epoch, tuples))
    })();
    match &outcome {
        Ok(_) => stats.snapshots_written.fetch_add(1, Ordering::Relaxed),
        Err(_) => stats.snapshot_failures.fetch_add(1, Ordering::Relaxed),
    };
    outcome
}
