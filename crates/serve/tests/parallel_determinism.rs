//! Cross-thread-count determinism — the PR's acceptance bar.
//!
//! The engine's data-parallel regions (Phase I batch ingest fan-out,
//! Phase II graph build and clique enumeration) must be *byte-identical*
//! to the serial path at every worker count: same rules, same order,
//! same persisted artifact bytes. This test mines a WBCD-shaped
//! relation through a long-lived [`dar_engine::DarEngine`] configured
//! with `threads` ∈ {1, 2, 4, 8} and compares the full wire/persist
//! encoding of the rule set produced by the deterministic
//! [`dar_serve::json`] codec — any divergence in rule content, ordering,
//! degree, or support flips a byte.

use birch::BirchConfig;
use dar_core::{Metric, Partitioning, Relation};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::protocol::query_response;
use datagen::wbcd::wbcd_relation;
use mining::{DensitySpec, RuleQuery};

const TUPLES: usize = 4_000;
const BATCH: usize = 500;

fn wbcd_engine_config(threads: usize) -> EngineConfig {
    let mut config = EngineConfig {
        min_support_frac: 0.03,
        max_cliques: 10_000,
        threads,
        ..EngineConfig::default()
    };
    config.birch =
        BirchConfig { initial_threshold: 0.0, ..BirchConfig::with_total_budget(5 << 20, 30) };
    config
}

fn wbcd_query() -> RuleQuery {
    RuleQuery {
        density: DensitySpec::Auto { factor: 4.0 },
        max_antecedent: 2,
        max_consequent: 1,
        max_pair_work: 1_000_000,
        ..RuleQuery::default()
    }
}

/// Ingests the relation batch-by-batch at the given worker count and
/// returns the deterministic JSON encoding of the queried rule set.
fn encoded_rules_at(threads: usize, relation: &Relation, partitioning: &Partitioning) -> String {
    let mut engine =
        DarEngine::new(partitioning.clone(), wbcd_engine_config(threads)).expect("valid config");
    let rows: Vec<Vec<f64>> = (0..relation.len()).map(|r| relation.row(r)).collect();
    for batch in rows.chunks(BATCH) {
        engine.ingest(batch).expect("ingest");
    }
    let outcome = engine.query(&wbcd_query()).expect("query");
    query_response(&outcome).encode()
}

#[test]
fn rule_artifacts_are_byte_identical_across_thread_counts() {
    let relation = wbcd_relation(TUPLES, 0.1, 20260707);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);

    let serial = encoded_rules_at(1, &relation, &partitioning);
    // Sanity: the workload actually mines rules — an empty rule set would
    // make the equality below vacuous.
    assert!(serial.contains("\"antecedent\""), "expected rules, got: {serial}");

    for threads in [2, 4, 8] {
        let parallel = encoded_rules_at(threads, &relation, &partitioning);
        assert_eq!(serial, parallel, "rule artifact diverged from serial at threads={threads}");
    }
}
