//! Concurrent-access contract of [`SharedEngine`]: N reader threads
//! hammer re-tuned `RuleQuery`s while a writer ingests batches. The final
//! answer must equal a fresh one-shot engine over the concatenated data,
//! readers must never observe a torn epoch (every outcome is internally
//! consistent), and the shared epoch must show cache hits.

use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::SharedEngine;
use mining::RuleQuery;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let k = i + offset;
            let jitter = (k % 9) as f64 * 0.01;
            match k % 2 {
                0 => vec![jitter, 100.0 + jitter, 5.0 + jitter * 0.1],
                _ => vec![50.0 + jitter, 200.0 + jitter, 9.0 + jitter * 0.1],
            }
        })
        .collect()
}

fn config() -> (Partitioning, EngineConfig) {
    let schema = Schema::interval_attrs(3);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.1;
    (partitioning, config)
}

#[test]
fn readers_and_writer_race_without_diverging_from_one_shot_mining() {
    const READERS: usize = 6;
    const BATCHES: usize = 5;
    const BATCH_SIZE: usize = 40;

    let (partitioning, engine_config) = config();
    let shared = Arc::new(SharedEngine::new(
        DarEngine::new(partitioning.clone(), engine_config.clone()).unwrap(),
    ));
    let writer_done = Arc::new(AtomicBool::new(false));

    // Re-tuned queries over the same density: every one of these shares a
    // single Phase2Artifacts per epoch.
    let queries: Vec<RuleQuery> = (0..READERS)
        .map(|i| RuleQuery { degree_factor: 1.5 + 0.5 * i as f64, ..RuleQuery::default() })
        .collect();

    let readers: Vec<_> = queries
        .iter()
        .map(|query| {
            let shared = Arc::clone(&shared);
            let done = Arc::clone(&writer_done);
            let query = query.clone();
            std::thread::spawn(move || {
                let mut answered = 0u64;
                while !done.load(Ordering::SeqCst) {
                    let outcome = shared.query(&query).unwrap();
                    // Internal consistency under the race: the rules were
                    // mined from the artifacts the outcome carries, and
                    // every index is in range.
                    for rule in &outcome.rules {
                        for &i in rule.antecedent.iter().chain(&rule.consequent) {
                            assert!(i < outcome.artifacts.graph.clusters().len());
                        }
                    }
                    answered += 1;
                }
                answered
            })
        })
        .collect();

    // The single writer path: ingest batches while readers run.
    for b in 0..BATCHES {
        shared.ingest(&rows(BATCH_SIZE, b * BATCH_SIZE)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    writer_done.store(true, Ordering::SeqCst);
    let answered: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(answered > 0, "readers must have made progress");

    // After the dust settles: every query answers exactly as a fresh
    // engine fed the concatenated data in one shot.
    let all: Vec<Vec<f64>> = (0..BATCHES).flat_map(|b| rows(BATCH_SIZE, b * BATCH_SIZE)).collect();
    let mut fresh = DarEngine::new(partitioning, engine_config).unwrap();
    fresh.ingest(&all).unwrap();
    for query in &queries {
        let served = shared.query(query).unwrap();
        let expected = fresh.query(query).unwrap();
        assert_eq!(served.rules, expected.rules, "degree_factor {}", query.degree_factor);
        assert_eq!(served.s0, expected.s0);
        assert!(!served.rules.is_empty(), "the planted blocks must yield rules");
    }

    // The shared epoch was really shared: the same cached cliques
    // answered re-tuned queries via the lock-free read path, and the
    // engine built Phase II at most once per epoch (not once per reader).
    let (stats, read_hits) = shared.stats();
    assert!(read_hits > 0, "re-tuned queries must hit the shared epoch's cache");
    assert!(
        stats.cache_misses <= (BATCHES + 1) as u64,
        "at most one cold build per epoch, got {} misses",
        stats.cache_misses
    );
    assert_eq!(stats.tuples_ingested, (BATCHES * BATCH_SIZE) as u64);
}
