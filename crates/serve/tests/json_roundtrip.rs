//! Property: `encode` → `parse` round-trips arbitrary JSON values —
//! floats (including negative zero and sub-normal magnitudes), strings
//! full of escapes, empty arrays/objects, and arbitrarily nested trees —
//! and encoding is deterministic.

use dar_serve::json::{parse, Json};
use proptest::prelude::*;

/// Tricky strings the string-index token picks from: escapes, unicode,
/// controls, emptiness.
const STRINGS: &[&str] = &[
    "",
    "plain",
    "with \"quotes\"",
    "back\\slash",
    "new\nline and\ttab",
    "carriage\rreturn",
    "control \u{0001}\u{001f} chars",
    "form\u{000C}feed back\u{0008}space",
    "unicode ⇒ é ß 中",
    "astral 😀🦀",
    "slash / solidus",
    "null\u{0000}byte",
];

/// Interesting floats beyond the uniform range: exact integers, negative
/// zero, tiny and huge magnitudes.
const FLOATS: &[f64] = &[0.0, -0.0, 1.0, -1.0, 42.0, 0.1, -2.5e-9, 1.0e300, 5e-324, f64::MIN];

/// One generated token: `(kind, uniform float, index)`.
type Token = (u8, f64, u32);

/// Deterministically builds a JSON tree from a token list: leaves from
/// the token kinds, containers by splitting the list. Empty token lists
/// become empty containers, exercising `[]` and `{}`.
fn tree(tokens: &[Token], depth: usize) -> Json {
    if depth > 6 || tokens.len() <= 1 {
        return match tokens.first() {
            None => Json::Arr(Vec::new()),
            Some(&(kind, x, index)) => match kind % 6 {
                0 => Json::Null,
                1 => Json::Bool(index % 2 == 0),
                2 => Json::Num(x),
                3 => Json::Num(FLOATS[index as usize % FLOATS.len()]),
                4 => Json::Str(STRINGS[index as usize % STRINGS.len()].to_string()),
                _ => Json::Obj(Vec::new()),
            },
        };
    }
    let (head, rest) = tokens.split_first().expect("len > 1");
    let mid = rest.len() / 2;
    let (left, right) = rest.split_at(mid);
    if head.0 % 2 == 0 {
        Json::Arr(vec![tree(left, depth + 1), tree(right, depth + 1)])
    } else {
        Json::Obj(vec![
            (STRINGS[head.2 as usize % STRINGS.len()].to_string(), tree(left, depth + 1)),
            (format!("k{}", head.2), tree(right, depth + 1)),
        ])
    }
}

#[test]
fn encode_parse_round_trips_arbitrary_values() {
    proptest!(|(tokens in prop::collection::vec(
        (0u8..6, -1.0e12f64..1.0e12, 0u32..1024), 0..24))| {
        let original = tree(&tokens, 0);
        let encoded = original.encode();
        let reparsed = parse(&encoded).map_err(|e| {
            proptest::TestCaseError::Fail(format!("{e} while parsing {encoded:?}"))
        })?;
        prop_assert_eq!(&reparsed, &original, "wire: {}", encoded);
        // Determinism: re-encoding the reparsed value is byte-identical.
        prop_assert_eq!(reparsed.encode(), encoded);
    });
}

#[test]
fn uniform_floats_survive_bit_exactly() {
    proptest!(|(x in -1.0e300f64..1.0e300)| {
        let encoded = Json::Num(x).encode();
        let reparsed = parse(&encoded).map_err(|e| {
            proptest::TestCaseError::Fail(format!("{e} while parsing {encoded:?}"))
        })?;
        let y = reparsed.as_f64().expect("a number parses to a number");
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{} → {}", x, encoded);
    });
}
