//! Streaming end-to-end over real TCP: sliding-window mining through the
//! wire equals one-shot mining of exactly the live rows at any worker
//! count; the window-tagged WAL rebuilds the ring across a crash restart;
//! and churn subscribers reconstruct the live rule set from event diffs,
//! including after resuming with `from_epoch`.

use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{
    protocol, Backoff, Client, EngineBackend, Json, RetirePolicy, ServeConfig, Server, WindowSpec,
    WindowedEngine,
};
use mining::RuleQuery;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn config() -> EngineConfig {
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.2;
    config
}

fn partitioning() -> Partitioning {
    Partitioning::per_attribute(&Schema::interval_attrs(2), Metric::Euclidean)
}

/// Dyadic jitter (0.25 steps): fp sums are exact in any grouping, so
/// windowed re-merges match the one-shot scan bit for bit.
fn dyadic_rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let jitter = ((i + offset) % 4) as f64 * 0.25;
            if (i + offset).is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

fn windowed(spec: WindowSpec, policy: RetirePolicy) -> WindowedEngine {
    WindowedEngine::new(partitioning(), config(), spec, policy).unwrap()
}

fn serve_config(threads: usize) -> ServeConfig {
    ServeConfig {
        threads,
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

/// The deterministic byte encoding of a rule set — the same one the
/// server uses in query responses and event frames. Under the default
/// (degree) measure each rule's value is its degree.
fn encode_rules(rules: &[mining::rules::Dar]) -> String {
    Json::Arr(rules.iter().map(|r| protocol::rule_json(r, r.degree)).collect()).encode()
}

#[test]
fn windowed_wire_rules_equal_oneshot_over_live_rows_across_thread_counts() {
    // slots 3 = open window + two sealed: after 5 one-batch windows the
    // live horizon is batches 3 and 4 exactly.
    let spec = WindowSpec { batches: 1, slots: 3 };
    let batches: Vec<Vec<Vec<f64>>> = (0..5).map(|b| dyadic_rows(40, 7 * b)).collect();

    let mut answers = Vec::new();
    for threads in [1usize, 2, 4] {
        let handle = Server::start(
            windowed(spec, RetirePolicy::Remerge),
            "127.0.0.1:0",
            serve_config(threads),
        )
        .unwrap();
        let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();
        let mut total = 0;
        for batch in &batches {
            total += batch.len() as u64;
            client.ingest(batch.clone()).unwrap();
        }
        assert_eq!(handle.shared().tuples(), 80, "ingested {total}, live horizon holds 2 batches");
        assert_eq!(handle.shared().window_span(), Some((3, 5)));
        let response = client.query(RuleQuery::default()).unwrap();
        answers.push(response.get("rules").unwrap().encode());

        // A static server refuses the streaming verbs with a structured
        // error instead of a hangup.
        drop(client);
        handle.shutdown();
        handle.join().unwrap();
    }
    assert_eq!(answers[0], answers[1], "threads 1 vs 2 diverge");
    assert_eq!(answers[0], answers[2], "threads 1 vs 4 diverge");

    // Ground truth: one-shot mining of exactly the live rows (batches 3
    // and 4), byte-identical through the wire codec.
    let mut oneshot = DarEngine::new(partitioning(), config()).unwrap();
    oneshot.ingest(&batches[3]).unwrap();
    oneshot.ingest(&batches[4]).unwrap();
    let expected = oneshot.query(&RuleQuery::default()).unwrap().rules;
    assert!(!expected.is_empty(), "the planted blocks must yield rules");
    assert_eq!(answers[0], encode_rules(&expected), "windowed wire rules != one-shot live rules");
}

#[test]
fn static_server_refuses_streaming_verbs_with_structured_errors() {
    let engine = DarEngine::new(partitioning(), config()).unwrap();
    let handle = Server::start(engine, "127.0.0.1:0", serve_config(2)).unwrap();
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();
    let advance = client.advance().unwrap_err();
    assert_eq!(dar_serve::ServerError::of(&advance).unwrap().code, "unsupported");
    let line = client.round_trip_line(r#"{"verb":"subscribe"}"#).unwrap();
    assert!(line.contains("unsupported"), "got: {line}");
    drop(client);
    handle.shutdown();
    handle.join().unwrap();
}

#[test]
fn tagged_wal_rebuilds_the_ring_across_crash_restart() {
    let dir = std::env::temp_dir().join("dar_serve_stream_crash");
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("stream.wal");
    let _ = std::fs::remove_file(&wal_path);

    // WAL only — no snapshot: everything the restart knows comes from
    // the tagged frame log, exactly like a kill -9 after the last ack.
    let spec = WindowSpec { batches: 2, slots: 2 };
    let mut cfg = serve_config(2);
    cfg.wal_path = Some(wal_path.clone());
    let handle = Server::start(windowed(spec, RetirePolicy::Remerge), "127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();

    // Half-fill window 0, seal it explicitly, then fill window 1 — the
    // log interleaves tagged batches with an explicit-advance marker.
    client.ingest(dyadic_rows(40, 0)).unwrap();
    let advance = client.advance().unwrap();
    assert_eq!(advance.get("sealed").unwrap().as_u64(), Some(0));
    assert_eq!(advance.get("opened").unwrap().as_u64(), Some(1));
    client.ingest(dyadic_rows(40, 3)).unwrap();
    client.ingest(dyadic_rows(40, 5)).unwrap();

    let pre_rules = client.query(RuleQuery::default()).unwrap().get("rules").unwrap().encode();
    let pre_span = handle.shared().window_span().unwrap();
    let pre_tuples = handle.shared().tuples();
    assert_eq!(pre_span, (1, 2), "two-slot ring: window 0 retired when window 1 sealed");
    assert_eq!(pre_tuples, 80);

    // "Crash": stop without writing any snapshot.
    drop(client);
    handle.shutdown();
    handle.join().unwrap();

    // Restart: recover the backend from the tagged WAL alone.
    let (backend, report) = dar_serve::recover_backend(
        EngineBackend::from(windowed(spec, RetirePolicy::Remerge)),
        Arc::new(dar_durable::DiskStorage),
        None,
        Some(Path::new(&wal_path)),
    )
    .unwrap();
    assert_eq!(report.wal_records, 4, "3 tagged batches + 1 advance marker");
    assert_eq!(backend.window_span(), Some(pre_span), "ring shape must survive the restart");
    assert_eq!(backend.tuples(), pre_tuples);

    // Serve from the recovered backend; the wire answer matches pre-crash.
    let handle = Server::start(backend, "127.0.0.1:0", serve_config(2)).unwrap();
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();
    let post_rules = client.query(RuleQuery::default()).unwrap().get("rules").unwrap().encode();
    assert_eq!(post_rules, pre_rules, "recovered rules diverge from pre-crash");
    drop(client);
    handle.shutdown();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Applies one event frame's diff to a rule set keyed by encoded rule.
fn apply_event(set: &mut BTreeSet<String>, event: &Json) {
    if event.get("resync").and_then(Json::as_bool) == Some(true) {
        set.clear();
    }
    if let Some(Json::Arr(dropped)) = event.get("dropped") {
        for rule in dropped {
            set.remove(&rule.encode());
        }
    }
    if let Some(Json::Arr(added)) = event.get("added") {
        for rule in added {
            set.insert(rule.encode());
        }
    }
}

#[test]
fn subscribers_reconstruct_live_rules_from_churn_events_and_resume() {
    // One-batch windows, two slots: every ingest advances the window and
    // publishes churn. Distinct batch sizes change min_cluster_support,
    // so every advance really churns the rule set.
    let spec = WindowSpec { batches: 1, slots: 2 };
    let handle =
        Server::start(windowed(spec, RetirePolicy::Remerge), "127.0.0.1:0", serve_config(2))
            .unwrap();
    let addr = handle.addr();
    let timeout = Duration::from_secs(10);

    // Subscribe before any churn exists.
    let subscriber = Client::connect(addr, timeout).unwrap();
    let mut subscription = subscriber.subscribe(None, Backoff::default()).unwrap();
    assert_eq!(subscription.last_epoch(), 0, "nothing published yet");

    let mut writer = Client::connect(addr, timeout).unwrap();
    for (i, n) in [40usize, 60, 80].iter().enumerate() {
        writer.ingest(dyadic_rows(*n, 7 * i)).unwrap();
    }
    // The final live rule set, straight from the server. publish_churn
    // already closed this epoch, so the query is answered from cache at
    // the same epoch the last event carries.
    let final_response = writer.query(RuleQuery::default()).unwrap();
    let final_epoch = final_response.get("epoch").unwrap().as_u64().unwrap();
    let final_rules: BTreeSet<String> = match final_response.get("rules") {
        Some(Json::Arr(rules)) => rules.iter().map(Json::encode).collect(),
        _ => BTreeSet::new(),
    };
    assert!(!final_rules.is_empty());

    // Events were enqueued synchronously before each ingest ack, so
    // reading up to final_epoch terminates.
    let mut reconstructed = BTreeSet::new();
    let mut events = Vec::new();
    loop {
        let event = subscription.next_event().unwrap();
        apply_event(&mut reconstructed, &event);
        let epoch = event.get("epoch").unwrap().as_u64().unwrap();
        events.push(event);
        if epoch >= final_epoch {
            break;
        }
    }
    assert!(events.len() >= 2, "three distinct-support advances must churn at least twice");
    assert_eq!(reconstructed, final_rules, "replayed diffs diverge from the live rule set");
    assert_eq!(subscription.last_epoch(), final_epoch);
    assert_eq!(
        subscription.window_span(),
        handle.shared().window_span(),
        "events carry the live horizon"
    );

    // Resume: a second subscriber seen through event 1 replays only the
    // newer events and lands on the same final set.
    let first_epoch = events[0].get("epoch").unwrap().as_u64().unwrap();
    let mut resumed: BTreeSet<String> = BTreeSet::new();
    apply_event(&mut resumed, &events[0]);
    let resumer = Client::connect(addr, timeout).unwrap();
    let mut resumed_sub = resumer.subscribe(Some(first_epoch), Backoff::default()).unwrap();
    loop {
        let event = resumed_sub.next_event().unwrap();
        let epoch = event.get("epoch").unwrap().as_u64().unwrap();
        assert!(epoch > first_epoch, "replay must start after the seen epoch");
        apply_event(&mut resumed, &event);
        if epoch >= final_epoch {
            break;
        }
    }
    assert_eq!(resumed, final_rules, "resumed replay diverges from the live rule set");

    handle.shutdown();
    handle.join().unwrap();
}
