//! Torn-tail recovery of the *window-tagged* WAL: a crash mid-append
//! leaves a partial tagged frame — possibly cut inside the length/CRC
//! header, inside the `u32::MAX` tagged-frame sentinel, inside the window
//! sequence, or anywhere in the row body. For **every** byte offset,
//! [`dar_serve::recover_backend`] must drop exactly the partial frame
//! (reported in `wal_tail_dropped_bytes`), keep every committed frame,
//! and rebuild the same window ring the committed history produced.

use dar_core::{Metric, Partitioning, Schema};
use dar_durable::{encode_tagged_batch, wal, DiskStorage};
use dar_engine::EngineConfig;
use dar_serve::{
    protocol, Client, EngineBackend, RetirePolicy, ServeConfig, Server, WindowSpec, WindowedEngine,
};
use mining::RuleQuery;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn config() -> EngineConfig {
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.2;
    config
}

fn partitioning() -> Partitioning {
    Partitioning::per_attribute(&Schema::interval_attrs(2), Metric::Euclidean)
}

/// Dyadic jitter (0.25 steps): exact fp sums in any grouping, so every
/// recovered ring mines byte-identical rules.
fn dyadic_rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let jitter = ((i + offset) % 4) as f64 * 0.25;
            if (i + offset).is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

fn fresh_backend(spec: WindowSpec) -> EngineBackend {
    EngineBackend::from(
        WindowedEngine::new(partitioning(), config(), spec, RetirePolicy::Remerge).unwrap(),
    )
}

fn recover(spec: WindowSpec, wal_path: &Path) -> (EngineBackend, dar_durable::RecoveryReport) {
    dar_serve::recover_backend(fresh_backend(spec), Arc::new(DiskStorage), None, Some(wal_path))
        .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dar_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn torn_tagged_frame_is_dropped_at_every_byte_and_the_ring_rebuilds() {
    let dir = temp_dir("wal_torn_tail");
    let wal_path = dir.join("stream.wal");
    let spec = WindowSpec { batches: 2, slots: 2 };

    // A real windowed server writes the committed prefix, so the log
    // interleaves tagged batches with an explicit-advance marker exactly
    // as production does: batch(win 0), advance, batch(win 1), batch(win
    // 1) — four committed records.
    let serve_config = ServeConfig {
        threads: 2,
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        wal_path: Some(wal_path.clone()),
        ..ServeConfig::default()
    };
    let handle = Server::start(
        WindowedEngine::new(partitioning(), config(), spec, RetirePolicy::Remerge).unwrap(),
        "127.0.0.1:0",
        serve_config,
    )
    .unwrap();
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();
    client.ingest(dyadic_rows(40, 0)).unwrap();
    client.advance().unwrap();
    client.ingest(dyadic_rows(40, 3)).unwrap();
    client.ingest(dyadic_rows(40, 5)).unwrap();
    drop(client);
    handle.shutdown();
    handle.join().unwrap();

    // The torn frame: a fifth tagged batch, appended whole and then cut
    // at every offset below. Its byte range is found by diffing the file.
    let committed = std::fs::read(&wal_path).unwrap();
    wal::append_record(&DiskStorage, &wal_path, 5, &encode_tagged_batch(1, &dyadic_rows(40, 9)))
        .unwrap();
    let full = std::fs::read(&wal_path).unwrap();
    let torn = full[committed.len()..].to_vec();
    assert!(torn.len() > 28, "the frame must span header, sentinel, window seq, and body");

    // Control: recovery of the committed prefix alone.
    std::fs::write(&wal_path, &committed).unwrap();
    let (mut control, control_report) = recover(spec, &wal_path);
    assert_eq!(control_report.wal_records, 4, "3 tagged batches + 1 advance marker");
    assert_eq!(control_report.wal_tail_dropped_bytes, 0);
    let control_span = control.window_span().expect("windowed backend");
    let control_tuples = control.tuples();
    assert_eq!(control_span, (1, 2), "two-slot ring: window 0 retired when window 1 sealed");
    assert_eq!(control_tuples, 80);
    let control_rules =
        protocol::query_response(&control.query(&RuleQuery::default()).unwrap()).encode();
    assert!(control_rules.contains("\"antecedent\""), "the planted blocks must yield rules");

    // Sanity: the whole fifth frame, untorn, does change the state — so
    // the per-cut equality below is not vacuous.
    std::fs::write(&wal_path, &full).unwrap();
    let (whole, whole_report) = recover(spec, &wal_path);
    assert_eq!(whole_report.wal_records, 5);
    assert_eq!(whole.tuples(), 120);

    // Frame layout: len[0..4) crc[4..8) seq[8..16) sentinel[16..20)
    // window-seq[20..28) body[28..). Mine rules at cuts landing in each
    // region (plus the last byte); cheap ring/tuple checks at every cut.
    let rule_check_cuts = [3usize, 6, 12, 18, 24, 40, torn.len() / 2, torn.len() - 1];
    for cut in 0..torn.len() {
        let mut bytes = committed.clone();
        bytes.extend_from_slice(&torn[..cut]);
        std::fs::write(&wal_path, &bytes).unwrap();

        let (mut backend, report) = recover(spec, &wal_path);
        assert_eq!(
            report.wal_tail_dropped_bytes, cut,
            "cut at {cut}: exactly the partial frame must be dropped"
        );
        assert_eq!(report.wal_records, 4, "cut at {cut}: every committed record must survive");
        assert_eq!(backend.window_span(), Some(control_span), "cut at {cut}: ring shape diverged");
        assert_eq!(backend.tuples(), control_tuples, "cut at {cut}: live tuples diverged");
        if rule_check_cuts.contains(&cut) {
            let rules =
                protocol::query_response(&backend.query(&RuleQuery::default()).unwrap()).encode();
            assert_eq!(rules, control_rules, "cut at {cut}: recovered rules diverged");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
