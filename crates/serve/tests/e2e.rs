//! End-to-end over real TCP: K concurrent clients mining through the
//! server get **byte-identical** rule sets to an in-process `DarEngine`
//! on the same data, with `ServerStats` showing cache hits and zero
//! rejected connections under the bounded queue — then a graceful
//! shutdown that writes the final snapshot.

use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{protocol, Client, Request, ServeConfig, Server};
use mining::RuleQuery;
use std::time::Duration;

const K: usize = 8;

fn rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let k = i + offset;
            let jitter = (k % 9) as f64 * 0.01;
            match k % 2 {
                0 => vec![jitter, 100.0 + jitter, 5.0 + jitter * 0.1],
                _ => vec![50.0 + jitter, 200.0 + jitter, 9.0 + jitter * 0.1],
            }
        })
        .collect()
}

fn engine() -> (Partitioning, EngineConfig, DarEngine) {
    let schema = Schema::interval_attrs(3);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.1;
    let engine = DarEngine::new(partitioning.clone(), config.clone()).unwrap();
    (partitioning, config, engine)
}

fn timeout() -> Duration {
    Duration::from_secs(10)
}

#[test]
fn k_tcp_clients_get_byte_identical_rules_then_graceful_shutdown() {
    let dir = std::env::temp_dir().join("dar_serve_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot_path = dir.join("final.snap");
    let _ = std::fs::remove_file(&snapshot_path);

    let (partitioning, engine_config, served_engine) = engine();
    let config = ServeConfig {
        threads: 4,
        queue_depth: 64,
        snapshot_path: Some(snapshot_path.clone()),
        read_timeout: timeout(),
        write_timeout: timeout(),
        ..ServeConfig::default()
    };
    let handle = Server::start(served_engine, "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    // --- one writer client ingests two batches -------------------------
    let batches = [rows(60, 0), rows(60, 60)];
    let mut writer = Client::connect(addr, timeout()).unwrap();
    assert_eq!(writer.ingest(batches[0].clone()).unwrap(), 60);
    assert_eq!(writer.ingest(batches[1].clone()).unwrap(), 120);

    // Prime the epoch + cache once so the K clients race on the cached
    // read path.
    let query = RuleQuery { degree_factor: 2.5, ..RuleQuery::default() };
    let primed = writer.query(query.clone()).unwrap();
    assert_eq!(primed.get("cached").unwrap().as_bool(), Some(false));

    // --- K concurrent clients send the identical query ------------------
    let query_line = Request::Query { query: query.clone() }.to_json().encode();
    let client_threads: Vec<_> = (0..K)
        .map(|_| {
            let line = query_line.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, timeout()).unwrap();
                client.round_trip_line(&line).unwrap()
            })
        })
        .collect();
    let answers: Vec<String> = client_threads.into_iter().map(|t| t.join().unwrap()).collect();

    // --- ground truth: an in-process engine on the same data ------------
    let mut local = DarEngine::new(partitioning, engine_config).unwrap();
    for batch in &batches {
        local.ingest(batch).unwrap();
    }
    let expected_outcome = local.query(&query).unwrap();
    assert!(!expected_outcome.rules.is_empty(), "the planted blocks must yield rules");
    // The served answers came from the cache; encode the expectation the
    // same way the server does.
    let expected_line = {
        let mut outcome = expected_outcome;
        outcome.cached = true;
        protocol::query_response(&outcome).encode()
    };
    for (i, answer) in answers.iter().enumerate() {
        assert_eq!(answer, &expected_line, "client {i} diverged");
    }

    // --- server-side counters: shared cache, bounded queue never dropped -
    let stats_response = writer.stats().unwrap();
    let server = stats_response.get("server").unwrap();
    let engine_block = stats_response.get("engine").unwrap();
    let shared_hits = engine_block.get("shared_read_hits").unwrap().as_u64().unwrap();
    let engine_hits = engine_block.get("cache_hits").unwrap().as_u64().unwrap();
    assert!(shared_hits + engine_hits > 0, "K identical queries must hit the cache");
    assert!(shared_hits >= (K - 1) as u64, "most reads must be lock-free, got {shared_hits}");
    assert_eq!(server.get("rejected_connections").unwrap().as_u64(), Some(0));
    assert_eq!(
        server.get("query_requests").unwrap().as_u64(),
        Some(K as u64 + 1),
        "every query served, none dropped"
    );
    assert_eq!(server.get("connections").unwrap().as_u64(), Some(K as u64 + 1));
    assert!(server.get("p99_us").unwrap().as_u64().unwrap() > 0);

    // --- malformed input gets a structured error, not a hangup ----------
    let bad = writer.round_trip_line("{not json").unwrap();
    assert_eq!(dar_serve::json::parse(&bad).unwrap().get("ok").unwrap().as_bool(), Some(false));
    let unknown = writer.round_trip_line(r#"{"verb":"frobnicate"}"#).unwrap();
    assert!(unknown.contains("frobnicate"));
    // A ragged ingest batch is rejected by engine validation, atomically.
    let ragged = Request::Ingest { rows: vec![vec![1.0, 2.0, 3.0], vec![4.0]] };
    let rejected = writer.request(&ragged).unwrap();
    assert_eq!(rejected.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(rejected.get("error").unwrap().as_str(), Some("rejected"));

    // --- graceful shutdown over the wire --------------------------------
    writer.shutdown().unwrap();
    let summary = handle.join().unwrap();
    assert!(snapshot_path.exists(), "shutdown must write the final snapshot");
    assert_eq!(summary.stats.shutdown_requests, 1);
    assert_eq!(summary.stats.rejected_connections, 0);

    // The snapshot is a valid engine state for the next process: a
    // restored engine answers the same query with the same rules.
    let bytes = std::fs::read(&snapshot_path).unwrap();
    let (_, restore_config, _) = engine();
    let mut restored = DarEngine::restore(&bytes, restore_config).unwrap();
    assert_eq!(restored.tuples(), 120);
    let after_restart = restored.query(&query).unwrap();
    assert_eq!(after_restart.rules, local.query(&query).unwrap().rules);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_refuses_with_structured_error_not_unbounded_queueing() {
    let (_, _, served_engine) = engine();
    // One worker, a queue of one: the third simultaneous connection must
    // be refused.
    let config = ServeConfig {
        threads: 1,
        queue_depth: 1,
        read_timeout: timeout(),
        write_timeout: timeout(),
        ..ServeConfig::default()
    };
    let handle = Server::start(served_engine, "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    // Occupy the single worker with a held-open connection…
    let mut held = Client::connect(addr, timeout()).unwrap();
    held.ingest(rows(10, 0)).unwrap(); // ensures the worker has adopted it
                                       // …fill the queue with a second idle connection…
    let _queued = Client::connect(addr, timeout()).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // …then expect refusals among a burst of further connects.
    let mut refused = 0;
    for _ in 0..5 {
        let mut c = match Client::connect(addr, timeout()) {
            Ok(c) => c,
            Err(_) => continue,
        };
        match c.round_trip_line(r#"{"verb":"stats"}"#) {
            Ok(line) if line.contains("overloaded") => refused += 1,
            Ok(_) | Err(_) => {}
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(refused > 0, "a full bounded queue must refuse with a structured error");
    assert!(handle.stats().rejected_connections > 0);

    // Close the held/queued sockets so workers see EOF instead of waiting
    // out the read timeout, then shut down.
    drop(held);
    drop(_queued);
    handle.shutdown();
    handle.join().unwrap();
}
