//! Snapshot-format migration: pre-binary (v1 text) artifacts written
//! before the persist-v2 rollout must keep restoring under the
//! v2-writing engine — byte-equal rules from v1 fixture files (sealed
//! and unsealed), and a kill-9 recovery that crosses the version
//! boundary (v1 snapshot on disk, newer WAL tail on top).

use dar_core::{Metric, Partitioning, Schema};
use dar_durable::storage::scratch_dir;
use dar_durable::{DiskStorage, FaultPlan, FaultyStorage};
use dar_engine::snapshot::{parse_snapshot_bytes, write_snapshot};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::recover_engine;
use mining::RuleQuery;

fn config() -> EngineConfig {
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.2;
    config
}

fn engine() -> DarEngine {
    let schema = Schema::interval_attrs(2);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    DarEngine::new(partitioning, config()).unwrap()
}

/// Dyadic jitter: exact fp sums in any grouping, so restored rules are
/// byte-equal, not merely close.
fn batch(offset: usize) -> Vec<Vec<f64>> {
    (0..30)
        .map(|i| {
            let jitter = ((i + offset) % 4) as f64 * 0.25;
            if (i + offset).is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

/// Re-frames a live engine's state in the pre-PR v1 text layout using the
/// retained v1 writer — the exact bytes a pre-binary build would have put
/// on disk.
fn v1_text_of(e: &mut DarEngine) -> String {
    let v2 = e.snapshot().unwrap();
    let snap = parse_snapshot_bytes(&v2, &dar_par::ThreadPool::serial()).unwrap();
    write_snapshot(snap.epoch, snap.tuples, &snap.partitioning, &snap.thresholds, &snap.clusters)
        .unwrap()
}

/// v1 fixture files — sealed with the checksum footer and raw unsealed —
/// restore under the v2-writing engine with byte-equal rule artifacts.
#[test]
fn v1_snapshot_fixtures_restore_byte_equal_rules() {
    let mut original = engine();
    original.ingest(&batch(0)).unwrap();
    original.ingest(&batch(1)).unwrap();
    let want = original.query(&RuleQuery::default()).unwrap();
    assert!(!want.rules.is_empty(), "the planted blocks must yield rules");
    let v1 = v1_text_of(&mut original);
    assert!(v1.starts_with("dar-engine"), "the retained v1 writer emits the text format: {v1}");

    let dir = scratch_dir("serve_migration_fixtures");
    let sealed_path = dir.join("sealed_v1.snap");
    let unsealed_path = dir.join("unsealed_v1.snap");
    dar_durable::snapshot::install(&DiskStorage, &sealed_path, v1.as_bytes(), 7).unwrap();
    std::fs::write(&unsealed_path, &v1).unwrap();

    for path in [&sealed_path, &unsealed_path] {
        let bytes = std::fs::read(path).unwrap();
        let mut restored = DarEngine::restore(&bytes, config()).unwrap();
        assert_eq!(restored.tuples(), 60, "{}", path.display());
        let got = restored.query(&RuleQuery::default()).unwrap();
        assert_eq!(got.rules, want.rules, "{}: rules diverged", path.display());
        assert_eq!(got.values, want.values, "{}: measure values diverged", path.display());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The committed fixture — a sealed v1 snapshot written by the pre-binary
/// format, checked into `tests/fixtures/` — must keep restoring with rules
/// byte-equal to an engine rebuilt from the same rows. Regenerate it (only
/// if the v1 writer itself changes, which it should not) with
/// `DAR_WRITE_V1_FIXTURE=1 cargo test -p dar-serve --test migration`.
#[test]
fn committed_v1_fixture_restores_byte_equal_rules() {
    let fixture =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v1_engine.snap");
    let mut control = engine();
    control.ingest(&batch(0)).unwrap();
    control.ingest(&batch(1)).unwrap();
    if std::env::var_os("DAR_WRITE_V1_FIXTURE").is_some() {
        let v1 = v1_text_of(&mut control);
        std::fs::create_dir_all(fixture.parent().unwrap()).unwrap();
        dar_durable::snapshot::install(&DiskStorage, &fixture, v1.as_bytes(), 3).unwrap();
    }
    let bytes = std::fs::read(&fixture).unwrap();
    let mut restored = DarEngine::restore(&bytes, config()).unwrap();
    assert_eq!(restored.tuples(), 60);
    let got = restored.query(&RuleQuery::default()).unwrap();
    let want = control.query(&RuleQuery::default()).unwrap();
    assert_eq!(got.rules, want.rules);
    assert_eq!(got.values, want.values);
    assert!(!got.rules.is_empty());
}

/// Kill-9 across the version boundary: a v1 snapshot sealed at WAL seq 1
/// plus a WAL holding seqs 1 and 2. Recovery must load the v1 body,
/// replay only the newer tail, and answer exactly like an uncrashed
/// engine over the same batches.
#[test]
fn v1_snapshot_with_newer_wal_tail_recovers_exactly() {
    let dir = scratch_dir("serve_migration_boundary");
    let snap_path = dir.join("epoch.snap");
    let wal_path = dir.join("ingest.wal");
    let storage = FaultyStorage::new(FaultPlan::default());

    // The pre-upgrade process: batch 1 snapshotted (v1 text), both
    // batches on the WAL, then kill -9 — no final snapshot of batch 2.
    let mut before = engine();
    before.ingest(&batch(0)).unwrap();
    let v1 = v1_text_of(&mut before);
    dar_durable::snapshot::install(&*storage, &snap_path, v1.as_bytes(), 1).unwrap();
    let (mut store, _) =
        dar_durable::DurableStore::open(storage.clone(), None, Some(wal_path.clone())).unwrap();
    store.log_batch(&batch(0)).unwrap();
    store.log_batch(&batch(1)).unwrap();
    drop(store);

    // The upgraded (v2-writing) process boots over the old artifacts.
    let (mut recovered, report) =
        recover_engine(engine(), storage, Some(&snap_path), Some(&wal_path)).unwrap();
    assert!(report.snapshot_source.is_some(), "the v1 snapshot must load");
    assert_eq!(report.wal_batches_replayed, 1, "only the post-snapshot tail replays");
    assert_eq!(recovered.tuples(), 60);

    let mut control = engine();
    control.ingest(&batch(0)).unwrap();
    control.ingest(&batch(1)).unwrap();
    let got = recovered.query(&RuleQuery::default()).unwrap();
    let want = control.query(&RuleQuery::default()).unwrap();
    assert_eq!(got.rules, want.rules);
    assert_eq!(got.values, want.values);
    assert!(!got.rules.is_empty());

    // And the recovered engine snapshots forward in v2: the next restart
    // reads binary.
    let next = recovered.snapshot().unwrap();
    assert_eq!(&next[..4], b"DARS", "post-recovery snapshots are v2 binary");
    std::fs::remove_dir_all(&dir).ok();
}
