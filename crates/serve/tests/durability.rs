//! The server's durability contract, end to end over real sockets:
//! apply-then-log ingest, sticky degraded (read-only) mode when the WAL
//! fails, counted snapshot-install failures, and restart recovery that
//! loses no acknowledged batch.

use dar_core::{Metric, Partitioning, Schema};
use dar_durable::storage::scratch_dir;
use dar_durable::{FaultPlan, FaultyStorage};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{recover_engine, Backoff, Client, ServeConfig, Server, ServerError};
use mining::RuleQuery;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn engine() -> DarEngine {
    let schema = Schema::interval_attrs(2);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.2;
    DarEngine::new(partitioning, config).unwrap()
}

fn batch(offset: usize) -> Vec<Vec<f64>> {
    (0..30)
        .map(|i| {
            let jitter = ((i + offset) % 7) as f64 * 0.01;
            if (i + offset).is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

fn config(dir: &Path, storage: Arc<FaultyStorage>) -> ServeConfig {
    ServeConfig {
        threads: 2,
        queue_depth: 8,
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        snapshot_path: Some(dir.join("epoch.snap")),
        wal_path: Some(dir.join("ingest.wal")),
        storage,
        ..ServeConfig::default()
    }
}

/// One WAL frame's size for a `batch(...)`-shaped batch, probed against
/// healthy storage so fault budgets can aim at frame boundaries.
fn frame_len() -> u64 {
    let dir = scratch_dir("serve_probe");
    let storage = FaultyStorage::new(FaultPlan::default());
    let (mut store, _) =
        dar_durable::DurableStore::open(storage, None, Some(dir.join("ingest.wal"))).unwrap();
    store.log_batch(&batch(0)).unwrap();
    let len = std::fs::read(dir.join("ingest.wal")).unwrap().len() as u64 - 8;
    std::fs::remove_dir_all(&dir).ok();
    len
}

/// A WAL append failure refuses the batch with a structured `degraded`
/// error and flips the server read-only — queries keep working, further
/// ingest is refused up front, and the flag shows in `stats`.
#[test]
fn wal_failure_degrades_to_read_only() {
    let dir = scratch_dir("serve_degraded");
    // Budget for exactly one frame: the first batch commits, the second
    // append tears mid-frame.
    let storage = FaultyStorage::new(FaultPlan {
        fail_append_after_bytes: Some(frame_len()),
        ..FaultPlan::default()
    });
    let handle = Server::start(engine(), "127.0.0.1:0", config(&dir, storage)).unwrap();
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();

    assert_eq!(client.ingest(batch(0)).unwrap(), 30);

    let err = client.ingest(batch(1)).unwrap_err();
    let server_error = ServerError::of(&err).expect("structured error");
    assert_eq!(server_error.code, "degraded");
    assert!(server_error.is_transient());

    // Sticky: refused before touching the engine now.
    let err = client.ingest(batch(2)).unwrap_err();
    assert_eq!(ServerError::of(&err).unwrap().code, "degraded");

    // Reads still serve; the stats verb reports the mode and counters.
    assert!(client.query(RuleQuery::default()).unwrap().get("ok").is_some());
    let stats = client.stats().unwrap();
    let server = stats.get("server").unwrap();
    assert_eq!(server.get("degraded").and_then(dar_serve::Json::as_bool), Some(true));
    assert_eq!(server.get("wal_appends").and_then(dar_serve::Json::as_u64), Some(1));
    assert_eq!(server.get("wal_append_failures").and_then(dar_serve::Json::as_u64), Some(1));

    // Bounded retry surfaces the same degraded error, not a hang.
    let backoff = Backoff { attempts: 2, base: Duration::from_millis(1), ..Backoff::default() };
    let err = client.ingest_with_retry(batch(3), &backoff).unwrap_err();
    assert_eq!(ServerError::of(&err).unwrap().code, "degraded");

    client.shutdown().unwrap();
    let summary = handle.join();
    // The final snapshot may fail too (same broken storage) — either way
    // the join returns rather than hanging.
    drop(summary);
    std::fs::remove_dir_all(&dir).ok();
}

/// A failed snapshot install is counted, reported over the wire, and
/// leaves the server fully operational; after the fault clears, the next
/// install succeeds.
#[test]
fn snapshot_install_failures_are_counted_then_recover() {
    let dir = scratch_dir("serve_snapfail");
    let storage =
        FaultyStorage::new(FaultPlan { fail_rename_from: Some(0), ..FaultPlan::default() });
    let handle = Server::start(engine(), "127.0.0.1:0", config(&dir, storage.clone())).unwrap();
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();
    client.ingest(batch(0)).unwrap();

    let err = client.snapshot().unwrap_err();
    assert_eq!(ServerError::of(&err).unwrap().code, "io");
    let stats = client.stats().unwrap();
    let server = stats.get("server").unwrap();
    assert_eq!(server.get("snapshot_failures").and_then(dar_serve::Json::as_u64), Some(1));
    assert_eq!(server.get("snapshots_written").and_then(dar_serve::Json::as_u64), Some(0));

    storage.heal();
    let response = client.snapshot().unwrap();
    assert_eq!(response.get("ok").and_then(dar_serve::Json::as_bool), Some(true));
    assert!(dir.join("epoch.snap").exists());

    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Stop a WAL-only server without a final snapshot, recover, and restart:
/// every acknowledged batch is replayed and the restarted server answers
/// exactly as an uncrashed engine over the same batches.
#[test]
fn restart_replays_every_acked_batch() {
    let dir = scratch_dir("serve_restart");
    let storage = FaultyStorage::new(FaultPlan::default());
    let serve_config = ServeConfig {
        snapshot_path: None, // WAL-only: nothing but the log survives
        ..config(&dir, storage.clone())
    };
    let handle = Server::start(engine(), "127.0.0.1:0", serve_config.clone()).unwrap();
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();
    assert_eq!(client.ingest(batch(0)).unwrap(), 30);
    assert_eq!(client.ingest(batch(1)).unwrap(), 60);
    client.shutdown().unwrap();
    handle.join().unwrap();

    let (mut recovered, report) =
        recover_engine(engine(), storage, None, Some(&dir.join("ingest.wal"))).unwrap();
    assert_eq!(report.wal_batches_replayed, 2);
    assert_eq!(recovered.tuples(), 60);

    let mut control = engine();
    control.ingest(&batch(0)).unwrap();
    control.ingest(&batch(1)).unwrap();
    let a = recovered.query(&RuleQuery::default()).unwrap();
    let b = control.query(&RuleQuery::default()).unwrap();
    assert_eq!(a.rules, b.rules);
    assert!(!a.rules.is_empty());

    // The restarted server serves the recovered engine as usual.
    let handle = Server::start(recovered, "127.0.0.1:0", serve_config).unwrap();
    let mut client = Client::connect(handle.addr(), Duration::from_secs(10)).unwrap();
    let stats = client.stats().unwrap();
    let engine_stats = stats.get("engine").unwrap();
    assert_eq!(engine_stats.get("wal_batches_replayed").and_then(dar_serve::Json::as_u64), Some(2));
    assert_eq!(client.ingest(batch(2)).unwrap(), 90);
    client.shutdown().unwrap();
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
