//! Ranked-artifact determinism and anytime honesty — the rule-quality
//! acceptance bars.
//!
//! * **Ranked determinism** — a query with non-default rank knobs
//!   (measure, top-k, redundancy pruning) must produce **byte-identical**
//!   wire responses at every worker count, exactly like the plain-degree
//!   path: ranking is a deterministic function of the rule statistics,
//!   with ties broken on rule identity, so no thread schedule can flip a
//!   byte.
//! * **Anytime honesty** — a budgeted query that sees every clique pair
//!   converges to the exact answer (no `approx`/`coverage` keys, same
//!   bytes); a cut-short one says so explicitly (`approx: true` plus the
//!   examined fraction in `(0, 1)`), and its rules are a subset of the
//!   exact rule set.

use birch::BirchConfig;
use dar_core::{Metric, Partitioning, Relation};
use dar_engine::{DarEngine, EngineConfig, QueryOutcome};
use dar_rank::RankSpec;
use dar_serve::protocol::query_response;
use dar_serve::{json, Json};
use datagen::wbcd::wbcd_relation;
use mining::{DensitySpec, Measure, RuleQuery};
use std::time::Duration;

const TUPLES: usize = 4_000;
const BATCH: usize = 500;

fn wbcd_engine_config(threads: usize) -> EngineConfig {
    let mut config = EngineConfig {
        min_support_frac: 0.03,
        max_cliques: 10_000,
        threads,
        ..EngineConfig::default()
    };
    config.birch =
        BirchConfig { initial_threshold: 0.0, ..BirchConfig::with_total_budget(5 << 20, 30) };
    config
}

/// A query that exercises the whole ranking pipeline: lift scoring, a
/// measure floor, redundancy pruning, and top-k truncation.
fn ranked_query() -> RuleQuery {
    RuleQuery {
        density: DensitySpec::Auto { factor: 4.0 },
        max_antecedent: 2,
        max_consequent: 1,
        max_pair_work: 1_000_000,
        measure: Measure::Lift,
        min_measure: Some(1.0),
        top_k: 25,
        prune_redundant: true,
        ..RuleQuery::default()
    }
}

/// Ingests the relation batch-by-batch at the given worker count and
/// returns the warm engine.
fn engine_at(threads: usize, relation: &Relation, partitioning: &Partitioning) -> DarEngine {
    let mut engine =
        DarEngine::new(partitioning.clone(), wbcd_engine_config(threads)).expect("valid config");
    let rows: Vec<Vec<f64>> = (0..relation.len()).map(|r| relation.row(r)).collect();
    for batch in rows.chunks(BATCH) {
        engine.ingest(batch).expect("ingest");
    }
    engine
}

fn encoded_response(engine: &mut DarEngine, query: &RuleQuery) -> String {
    query_response(&engine.query(query).expect("query")).encode()
}

#[test]
fn ranked_artifacts_are_byte_identical_across_thread_counts() {
    let relation = wbcd_relation(TUPLES, 0.1, 20260707);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let query = ranked_query();

    let serial = encoded_response(&mut engine_at(1, &relation, &partitioning), &query);
    // Sanity: the ranked pipeline actually ran — rules exist and the
    // response names the measure they are ordered by.
    assert!(serial.contains("\"antecedent\""), "expected rules, got: {serial}");
    assert!(serial.contains("\"measure\":\"lift\""), "got: {serial}");

    for threads in [2, 4, 8] {
        let parallel = encoded_response(&mut engine_at(threads, &relation, &partitioning), &query);
        assert_eq!(serial, parallel, "ranked artifact diverged from serial at threads={threads}");
    }
}

#[test]
fn anytime_converges_to_exact_and_marks_partial_answers() {
    let relation = wbcd_relation(TUPLES, 0.1, 20260707);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);

    // Exact baseline on a fresh engine: no coverage annotation at all.
    let mut exact_engine = engine_at(2, &relation, &partitioning);
    let exact = exact_engine.query(&ranked_query()).expect("exact query");
    let exact_line = query_response(&exact).encode();
    assert!(!exact_line.contains("\"approx\""), "exact answers carry no approx key: {exact_line}");

    // A generous budget sees every clique pair, so the anytime answer is
    // byte-identical to the exact one — coverage 1.0 is not annotated.
    let mut anytime_engine = engine_at(2, &relation, &partitioning);
    let full_query = RuleQuery { budget_ms: 60_000, ..ranked_query() };
    let full_line = encoded_response(&mut anytime_engine, &full_query);
    assert_eq!(exact_line, full_line, "full-budget anytime must converge to the exact answer");

    // A near-zero budget may or may not finish on a fast machine; either
    // way the answer must be honest — identical rules, or an explicit
    // `approx` marker with the examined fraction and a subset of the
    // exact rules. Top-k and pruning are dropped here: the best-25 of a
    // sample need not be a subset of the best-25 of the whole, so the
    // subset bar is only meaningful against the unpruned exact set.
    let flat_query =
        RuleQuery { top_k: 0, prune_redundant: false, min_measure: None, ..ranked_query() };
    let exact_flat = exact_engine.query(&flat_query).expect("flat exact query");
    let exact_flat_rules =
        json::parse(&query_response(&exact_flat).encode()).unwrap().get("rules").unwrap().encode();
    let tiny_query = RuleQuery { budget_ms: 1, ..flat_query };
    let tiny_line =
        query_response(&anytime_engine.query(&tiny_query).expect("tiny query")).encode();
    let tiny = json::parse(&tiny_line).unwrap();
    match tiny.get("approx") {
        None => {
            assert_eq!(tiny.get("rules").unwrap().encode(), exact_flat_rules, "got: {tiny_line}");
        }
        Some(flag) => {
            assert_eq!(flag.as_bool(), Some(true), "got: {tiny_line}");
            let coverage = tiny.get("coverage").and_then(Json::as_f64).expect("coverage key");
            assert!(
                coverage > 0.0 && coverage < 1.0,
                "partial coverage must sit in (0, 1), got {coverage}"
            );
            assert_eq!(tiny.get("truncated").and_then(Json::as_bool), Some(true));
            let indices = |rule: &Json, key: &str| -> Vec<usize> {
                rule.get(key)
                    .and_then(Json::as_array)
                    .expect(key)
                    .iter()
                    .map(|j| j.as_u64().unwrap() as usize)
                    .collect()
            };
            for rule in tiny.get("rules").unwrap().as_array().unwrap() {
                let (ant, cons) = (indices(rule, "antecedent"), indices(rule, "consequent"));
                assert!(
                    exact_flat.rules.iter().any(|r| r.antecedent == ant && r.consequent == cons),
                    "sampled rule {ant:?} ⇒ {cons:?} missing from the exact set"
                );
            }
        }
    }
}

#[test]
fn zero_budget_sampler_reports_partial_coverage_on_the_wire() {
    let relation = wbcd_relation(TUPLES, 0.1, 20260707);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let config = wbcd_engine_config(2);
    let metric = config.metric;
    let mut engine = engine_at(2, &relation, &partitioning);
    let query = ranked_query();
    let exact = engine.query(&query).expect("exact query");
    assert!(
        exact.artifacts.cliques.len() >= 2,
        "need at least two cliques for a >1 pair space, got {}",
        exact.artifacts.cliques.len()
    );

    // A zero budget still examines exactly one pair — deterministically
    // partial, so the wire response must carry the honesty keys.
    let sampled = dar_rank::mine_budgeted(&exact.artifacts, metric, &query, Duration::ZERO);
    assert!(
        sampled.coverage > 0.0 && sampled.coverage < 1.0,
        "one pair of many must be a strict fraction, got {}",
        sampled.coverage
    );
    assert!(sampled.truncated);

    let spec = RankSpec::from_query(&query, exact.artifacts.graph.clusters(), TUPLES as u64);
    let ranked = dar_rank::rank(sampled.rules, &spec);
    let outcome = QueryOutcome {
        rules: ranked.rules,
        values: ranked.values,
        truncated: true,
        rules_in: ranked.rules_in,
        pruned: ranked.pruned,
        coverage: Some(sampled.coverage),
        ..exact.clone()
    };
    let line = query_response(&outcome).encode();
    let parsed = json::parse(&line).unwrap();
    assert_eq!(parsed.get("approx").and_then(Json::as_bool), Some(true), "got: {line}");
    let wire_coverage = parsed.get("coverage").and_then(Json::as_f64).expect("coverage key");
    assert!((wire_coverage - sampled.coverage).abs() < 1e-12, "got: {line}");
}
