//! End-to-end observability: a server with a Prometheus exposition
//! listener and a WAL, driven through a real ingest + query + stats
//! cycle over TCP. Asserts:
//!
//! * the `stats` verb's p50/p99 equal the quantiles derived from the
//!   server's own latency histogram (the reservoir is gone);
//! * the `metrics` verb returns the registry with families from every
//!   instrumented crate;
//! * a Prometheus scrape of `--metrics-addr` contains `# TYPE` lines and
//!   families from all five instrumented crates — including zero-valued
//!   ones that have seen no traffic (eager registration).

use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{Client, ServeConfig, Server};
use mining::RuleQuery;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let k = i + offset;
            let jitter = (k % 9) as f64 * 0.01;
            match k % 2 {
                0 => vec![jitter, 100.0 + jitter],
                _ => vec![50.0 + jitter, 200.0 + jitter],
            }
        })
        .collect()
}

fn engine() -> DarEngine {
    let schema = Schema::interval_attrs(2);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.1;
    DarEngine::new(partitioning, config).unwrap()
}

fn timeout() -> Duration {
    Duration::from_secs(10)
}

fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").expect("send scrape");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read exposition");
    out
}

#[test]
fn exposition_covers_all_crates_and_stats_match_histogram() {
    let dir = std::env::temp_dir().join("dar_serve_metrics_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("metrics.wal");
    let _ = std::fs::remove_file(&wal_path);

    let config = ServeConfig {
        threads: 2,
        read_timeout: timeout(),
        write_timeout: timeout(),
        wal_path: Some(wal_path.clone()),
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    };
    let handle = Server::start(engine(), "127.0.0.1:0", config).unwrap();
    let metrics_addr = handle.metrics_addr().expect("exposer bound");

    // --- drive a real workload over TCP --------------------------------
    let mut client = Client::connect(handle.addr(), timeout()).unwrap();
    assert_eq!(client.ingest(rows(60, 0)).unwrap(), 60);
    let outcome = client.query(RuleQuery::default()).unwrap();
    assert_eq!(outcome.get("ok").and_then(|v| v.as_bool()), Some(true));
    let stats_wire = client.stats().unwrap();
    // The wire snapshot was taken while the stats request itself was
    // still unrecorded, so only shape is asserted on it; exact equality
    // is checked below once the population quiesces.
    let server_json = stats_wire.get("server").expect("server stats on the wire");
    assert!(server_json.get("p50_us").and_then(|v| v.as_u64()).is_some());
    assert!(server_json.get("p99_us").and_then(|v| v.as_u64()).is_some());

    // --- metrics verb returns the registry -----------------------------
    let metrics_wire = client.metrics().unwrap();

    // --- stats verb p50/p99 equal histogram-derived quantiles ----------
    // Quiesce: latencies are recorded after each response is flushed, so
    // wait until all four requests (ingest, query, stats, metrics) have
    // landed; nothing else records after that.
    let deadline = std::time::Instant::now() + timeout();
    while handle.latency_snapshot().count < 4 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let snap = handle.stats();
    let hist = handle.latency_snapshot();
    assert_eq!(snap.p50_us, hist.quantile(0.50) / 1_000, "p50 must be histogram-derived");
    assert_eq!(snap.p99_us, hist.quantile(0.99) / 1_000, "p99 must be histogram-derived");
    assert_eq!(snap.requests_sampled, hist.count, "every request is recorded");
    assert_eq!(snap.requests_sampled, 4, "ingest + query + stats + metrics recorded");
    let registry = metrics_wire.get("registry").expect("registry embedded");
    let families: Vec<String> = registry
        .get("metrics")
        .and_then(|m| m.as_array())
        .expect("metrics array")
        .iter()
        .filter_map(|m| m.get("name").and_then(|n| n.as_str()).map(str::to_string))
        .collect();
    for family in [
        "dar_birch_inserts_total",
        "dar_mining_graph_builds_total",
        "dar_engine_ingest_batches_total",
        "dar_durable_wal_appends_total",
        "dar_serve_requests_total",
    ] {
        assert!(families.iter().any(|f| f == family), "{family} missing from metrics verb");
    }
    assert!(registry.get("events").and_then(|e| e.as_array()).is_some(), "journal embedded");

    // --- Prometheus scrape covers all five crates ----------------------
    let text = scrape(metrics_addr);
    assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");
    assert!(text.contains("text/plain"), "{text}");
    for family in [
        "# TYPE dar_birch_inserts_total counter",
        "# TYPE dar_birch_rebuilds_total counter", // zero-valued, eagerly registered
        "# TYPE dar_mining_cliques_total counter",
        "# TYPE dar_mining_phase2_build_ns histogram",
        "# TYPE dar_engine_phase1_insert_ns histogram",
        "# TYPE dar_engine_cache_misses_total counter",
        "# TYPE dar_durable_wal_appends_total counter",
        "# TYPE dar_serve_requests_total counter",
        "# TYPE dar_serve_request_ns histogram",
        "# TYPE dar_serve_degraded gauge",
    ] {
        assert!(text.contains(family), "scrape missing {family:?}:\n{text}");
    }
    // Labelled per-verb series with real counts.
    assert!(text.contains("dar_serve_requests_total{verb=\"ingest\"}"), "{text}");
    assert!(text.contains("dar_serve_requests_total{verb=\"query\"}"), "{text}");
    // The WAL saw the acknowledged batch.
    let wal_appends = text
        .lines()
        .find(|l| l.starts_with("dar_durable_wal_appends_total"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("wal appends line parses");
    assert!(wal_appends >= 1, "the acknowledged ingest batch reached the WAL");

    // --- graceful shutdown also stops the exposer ----------------------
    client.shutdown().unwrap();
    drop(client);
    let summary = handle.join().unwrap();
    assert!(summary.stats.total_requests() >= 4);
    assert!(
        TcpStream::connect(metrics_addr).is_err() || {
            std::thread::sleep(Duration::from_millis(100));
            TcpStream::connect(metrics_addr).is_err()
        },
        "metrics listener still accepting after shutdown"
    );
}
