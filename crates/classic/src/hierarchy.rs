//! Generalized (multi-level) association rules over item taxonomies —
//! Srikant & Agrawal, *Mining Generalized Association Rules* (VLDB 1995)
//! and Han & Fu (VLDB 1995), `[SA95]`/`[HF95]` in the paper.
//!
//! This is the *other* strategy Section 1 describes for taming large
//! domains: instead of grouping ordered values into intervals, group
//! values under a semantic **is-a hierarchy** ("a hierarchy of
//! continent-country-region-city may be used to group geographic values")
//! and mine rules at every level. The standard construction extends each
//! transaction with the ancestors of its items and runs Apriori; rules
//! where the consequent is an ancestor of an antecedent item (or vice
//! versa) are pruned as trivially redundant.

use crate::apriori::{apriori, AprioriConfig};
use crate::rules::{generate_rules, AssocRule};
use crate::transactions::{ItemId, TransactionSet};

/// An is-a taxonomy over item ids: `parent[i]` is the direct generalization
/// of item `i` (or `None` for roots). Items and their ancestors share one
/// id space.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Taxonomy {
    parent: Vec<Option<ItemId>>,
}

impl Taxonomy {
    /// Builds a taxonomy for `num_items` items with no edges.
    pub fn new(num_items: u32) -> Self {
        Taxonomy { parent: vec![None; num_items as usize] }
    }

    /// Declares `parent` as the direct generalization of `child`, growing
    /// the id space as needed.
    ///
    /// # Panics
    /// Panics if the edge would introduce a cycle.
    pub fn set_parent(&mut self, child: ItemId, parent: ItemId) {
        let needed = (child.0.max(parent.0) + 1) as usize;
        if self.parent.len() < needed {
            self.parent.resize(needed, None);
        }
        self.parent[child.0 as usize] = Some(parent);
        // Cycle check: walking up from `child` must terminate.
        let mut seen = 0;
        let mut cur = Some(parent);
        while let Some(p) = cur {
            seen += 1;
            assert!(seen <= self.parent.len(), "taxonomy cycle introduced at {child} → {parent}");
            cur = self.parent.get(p.0 as usize).copied().flatten();
        }
    }

    /// The direct parent of an item.
    pub fn parent_of(&self, item: ItemId) -> Option<ItemId> {
        self.parent.get(item.0 as usize).copied().flatten()
    }

    /// All strict ancestors of `item`, nearest first.
    pub fn ancestors(&self, item: ItemId) -> Vec<ItemId> {
        let mut out = Vec::new();
        let mut cur = self.parent_of(item);
        while let Some(p) = cur {
            out.push(p);
            cur = self.parent_of(p);
        }
        out
    }

    /// Whether `ancestor` is a strict ancestor of `item`.
    pub fn is_ancestor(&self, ancestor: ItemId, item: ItemId) -> bool {
        self.ancestors(item).contains(&ancestor)
    }

    /// One more than the largest known item id.
    pub fn num_items(&self) -> u32 {
        self.parent.len() as u32
    }
}

/// Configuration for the generalized miner.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralizedConfig {
    /// Absolute minimum support.
    pub min_support: u64,
    /// Minimum rule confidence.
    pub min_confidence: f64,
    /// Cap on itemset size (0 = unbounded).
    pub max_len: usize,
}

impl Default for GeneralizedConfig {
    fn default() -> Self {
        GeneralizedConfig { min_support: 2, min_confidence: 0.5, max_len: 4 }
    }
}

/// Mines generalized association rules: extends every transaction with the
/// ancestors of its items, runs Apriori, derives rules, and prunes rules
/// that relate an item to its own ancestor (always 100% confident, never
/// informative).
pub fn mine_generalized(
    tx: &TransactionSet,
    taxonomy: &Taxonomy,
    config: &GeneralizedConfig,
) -> Vec<AssocRule> {
    let mut extended = TransactionSet::new();
    for t in tx.transactions() {
        let mut items = t.clone();
        for &item in t {
            items.extend(taxonomy.ancestors(item));
        }
        extended.push(items);
    }
    let freq = apriori(
        &extended,
        &AprioriConfig { min_support: config.min_support, max_len: config.max_len },
    );
    generate_rules(&freq, config.min_confidence)
        .into_iter()
        .filter(|rule| !relates_item_to_own_ancestor(rule, taxonomy))
        .collect()
}

/// Whether any item on one side of the rule is an ancestor of an item on
/// the other side (or within the same side) — such rules are redundant.
fn relates_item_to_own_ancestor(rule: &AssocRule, taxonomy: &Taxonomy) -> bool {
    let all: Vec<ItemId> = rule.antecedent.iter().chain(&rule.consequent).copied().collect();
    for &a in &all {
        for &b in &all {
            if a != b && taxonomy.is_ancestor(a, b) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(i: u32) -> ItemId {
        ItemId(i)
    }

    /// Items 0=jacket, 1=ski-pants, 2=shoes; 10=outerwear (0,1),
    /// 11=clothes (10, 2's sibling hiking-boots omitted).
    fn taxonomy() -> Taxonomy {
        let mut t = Taxonomy::new(3);
        t.set_parent(item(0), item(10));
        t.set_parent(item(1), item(10));
        t.set_parent(item(10), item(11));
        t.set_parent(item(2), item(11));
        t
    }

    #[test]
    fn ancestors_walk_to_the_root() {
        let t = taxonomy();
        assert_eq!(t.ancestors(item(0)), vec![item(10), item(11)]);
        assert_eq!(t.ancestors(item(2)), vec![item(11)]);
        assert_eq!(t.ancestors(item(11)), vec![]);
        assert!(t.is_ancestor(item(11), item(0)));
        assert!(!t.is_ancestor(item(0), item(11)));
        assert_eq!(t.parent_of(item(1)), Some(item(10)));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_are_rejected() {
        let mut t = Taxonomy::new(2);
        t.set_parent(item(0), item(1));
        t.set_parent(item(1), item(0));
    }

    #[test]
    fn generalized_rules_surface_at_the_ancestor_level() {
        // Neither jacket nor ski-pants alone co-occurs with shoes often
        // enough, but "outerwear ⇒ shoes" holds: the SA95 motivating shape.
        let tx = TransactionSet::from_raw(&[
            &[0, 2], // jacket, shoes
            &[1, 2], // ski-pants, shoes
            &[0, 2],
            &[1, 2],
            &[0],
        ]);
        let rules = mine_generalized(
            &tx,
            &taxonomy(),
            &GeneralizedConfig { min_support: 4, min_confidence: 0.7, max_len: 3 },
        );
        let outerwear_shoes = rules
            .iter()
            .find(|r| r.antecedent == vec![item(2)] && r.consequent == vec![item(10)])
            .or_else(|| {
                rules
                    .iter()
                    .find(|r| r.antecedent == vec![item(10)] && r.consequent == vec![item(2)])
            });
        let rule = outerwear_shoes.expect("outerwear/shoes rule must be found");
        assert_eq!(rule.support, 4);
        // Leaf-level rules can't reach support 4 individually.
        assert!(rules
            .iter()
            .all(|r| !(r.antecedent == vec![item(0)] && r.consequent == vec![item(2)])));
    }

    #[test]
    fn ancestor_self_rules_are_pruned() {
        // jacket ⇒ outerwear would be 100% confident; it must not appear.
        let tx = TransactionSet::from_raw(&[&[0], &[0], &[0], &[1]]);
        let rules = mine_generalized(
            &tx,
            &taxonomy(),
            &GeneralizedConfig { min_support: 2, min_confidence: 0.1, max_len: 3 },
        );
        for rule in &rules {
            assert!(
                !relates_item_to_own_ancestor(rule, &taxonomy()),
                "redundant rule survived: {rule:?}"
            );
        }
        // In this degenerate dataset *every* candidate rule is
        // item-vs-ancestor, so none survive.
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn empty_taxonomy_degrades_to_plain_apriori_rules() {
        let tx = TransactionSet::from_raw(&[&[1, 2], &[1, 2], &[2]]);
        let flat = Taxonomy::new(3);
        let rules = mine_generalized(
            &tx,
            &flat,
            &GeneralizedConfig { min_support: 2, min_confidence: 0.5, max_len: 2 },
        );
        assert!(rules
            .iter()
            .any(|r| r.antecedent == vec![item(1)] && r.consequent == vec![item(2)]));
    }
}
