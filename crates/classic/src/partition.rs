//! Interval partitioning strategies for quantitative attributes.
//!
//! [`equi_depth`] is the Srikant–Agrawal (SIGMOD 1996) base partitioning the
//! paper's Figure 1 critiques: it considers only the *ordinal* properties of
//! the data, so close values can land in different intervals and distant
//! values in the same one. [`gap_partition`] is the distance-aware
//! alternative shown in Figure 1's right column. The full distance-based
//! machinery (clusters with diameter/frequency thresholds) lives in the
//! `mining` crate; `gap_partition` is the 1-D special case that suffices for
//! the figure.

use dar_core::Interval;

/// Equi-depth partitioning: in value order, the first `depth` values form
/// one interval, the next `depth` the second, and so on (Section 2 of the
/// paper describing [SA96]). The input must be sorted ascending; duplicates
/// are kept with multiplicity, exactly as a depth-based split sees them.
///
/// Returns the closed interval of each group. The last group may be smaller.
///
/// # Panics
/// Panics if `depth == 0`.
pub fn equi_depth(sorted_values: &[f64], depth: usize) -> Vec<Interval> {
    assert!(depth > 0, "depth must be positive");
    sorted_values
        .chunks(depth)
        .map(|chunk| Interval::new(chunk[0], chunk[chunk.len() - 1]))
        .collect()
}

/// Tie-aware equi-depth partitioning: like [`equi_depth`], but every cut is
/// extended past duplicates of the boundary value, so equal values never
/// straddle two intervals. Returns the intervals together with their exact
/// tuple counts. This is the mapping-consistent variant the QAR miner needs:
/// with it, an interval's extension (tuples whose value falls inside it)
/// equals its count.
///
/// # Panics
/// Panics if `depth == 0`.
pub fn equi_depth_tie_aware(sorted_values: &[f64], depth: usize) -> (Vec<Interval>, Vec<u64>) {
    assert!(depth > 0, "depth must be positive");
    let mut intervals = Vec::new();
    let mut counts = Vec::new();
    let n = sorted_values.len();
    let mut start = 0usize;
    while start < n {
        let mut end = (start + depth).min(n);
        // Extend past duplicates of the boundary value.
        while end < n && sorted_values[end] == sorted_values[end - 1] {
            end += 1;
        }
        intervals.push(Interval::new(sorted_values[start], sorted_values[end - 1]));
        counts.push((end - start) as u64);
        start = end;
    }
    (intervals, counts)
}

/// Distance-based 1-D partitioning: a new interval starts whenever the gap
/// to the next value exceeds `max_gap`. This reproduces the "Distance-based"
/// column of the paper's Figure 1 and honours Goal 1 (interval quality that
/// reflects the distance between data points).
///
/// The input must be sorted ascending.
///
/// ```
/// use classic::gap_partition;
/// // The paper's Figure 1 salaries, in thousands.
/// let parts = gap_partition(&[18.0, 30.0, 31.0, 80.0, 81.0, 82.0], 5.0);
/// assert_eq!(parts.len(), 3);
/// assert_eq!((parts[1].lo, parts[1].hi), (30.0, 31.0));
/// assert_eq!((parts[2].lo, parts[2].hi), (80.0, 82.0));
/// ```
pub fn gap_partition(sorted_values: &[f64], max_gap: f64) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut iter = sorted_values.iter().copied();
    let Some(first) = iter.next() else {
        return out;
    };
    let mut current = Interval::point(first);
    let mut last = first;
    for v in iter {
        if v - last > max_gap {
            out.push(current);
            current = Interval::point(v);
        } else {
            current.extend(v);
        }
        last = v;
    }
    out.push(current);
    out
}

/// The number of base intervals required for K-partial completeness under
/// equi-depth partitioning (Srikant & Agrawal, SIGMOD 1996):
/// `⌈2·m / (minsup · (K − 1))⌉`, where `m` is the number of quantitative
/// attributes, `minsup` the minimum support as a fraction, and `K > 1` the
/// partial completeness level.
///
/// # Panics
/// Panics if `k <= 1` or `minsup_frac <= 0`.
pub fn partial_completeness_intervals(num_attrs: usize, minsup_frac: f64, k: f64) -> usize {
    assert!(k > 1.0, "partial completeness level must exceed 1");
    assert!(minsup_frac > 0.0, "minimum support fraction must be positive");
    (2.0 * num_attrs as f64 / (minsup_frac * (k - 1.0))).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The salary column of the paper's Figure 1.
    const FIG1: [f64; 6] = [18_000.0, 30_000.0, 31_000.0, 80_000.0, 81_000.0, 82_000.0];

    #[test]
    fn figure1_equi_depth() {
        // Depth 2 reproduces the left column: [18K,30K], [31K,80K], [81K,82K].
        let parts = equi_depth(&FIG1, 2);
        assert_eq!(
            parts,
            vec![
                Interval::new(18_000.0, 30_000.0),
                Interval::new(31_000.0, 80_000.0),
                Interval::new(81_000.0, 82_000.0),
            ]
        );
    }

    #[test]
    fn figure1_distance_based() {
        // A gap threshold between 2K and 12K reproduces the right column:
        // [18K,18K], [30K,31K], [80K,82K].
        let parts = gap_partition(&FIG1, 5_000.0);
        assert_eq!(
            parts,
            vec![
                Interval::point(18_000.0),
                Interval::new(30_000.0, 31_000.0),
                Interval::new(80_000.0, 82_000.0),
            ]
        );
    }

    #[test]
    fn equi_depth_uneven_tail() {
        let parts = equi_depth(&[1.0, 2.0, 3.0, 4.0, 5.0], 2);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2], Interval::point(5.0));
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn equi_depth_rejects_zero_depth() {
        equi_depth(&[1.0], 0);
    }

    #[test]
    fn tie_aware_never_splits_duplicates() {
        // Ages with heavy ties: depth 3 would cut inside the run of 21s.
        let vals = [20.0, 20.0, 21.0, 21.0, 21.0, 21.0, 25.0];
        let (ivs, counts) = equi_depth_tie_aware(&vals, 3);
        assert_eq!(counts.iter().sum::<u64>(), vals.len() as u64);
        // No value appears in two intervals.
        for w in ivs.windows(2) {
            assert!(w[0].hi < w[1].lo, "{w:?}");
        }
        // Counts equal the interval extensions.
        for (iv, &c) in ivs.iter().zip(&counts) {
            let ext = vals.iter().filter(|v| iv.contains(**v)).count() as u64;
            assert_eq!(ext, c);
        }
    }

    #[test]
    fn tie_aware_matches_plain_on_distinct_values() {
        let (ivs, counts) = equi_depth_tie_aware(&FIG1, 2);
        assert_eq!(ivs, equi_depth(&FIG1, 2));
        assert_eq!(counts, vec![2, 2, 2]);
    }

    #[test]
    fn gap_partition_edges() {
        assert!(gap_partition(&[], 1.0).is_empty());
        assert_eq!(gap_partition(&[3.0], 1.0), vec![Interval::point(3.0)]);
        // All in one group with a huge gap allowance.
        assert_eq!(gap_partition(&FIG1, 1e9).len(), 1);
        // Every value separate with zero gap allowance (all gaps > 0).
        assert_eq!(gap_partition(&FIG1, 0.0).len(), 6);
        // Duplicates never split (gap 0 ≤ any non-negative max_gap).
        assert_eq!(gap_partition(&[1.0, 1.0, 1.0], 0.0).len(), 1);
    }

    #[test]
    fn partial_completeness_formula() {
        // SA96 running example: m=2 attrs, minsup 40%, K=1.5 → 2*2/(0.4*0.5)=20.
        assert_eq!(partial_completeness_intervals(2, 0.4, 1.5), 20);
        // Finer completeness (smaller K) needs more intervals.
        assert!(
            partial_completeness_intervals(2, 0.4, 1.1)
                > partial_completeness_intervals(2, 0.4, 2.0)
        );
    }

    #[test]
    #[should_panic(expected = "partial completeness level")]
    fn partial_completeness_rejects_k_of_one() {
        partial_completeness_intervals(1, 0.1, 1.0);
    }
}
