//! The Apriori frequent-itemset miner (Agrawal & Srikant, VLDB 1994).
//!
//! The level-wise structure is exactly the paper's Section 3 outline:
//! *Scan 1* counts 1-itemsets, then alternate *Prune i* (drop candidates
//! below the support threshold `s0`) and *Scan i* (count candidates of size
//! `i` whose `i−1`-subsets are all frequent).

use crate::transactions::{ItemId, TransactionSet};
use std::collections::{HashMap, HashSet};

/// Configuration for an Apriori run.
#[derive(Debug, Clone, PartialEq)]
pub struct AprioriConfig {
    /// Absolute minimum support `s0` (tuple count).
    pub min_support: u64,
    /// Stop after itemsets of this size (0 = unbounded). Large transactions
    /// make subset enumeration combinatorial; a cap keeps runs predictable.
    pub max_len: usize,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        AprioriConfig { min_support: 1, max_len: 0 }
    }
}

/// Frequent itemsets grouped by size: `levels[k]` holds the frequent
/// `(k+1)`-itemsets and their support counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FrequentItemsets {
    levels: Vec<HashMap<Vec<ItemId>, u64>>,
}

impl FrequentItemsets {
    /// Frequent itemsets of size `k` (1-based) with their counts.
    pub fn level(&self, k: usize) -> Option<&HashMap<Vec<ItemId>, u64>> {
        if k == 0 {
            return None;
        }
        self.levels.get(k - 1)
    }

    /// Largest itemset size found.
    pub fn max_size(&self) -> usize {
        self.levels.len()
    }

    /// Support of a specific itemset (must be sorted).
    pub fn support(&self, itemset: &[ItemId]) -> Option<u64> {
        self.level(itemset.len())?.get(itemset).copied()
    }

    /// Iterate over every frequent itemset with its count.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<ItemId>, u64)> {
        self.levels.iter().flat_map(|m| m.iter().map(|(k, &v)| (k, v)))
    }

    /// Total number of frequent itemsets across all sizes.
    pub fn total(&self) -> usize {
        self.levels.iter().map(HashMap::len).sum()
    }

    /// Appends the next level (used by the alternative miners — PCY,
    /// partitioned — that share this result type).
    pub(crate) fn push_level(&mut self, level: HashMap<Vec<ItemId>, u64>) {
        self.levels.push(level);
    }
}

/// Runs Apriori over `tx`, returning all frequent itemsets.
///
/// ```
/// use classic::{apriori, AprioriConfig, ItemId, TransactionSet};
/// let tx = TransactionSet::from_raw(&[&[1, 3], &[2, 3], &[1, 2, 3]]);
/// let freq = apriori(&tx, &AprioriConfig { min_support: 2, max_len: 0 });
/// assert_eq!(freq.support(&[ItemId(3)]), Some(3));
/// assert_eq!(freq.support(&[ItemId(1), ItemId(3)]), Some(2));
/// assert_eq!(freq.support(&[ItemId(1), ItemId(2)]), None); // support 1
/// ```
pub fn apriori(tx: &TransactionSet, config: &AprioriConfig) -> FrequentItemsets {
    let mut result = FrequentItemsets::default();
    if tx.is_empty() {
        return result;
    }

    // Scan 1: count individual items with a dense array.
    let mut counts = vec![0u64; tx.num_items() as usize];
    for t in tx.transactions() {
        for item in t {
            counts[item.0 as usize] += 1;
        }
    }
    let level: HashMap<Vec<ItemId>, u64> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= config.min_support)
        .map(|(i, &c)| (vec![ItemId(i as u32)], c))
        .collect();

    if level.is_empty() {
        return result;
    }
    result.levels.push(level);
    for next in continue_from(tx, &result, config) {
        result.levels.push(next);
    }
    result
}

/// Continues level-wise mining from the last level of `seed`, returning the
/// further frequent levels (sizes `seed.max_size()+1`, `+2`, …). Shared by
/// [`apriori`] and the alternative first-phase algorithms (PCY,
/// partitioned), which compute the early levels differently.
pub(crate) fn continue_from(
    tx: &TransactionSet,
    seed: &FrequentItemsets,
    config: &AprioriConfig,
) -> Vec<HashMap<Vec<ItemId>, u64>> {
    let mut out = Vec::new();
    let mut k = seed.max_size();
    if k == 0 {
        return out;
    }
    let mut current: &HashMap<Vec<ItemId>, u64> = seed.level(k).expect("seed has its last level");
    loop {
        if config.max_len != 0 && k >= config.max_len {
            break;
        }
        let candidates = generate_candidates(current, k);
        if candidates.is_empty() {
            break;
        }
        // Scan k+1: count candidates by enumerating (k+1)-subsets of each
        // transaction and probing the candidate table.
        let mut counted: HashMap<Vec<ItemId>, u64> =
            candidates.iter().map(|c| (c.clone(), 0)).collect();
        let mut subset = vec![ItemId(0); k + 1];
        for t in tx.transactions() {
            if t.len() < k + 1 {
                continue;
            }
            count_subsets(t, 0, 0, &mut subset, &mut counted);
        }
        let level: HashMap<Vec<ItemId>, u64> =
            counted.into_iter().filter(|&(_, c)| c >= config.min_support).collect();
        if level.is_empty() {
            break;
        }
        out.push(level);
        current = out.last().expect("just pushed");
        k += 1;
    }
    out
}

/// Apriori-gen: join frequent k-itemsets sharing a (k−1)-prefix, then prune
/// candidates with an infrequent k-subset.
fn generate_candidates(frequent: &HashMap<Vec<ItemId>, u64>, k: usize) -> Vec<Vec<ItemId>> {
    let mut sorted: Vec<&Vec<ItemId>> = frequent.keys().collect();
    sorted.sort();
    let freq_set: HashSet<&Vec<ItemId>> = frequent.keys().collect();
    let mut candidates = Vec::new();
    for i in 0..sorted.len() {
        for j in (i + 1)..sorted.len() {
            let (a, b) = (sorted[i], sorted[j]);
            if a[..k - 1] != b[..k - 1] {
                // `sorted` is lexicographic; once prefixes diverge they stay
                // diverged for this `i`.
                break;
            }
            let mut cand = a.clone();
            cand.push(b[k - 1]);
            // Prune: every k-subset must be frequent.
            let mut ok = true;
            let mut sub = Vec::with_capacity(k);
            for skip in 0..cand.len() {
                // Subsets missing the last or second-to-last element are `a`
                // and `b` themselves; still cheap to check uniformly.
                sub.clear();
                sub.extend(cand.iter().enumerate().filter(|&(x, _)| x != skip).map(|(_, &v)| v));
                if !freq_set.contains(&sub) {
                    ok = false;
                    break;
                }
            }
            if ok {
                candidates.push(cand);
            }
        }
    }
    candidates
}

/// Recursively enumerates the `subset.len()`-subsets of sorted transaction
/// `t`, incrementing each one present in `counted`.
fn count_subsets(
    t: &[ItemId],
    start: usize,
    depth: usize,
    subset: &mut Vec<ItemId>,
    counted: &mut HashMap<Vec<ItemId>, u64>,
) {
    let want = subset.len();
    if depth == want {
        if let Some(c) = counted.get_mut(subset.as_slice()) {
            *c += 1;
        }
        return;
    }
    // Not enough items left to complete the subset?
    let remaining = want - depth;
    for i in start..=t.len().saturating_sub(remaining) {
        subset[depth] = t[i];
        count_subsets(t, i + 1, depth + 1, subset, counted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(i: u32) -> ItemId {
        ItemId(i)
    }

    /// The classic AIS'93 example-style dataset.
    fn sample() -> TransactionSet {
        TransactionSet::from_raw(&[&[1, 3, 4], &[2, 3, 5], &[1, 2, 3, 5], &[2, 5]])
    }

    #[test]
    fn textbook_example() {
        let freq = apriori(&sample(), &AprioriConfig { min_support: 2, max_len: 0 });
        // L1 = {1},{2},{3},{5}
        assert_eq!(freq.level(1).unwrap().len(), 4);
        assert_eq!(freq.support(&[item(1)]), Some(2));
        assert_eq!(freq.support(&[item(4)]), None);
        // L2 = {1,3},{2,3},{2,5},{3,5}
        assert_eq!(freq.level(2).unwrap().len(), 4);
        assert_eq!(freq.support(&[item(2), item(5)]), Some(3));
        // L3 = {2,3,5}
        assert_eq!(freq.level(3).unwrap().len(), 1);
        assert_eq!(freq.support(&[item(2), item(3), item(5)]), Some(2));
        assert_eq!(freq.max_size(), 3);
        assert_eq!(freq.total(), 9);
    }

    #[test]
    fn max_len_caps_levels() {
        let freq = apriori(&sample(), &AprioriConfig { min_support: 2, max_len: 1 });
        assert_eq!(freq.max_size(), 1);
    }

    #[test]
    fn empty_inputs() {
        let freq = apriori(&TransactionSet::new(), &AprioriConfig::default());
        assert_eq!(freq.total(), 0);
        assert!(freq.level(1).is_none());
        assert!(freq.level(0).is_none());
    }

    #[test]
    fn high_support_prunes_everything() {
        let freq = apriori(&sample(), &AprioriConfig { min_support: 5, max_len: 0 });
        assert_eq!(freq.total(), 0);
    }

    #[test]
    fn support_is_transaction_count_not_occurrences() {
        // Duplicate items in one transaction count once.
        let mut tx = TransactionSet::new();
        tx.push(vec![item(0), item(0)]);
        tx.push(vec![item(0)]);
        let freq = apriori(&tx, &AprioriConfig { min_support: 2, max_len: 0 });
        assert_eq!(freq.support(&[item(0)]), Some(2));
    }

    #[test]
    fn matches_brute_force_on_random_data() {
        // Cross-check against a brute-force counter on a small random set.
        use std::collections::BTreeSet;
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut tx = TransactionSet::new();
        for _ in 0..40 {
            let items: Vec<ItemId> =
                (0..6).filter(|_| next() % 2 == 0).map(|i| item(i as u32)).collect();
            tx.push(items);
        }
        let min_support = 5;
        let freq = apriori(&tx, &AprioriConfig { min_support, max_len: 0 });
        // Brute force: count all subsets of {0..5} of size <= 3.
        let universe: Vec<ItemId> = (0..6).map(item).collect();
        let mut brute: HashMap<Vec<ItemId>, u64> = HashMap::new();
        for mask in 1u32..(1 << 6) {
            let set: Vec<ItemId> = universe
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect();
            let count = tx
                .transactions()
                .iter()
                .filter(|t| {
                    let ts: BTreeSet<_> = t.iter().collect();
                    set.iter().all(|i| ts.contains(i))
                })
                .count() as u64;
            if count >= min_support {
                brute.insert(set, count);
            }
        }
        let apriori_all: HashMap<Vec<ItemId>, u64> =
            freq.iter().map(|(k, v)| (k.clone(), v)).collect();
        assert_eq!(apriori_all, brute);
    }
}
