//! The two-pass partitioned miner of Savasere, Omiecinski & Navathe
//! (VLDB 1995) — `[SON95]` in the paper's survey.
//!
//! Pass 1 splits the transactions into `k` chunks and mines each chunk
//! locally at a proportionally scaled support threshold; the union of local
//! frequent itemsets is the global candidate set (any globally frequent
//! itemset must be locally frequent in at least one chunk, by pigeonhole).
//! Pass 2 counts the candidates exactly. Results are identical to
//! Apriori's; only the scan behaviour differs (two sequential passes,
//! bounded memory per chunk).

use crate::apriori::{apriori, AprioriConfig, FrequentItemsets};
use crate::transactions::{is_subset, ItemId, TransactionSet};
use std::collections::{HashMap, HashSet};

/// Configuration for the partitioned miner.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedConfig {
    /// Absolute minimum support `s0` over the whole transaction set.
    pub min_support: u64,
    /// Stop after itemsets of this size (0 = unbounded).
    pub max_len: usize,
    /// Number of chunks for the first pass.
    pub num_partitions: usize,
}

impl Default for PartitionedConfig {
    fn default() -> Self {
        PartitionedConfig { min_support: 1, max_len: 0, num_partitions: 4 }
    }
}

/// Statistics of the first pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionedStats {
    /// Distinct global candidates produced by the local passes.
    pub candidates: usize,
    /// Candidates that turned out globally frequent.
    pub confirmed: usize,
}

/// Runs the partitioned algorithm. Returns the frequent itemsets
/// (identical to Apriori's) plus pass-1 statistics.
pub fn partitioned(
    tx: &TransactionSet,
    config: &PartitionedConfig,
) -> (FrequentItemsets, PartitionedStats) {
    let mut result = FrequentItemsets::default();
    let mut stats = PartitionedStats { candidates: 0, confirmed: 0 };
    let n = tx.len();
    if n == 0 || config.num_partitions == 0 {
        return (result, stats);
    }
    let k = config.num_partitions.min(n);
    let chunk = n.div_ceil(k);
    let support_frac = config.min_support as f64 / n as f64;

    // Pass 1: local mining per chunk; union of local frequent itemsets.
    let mut candidates: HashSet<Vec<ItemId>> = HashSet::new();
    for part in tx.transactions().chunks(chunk) {
        let mut local = TransactionSet::new();
        for t in part {
            local.push(t.clone());
        }
        // Local threshold: same support *fraction* over the chunk,
        // rounded down so borderline itemsets are never missed.
        let local_support = ((support_frac * part.len() as f64).floor() as u64).max(1);
        let freq =
            apriori(&local, &AprioriConfig { min_support: local_support, max_len: config.max_len });
        for (itemset, _) in freq.iter() {
            candidates.insert(itemset.clone());
        }
    }
    stats.candidates = candidates.len();

    // Pass 2: exact global counting of all candidates.
    let mut counts: HashMap<Vec<ItemId>, u64> = candidates.into_iter().map(|c| (c, 0)).collect();
    for t in tx.transactions() {
        for (itemset, count) in counts.iter_mut() {
            if is_subset(itemset, t) {
                *count += 1;
            }
        }
    }

    // Assemble by level.
    let max_size = counts.keys().map(Vec::len).max().unwrap_or(0);
    for size in 1..=max_size {
        let level: HashMap<Vec<ItemId>, u64> = counts
            .iter()
            .filter(|(k, &c)| k.len() == size && c >= config.min_support)
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        if level.is_empty() {
            break;
        }
        stats.confirmed += level.len();
        result.push_level(level);
    }
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TransactionSet {
        TransactionSet::from_raw(&[&[1, 3, 4], &[2, 3, 5], &[1, 2, 3, 5], &[2, 5]])
    }

    fn collect(f: &FrequentItemsets) -> Vec<(Vec<ItemId>, u64)> {
        let mut v: Vec<(Vec<ItemId>, u64)> = f.iter().map(|(k, c)| (k.clone(), c)).collect();
        v.sort();
        v
    }

    #[test]
    fn matches_apriori_on_the_textbook_example() {
        for parts in [1, 2, 3, 4] {
            let (freq, stats) = partitioned(
                &sample(),
                &PartitionedConfig { min_support: 2, max_len: 0, num_partitions: parts },
            );
            let reference = apriori(&sample(), &AprioriConfig { min_support: 2, max_len: 0 });
            assert_eq!(collect(&freq), collect(&reference), "parts {parts}");
            assert!(stats.candidates >= stats.confirmed);
        }
    }

    #[test]
    fn matches_apriori_on_random_data() {
        let mut seed = 0xFEEDu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..10 {
            let mut tx = TransactionSet::new();
            for _ in 0..80 {
                let items: Vec<ItemId> = (0..9).filter(|_| next() % 3 == 0).map(ItemId).collect();
                tx.push(items);
            }
            let min_support = 5 + trial % 6;
            let (freq, _) = partitioned(
                &tx,
                &PartitionedConfig {
                    min_support,
                    max_len: 0,
                    num_partitions: 1 + (trial % 5) as usize,
                },
            );
            let reference = apriori(&tx, &AprioriConfig { min_support, max_len: 0 });
            assert_eq!(collect(&freq), collect(&reference), "trial {trial}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let (freq, _) = partitioned(&TransactionSet::new(), &PartitionedConfig::default());
        assert_eq!(freq.total(), 0);
        let (freq, _) = partitioned(
            &sample(),
            &PartitionedConfig { num_partitions: 0, ..PartitionedConfig::default() },
        );
        assert_eq!(freq.total(), 0);
        // More partitions than transactions degrades to per-transaction
        // chunks but stays correct.
        let (freq, _) = partitioned(
            &sample(),
            &PartitionedConfig { min_support: 2, max_len: 0, num_partitions: 99 },
        );
        let reference = apriori(&sample(), &AprioriConfig { min_support: 2, max_len: 0 });
        assert_eq!(collect(&freq), collect(&reference));
    }
}
