//! The hash-based candidate-pruning algorithm of Park, Chen & Yu
//! (SIGMOD 1995) — `[PCY95]` in the paper's survey of classical
//! association-rule miners (Section 1).
//!
//! During the first scan, every item *pair* in every transaction is hashed
//! into a bucket counter. A candidate 2-itemset can only be frequent if its
//! bucket total reaches the support threshold, so the (usually enormous)
//! candidate-pair set is pruned before the second scan. Levels ≥ 3 proceed
//! exactly like Apriori. The output is identical to [`apriori`]'s — only
//! the candidate space differs — which the tests verify.
//!
//! [`apriori`]: crate::apriori::apriori

use crate::apriori::{AprioriConfig, FrequentItemsets};
use crate::transactions::{ItemId, TransactionSet};
use std::collections::HashMap;

/// Configuration for a PCY run.
#[derive(Debug, Clone, PartialEq)]
pub struct PcyConfig {
    /// Absolute minimum support `s0`.
    pub min_support: u64,
    /// Stop after itemsets of this size (0 = unbounded).
    pub max_len: usize,
    /// Number of hash buckets for the pair-counting filter.
    pub num_buckets: usize,
}

impl Default for PcyConfig {
    fn default() -> Self {
        PcyConfig { min_support: 1, max_len: 0, num_buckets: 1 << 16 }
    }
}

/// Statistics of the hash filter — how much candidate-space the bitmap
/// pruned (reported so benchmarks can show the PCY effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcyStats {
    /// Candidate pairs that survived both the Apriori join and the bucket
    /// filter.
    pub candidates_kept: usize,
    /// Candidate pairs rejected by the bucket filter alone.
    pub candidates_pruned: usize,
    /// Buckets whose total reached the support threshold.
    pub frequent_buckets: usize,
}

/// Deterministic pair-to-bucket hash (a 64-bit mix of both item ids).
fn bucket_of(a: ItemId, b: ItemId, num_buckets: usize) -> usize {
    let mut x = ((a.0 as u64) << 32) | b.0 as u64;
    // SplitMix64 finalizer: cheap, well-distributed, stable across runs.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    (x % num_buckets as u64) as usize
}

/// Runs PCY over `tx`. Returns the frequent itemsets (identical to
/// Apriori's) and the hash-filter statistics.
pub fn pcy(tx: &TransactionSet, config: &PcyConfig) -> (FrequentItemsets, PcyStats) {
    let mut result = FrequentItemsets::default();
    let mut stats = PcyStats { candidates_kept: 0, candidates_pruned: 0, frequent_buckets: 0 };
    if tx.is_empty() || config.num_buckets == 0 {
        return (result, stats);
    }

    // Scan 1: item counts + pair-bucket counts in the same pass.
    let mut counts = vec![0u64; tx.num_items() as usize];
    let mut buckets = vec![0u64; config.num_buckets];
    for t in tx.transactions() {
        for item in t {
            counts[item.0 as usize] += 1;
        }
        for i in 0..t.len() {
            for j in (i + 1)..t.len() {
                buckets[bucket_of(t[i], t[j], config.num_buckets)] += 1;
            }
        }
    }
    stats.frequent_buckets = buckets.iter().filter(|&&b| b >= config.min_support).count();

    let l1: Vec<ItemId> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c >= config.min_support)
        .map(|(i, _)| ItemId(i as u32))
        .collect();
    let level1: HashMap<Vec<ItemId>, u64> =
        l1.iter().map(|&i| (vec![i], counts[i.0 as usize])).collect();
    if level1.is_empty() {
        return (result, stats);
    }
    result.push_level(level1);
    if config.max_len == 1 {
        return (result, stats);
    }

    // Level 2 with the bucket filter: join frequent items pairwise, keep
    // only pairs in frequent buckets, then count exactly.
    let mut candidates: HashMap<Vec<ItemId>, u64> = HashMap::new();
    for i in 0..l1.len() {
        for j in (i + 1)..l1.len() {
            let (a, b) = (l1[i], l1[j]);
            if buckets[bucket_of(a, b, config.num_buckets)] >= config.min_support {
                candidates.insert(vec![a, b], 0);
                stats.candidates_kept += 1;
            } else {
                stats.candidates_pruned += 1;
            }
        }
    }
    for t in tx.transactions() {
        for i in 0..t.len() {
            for j in (i + 1)..t.len() {
                if let Some(c) = candidates.get_mut(&[t[i], t[j]] as &[ItemId]) {
                    *c += 1;
                }
            }
        }
    }
    let level2: HashMap<Vec<ItemId>, u64> =
        candidates.into_iter().filter(|&(_, c)| c >= config.min_support).collect();
    if level2.is_empty() {
        return (result, stats);
    }
    result.push_level(level2);

    // Levels ≥ 3: continue with the standard Apriori machinery, seeded
    // from the PCY level-2 result.
    let tail = crate::apriori::continue_from(
        tx,
        &result,
        &AprioriConfig { min_support: config.min_support, max_len: config.max_len },
    );
    for level in tail {
        result.push_level(level);
    }
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;

    fn sample() -> TransactionSet {
        TransactionSet::from_raw(&[&[1, 3, 4], &[2, 3, 5], &[1, 2, 3, 5], &[2, 5]])
    }

    #[test]
    fn matches_apriori_on_the_textbook_example() {
        let cfg = PcyConfig { min_support: 2, max_len: 0, num_buckets: 64 };
        let (freq, stats) = pcy(&sample(), &cfg);
        let reference = apriori(&sample(), &AprioriConfig { min_support: 2, max_len: 0 });
        assert_eq!(collect(&freq), collect(&reference));
        assert!(stats.frequent_buckets > 0);
        assert_eq!(
            stats.candidates_kept + stats.candidates_pruned,
            4 * 3 / 2, // C(|L1|, 2) with |L1| = 4
        );
    }

    #[test]
    fn tiny_bucket_count_still_correct_just_less_pruning() {
        // One bucket: everything collides, nothing pruned, result identical.
        let cfg = PcyConfig { min_support: 2, max_len: 0, num_buckets: 1 };
        let (freq, stats) = pcy(&sample(), &cfg);
        let reference = apriori(&sample(), &AprioriConfig { min_support: 2, max_len: 0 });
        assert_eq!(collect(&freq), collect(&reference));
        assert_eq!(stats.candidates_pruned, 0);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let (freq, _) = pcy(&TransactionSet::new(), &PcyConfig::default());
        assert_eq!(freq.total(), 0);
        let (freq, _) = pcy(&sample(), &PcyConfig { num_buckets: 0, ..PcyConfig::default() });
        assert_eq!(freq.total(), 0);
        let (freq, _) = pcy(&sample(), &PcyConfig { min_support: 2, max_len: 1, num_buckets: 8 });
        assert_eq!(freq.max_size(), 1);
    }

    #[test]
    fn matches_apriori_on_random_data() {
        let mut seed = 0xC0FFEEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..10 {
            let mut tx = TransactionSet::new();
            for _ in 0..60 {
                let items: Vec<ItemId> = (0..10).filter(|_| next() % 3 == 0).map(ItemId).collect();
                tx.push(items);
            }
            let min_support = 4 + trial % 5;
            let (freq, _) = pcy(&tx, &PcyConfig { min_support, max_len: 0, num_buckets: 32 });
            let reference = apriori(&tx, &AprioriConfig { min_support, max_len: 0 });
            assert_eq!(collect(&freq), collect(&reference), "trial {trial}");
        }
    }

    fn collect(f: &FrequentItemsets) -> Vec<(Vec<ItemId>, u64)> {
        let mut v: Vec<(Vec<ItemId>, u64)> = f.iter().map(|(k, c)| (k.clone(), c)).collect();
        v.sort();
        v
    }
}
