//! Rule derivation from frequent itemsets: `X ⇒ Y` holds with confidence
//! `supp(X ∪ Y)/supp(X)` (Section 1 of the paper).

use crate::apriori::FrequentItemsets;
use crate::transactions::ItemId;

/// A classical association rule with its interest measures.
#[derive(Debug, Clone, PartialEq)]
pub struct AssocRule {
    /// Sorted antecedent itemset (`C1`).
    pub antecedent: Vec<ItemId>,
    /// Sorted consequent itemset (`C2`).
    pub consequent: Vec<ItemId>,
    /// Absolute support count of `antecedent ∪ consequent`.
    pub support: u64,
    /// `supp(X ∪ Y) / supp(X)`.
    pub confidence: f64,
}

/// Derives every rule with confidence at least `min_confidence` from the
/// frequent itemsets: each frequent itemset of size ≥ 2 is split into every
/// non-empty antecedent/consequent bipartition.
pub fn generate_rules(freq: &FrequentItemsets, min_confidence: f64) -> Vec<AssocRule> {
    let mut rules = Vec::new();
    for (itemset, support) in freq.iter() {
        let k = itemset.len();
        if k < 2 {
            continue;
        }
        // Enumerate non-empty proper subsets as antecedents via bitmask.
        // Frequent itemsets are small (k ≤ ~10), so 2^k is fine.
        for mask in 1u32..((1 << k) - 1) {
            let mut antecedent = Vec::with_capacity(k);
            let mut consequent = Vec::with_capacity(k);
            for (i, &item) in itemset.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    antecedent.push(item);
                } else {
                    consequent.push(item);
                }
            }
            let ant_support =
                freq.support(&antecedent).expect("subsets of frequent itemsets are frequent");
            let confidence = support as f64 / ant_support as f64;
            if confidence >= min_confidence {
                rules.push(AssocRule { antecedent, consequent, support, confidence });
            }
        }
    }
    // Deterministic output order regardless of hash-map iteration.
    rules.sort_by(|a, b| a.antecedent.cmp(&b.antecedent).then(a.consequent.cmp(&b.consequent)));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, AprioriConfig};
    use crate::transactions::TransactionSet;

    fn item(i: u32) -> ItemId {
        ItemId(i)
    }

    fn mined() -> FrequentItemsets {
        let tx = TransactionSet::from_raw(&[&[1, 3, 4], &[2, 3, 5], &[1, 2, 3, 5], &[2, 5]]);
        apriori(&tx, &AprioriConfig { min_support: 2, max_len: 0 })
    }

    #[test]
    fn rule_confidences_match_hand_computation() {
        let rules = generate_rules(&mined(), 0.0);
        let find = |ant: &[u32], cons: &[u32]| {
            let a: Vec<ItemId> = ant.iter().map(|&i| item(i)).collect();
            let c: Vec<ItemId> = cons.iter().map(|&i| item(i)).collect();
            rules.iter().find(|r| r.antecedent == a && r.consequent == c).cloned()
        };
        // supp{2,5}=3, supp{2}=3 → conf(2⇒5)=1.0
        let r = find(&[2], &[5]).unwrap();
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert_eq!(r.support, 3);
        // supp{3,5}=2, supp{3}=3 → conf(3⇒5)=2/3
        let r = find(&[3], &[5]).unwrap();
        assert!((r.confidence - 2.0 / 3.0).abs() < 1e-12);
        // 3-itemset rule: {3,5}⇒{2}: supp{2,3,5}=2, supp{3,5}=2 → 1.0
        let r = find(&[3, 5], &[2]).unwrap();
        assert!((r.confidence - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_confidence_filters() {
        let all = generate_rules(&mined(), 0.0);
        let strict = generate_rules(&mined(), 1.0);
        assert!(strict.len() < all.len());
        assert!(strict.iter().all(|r| r.confidence >= 1.0));
    }

    #[test]
    fn no_rules_from_singletons() {
        let tx = TransactionSet::from_raw(&[&[1], &[2]]);
        let freq = apriori(&tx, &AprioriConfig { min_support: 1, max_len: 0 });
        assert!(generate_rules(&freq, 0.0).is_empty());
    }

    #[test]
    fn output_is_sorted_and_exhaustive() {
        let rules = generate_rules(&mined(), 0.0);
        // Every frequent k-itemset (k≥2) yields 2^k − 2 rules at conf ≥ 0.
        let expected: usize = mined()
            .iter()
            .filter(|(s, _)| s.len() >= 2)
            .map(|(s, _)| (1usize << s.len()) - 2)
            .sum();
        assert_eq!(rules.len(), expected);
        let mut sorted = rules.clone();
        sorted
            .sort_by(|a, b| a.antecedent.cmp(&b.antecedent).then(a.consequent.cmp(&b.consequent)));
        assert_eq!(rules, sorted);
    }
}
