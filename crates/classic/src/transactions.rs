//! Items and transaction sets — the input format of the Apriori miner.

use std::fmt;

/// A dense item identifier. Items are whatever the caller encodes: boolean
/// attributes, `(attribute, value)` pairs, interval items (QAR), or clusters
/// (the paper's Dfn 4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u32);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A set of transactions, each a sorted, deduplicated list of items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransactionSet {
    transactions: Vec<Vec<ItemId>>,
    num_items: u32,
}

impl TransactionSet {
    /// Creates an empty transaction set.
    pub fn new() -> Self {
        TransactionSet::default()
    }

    /// Adds a transaction; the item list is sorted and deduplicated.
    pub fn push(&mut self, mut items: Vec<ItemId>) {
        items.sort_unstable();
        items.dedup();
        if let Some(max) = items.last() {
            self.num_items = self.num_items.max(max.0 + 1);
        }
        self.transactions.push(items);
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether there are no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// One more than the largest item id seen (the item-id domain size).
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// The transactions.
    pub fn transactions(&self) -> &[Vec<ItemId>] {
        &self.transactions
    }

    /// Builds a transaction set from raw `u32` item lists (test/demo sugar).
    pub fn from_raw(raw: &[&[u32]]) -> Self {
        let mut tx = TransactionSet::new();
        for items in raw {
            tx.push(items.iter().map(|&i| ItemId(i)).collect());
        }
        tx
    }
}

/// Whether sorted `needle` is a subset of sorted `haystack` (merge scan).
/// Useful for verifying rule extensions against transactions.
pub fn is_subset(needle: &[ItemId], haystack: &[ItemId]) -> bool {
    let mut h = haystack.iter();
    'outer: for n in needle {
        for x in h.by_ref() {
            match x.cmp(n) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_sorts_and_dedups() {
        let mut tx = TransactionSet::new();
        tx.push(vec![ItemId(3), ItemId(1), ItemId(3)]);
        assert_eq!(tx.transactions()[0], vec![ItemId(1), ItemId(3)]);
        assert_eq!(tx.num_items(), 4);
        assert_eq!(tx.len(), 1);
        assert!(!tx.is_empty());
    }

    #[test]
    fn from_raw_roundtrip() {
        let tx = TransactionSet::from_raw(&[&[0, 1], &[2]]);
        assert_eq!(tx.len(), 2);
        assert_eq!(tx.num_items(), 3);
    }

    #[test]
    fn subset_merge_scan() {
        let hay: Vec<ItemId> = [1u32, 3, 5, 9].iter().map(|&i| ItemId(i)).collect();
        let sub: Vec<ItemId> = [3u32, 9].iter().map(|&i| ItemId(i)).collect();
        let not: Vec<ItemId> = [3u32, 4].iter().map(|&i| ItemId(i)).collect();
        assert!(is_subset(&sub, &hay));
        assert!(!is_subset(&not, &hay));
        assert!(is_subset(&[], &hay));
        assert!(!is_subset(&sub, &[]));
        assert!(is_subset(&hay, &hay));
    }
}
