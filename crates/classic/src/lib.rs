//! # classic
//!
//! Baseline miners the paper builds on and compares against:
//!
//! * **Classical association rules** (Agrawal–Imielinski–Swami / AIS'93,
//!   Agrawal–Srikant / AS'94): the [`apriori`] frequent-itemset miner over
//!   [`transactions`], and confidence-based rule derivation in [`rules`].
//!   This is the "Phase II" engine of the paper's Section 4.3.2 and the
//!   comparison point of Theorems 5.1/5.2.
//! * **Generalized (multi-level) association rules** over is-a item
//!   taxonomies ([`hierarchy`], Srikant–Agrawal / Han–Fu, VLDB 1995) —
//!   the paper's Section 1 alternative for taming large domains.
//! * **Alternative classical miners** the paper surveys: the hash-filter
//!   algorithm of Park–Chen–Yu ([`pcy`], SIGMOD 1995) and the two-pass
//!   partitioned algorithm of Savasere–Omiecinski–Navathe
//!   ([`partitioned`], VLDB 1995), both provably output-equivalent to
//!   Apriori.
//! * **Quantitative association rules** (Srikant–Agrawal, SIGMOD 1996): the
//!   equi-depth [`partition`]ing with K-partial completeness, and the
//!   [`qar`] miner mapping interval items over a relation. This is the
//!   approach the paper's Figure 1 and Goal 1 critique.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod hierarchy;
pub mod partition;
pub mod partitioned;
pub mod pcy;
pub mod qar;
pub mod rules;
pub mod transactions;

pub use apriori::{apriori, AprioriConfig, FrequentItemsets};
pub use hierarchy::{mine_generalized, GeneralizedConfig, Taxonomy};
pub use partition::{
    equi_depth, equi_depth_tie_aware, gap_partition, partial_completeness_intervals,
};
pub use partitioned::{partitioned, PartitionedConfig, PartitionedStats};
pub use pcy::{pcy, PcyConfig, PcyStats};
pub use qar::{mine_qar, QarConfig, QarRule};
pub use rules::{generate_rules, AssocRule};
pub use transactions::{is_subset, ItemId, TransactionSet};
