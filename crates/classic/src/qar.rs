//! Quantitative association rules (Srikant & Agrawal, SIGMOD 1996).
//!
//! The baseline the paper critiques: each quantitative attribute is
//! equi-depth partitioned into base intervals (the number chosen for
//! K-partial completeness), adjacent base intervals are additionally merged
//! into ranges while their combined support stays under a cap, every tuple
//! is mapped to the interval items covering it, and classical Apriori mines
//! the resulting boolean table.
//!
//! Simplifications relative to the full SA96 system, documented here and in
//! `DESIGN.md`: the specialized "greater-than-expected-value" interest
//! measure over the generalization lattice is replaced by an equivalent-in-
//! spirit independence-lift filter (`min_interest`), and itemsets containing
//! two intervals of the same attribute (which SA96 prunes as redundant
//! generalizations) are pruned after mining.

use crate::apriori::{apriori, AprioriConfig};
use crate::rules::generate_rules;
use crate::transactions::{ItemId, TransactionSet};
use dar_core::{AttrId, Interval, Relation};

/// Configuration for the QAR miner.
#[derive(Debug, Clone, PartialEq)]
pub struct QarConfig {
    /// Minimum support as a fraction of the relation size.
    pub min_support_frac: f64,
    /// Minimum rule confidence.
    pub min_confidence: f64,
    /// Partial completeness level `K > 1`; determines the number of base
    /// intervals per attribute.
    pub partial_completeness: f64,
    /// Adjacent base intervals merge into a range item while the combined
    /// support stays at or below this fraction of the relation.
    pub max_support_frac: f64,
    /// Cap on frequent-itemset size (0 = unbounded).
    pub max_itemset_len: usize,
    /// Independence-lift interest floor; rules whose union itemset has
    /// support below `min_interest ×` the independence expectation are
    /// dropped. `0.0` disables the filter.
    pub min_interest: f64,
    /// Hard cap on the number of base intervals per attribute. The
    /// K-partial-completeness formula can demand hundreds of intervals at
    /// low support; beyond this cap the item catalog (bases × ranges ×
    /// attributes) makes Apriori's candidate space explode — the very cost
    /// blow-up Section 2 of the paper describes.
    pub max_base_intervals: usize,
    /// Maximum number of adjacent base intervals a merged range may span.
    pub max_merge_span: usize,
}

impl Default for QarConfig {
    fn default() -> Self {
        QarConfig {
            min_support_frac: 0.1,
            min_confidence: 0.5,
            partial_completeness: 1.5,
            max_support_frac: 0.4,
            max_itemset_len: 4,
            min_interest: 0.0,
            max_base_intervals: 16,
            max_merge_span: 4,
        }
    }
}

/// A mined quantitative association rule: interval predicates on disjoint
/// attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct QarRule {
    /// `(attribute, interval)` predicates of the antecedent.
    pub antecedent: Vec<(AttrId, Interval)>,
    /// `(attribute, interval)` predicates of the consequent.
    pub consequent: Vec<(AttrId, Interval)>,
    /// Absolute support of the whole rule.
    pub support: u64,
    /// Confidence.
    pub confidence: f64,
}

/// One interval item of the catalog.
#[derive(Debug, Clone)]
struct CatalogItem {
    attr: AttrId,
    interval: Interval,
}

/// Mines quantitative association rules over the given attributes of a
/// relation.
pub fn mine_qar(relation: &Relation, attrs: &[AttrId], config: &QarConfig) -> Vec<QarRule> {
    let n = relation.len();
    if n == 0 || attrs.is_empty() {
        return Vec::new();
    }
    let min_support = ((config.min_support_frac * n as f64).ceil() as u64).max(1);
    let max_range_support = (config.max_support_frac * n as f64).floor() as u64;

    // --- 1. Per-attribute base partitioning + merged ranges ---------------
    let num_base = crate::partition::partial_completeness_intervals(
        attrs.len(),
        config.min_support_frac,
        config.partial_completeness,
    )
    .clamp(1, config.max_base_intervals.max(1));
    let depth = n.div_ceil(num_base).max(1);

    let mut catalog: Vec<CatalogItem> = Vec::new();
    // Per attribute: sorted boundaries of base intervals for tuple mapping.
    let mut base_bounds: Vec<Vec<f64>> = Vec::with_capacity(attrs.len());
    // Items covering each base interval, per attribute: (base idx → item ids).
    let mut covering: Vec<Vec<Vec<ItemId>>> = Vec::with_capacity(attrs.len());

    for &attr in attrs {
        let mut sorted: Vec<f64> = relation.column(attr).to_vec();
        sorted.sort_by(f64::total_cmp);
        let (bases, counts) = crate::partition::equi_depth_tie_aware(&sorted, depth);
        let mut cover: Vec<Vec<ItemId>> = vec![Vec::new(); bases.len()];
        // Base items.
        for (b, iv) in bases.iter().enumerate() {
            cover[b].push(ItemId((catalog.len()) as u32));
            catalog.push(CatalogItem { attr, interval: *iv });
        }
        // Merged ranges of ≥ 2 adjacent bases within the support cap and
        // span limit.
        for lo in 0..bases.len() {
            let mut supp = counts[lo];
            let span_end = (lo + config.max_merge_span.max(1)).min(bases.len());
            for hi in (lo + 1)..span_end {
                supp += counts[hi];
                if supp > max_range_support {
                    break;
                }
                let id = ItemId(catalog.len() as u32);
                catalog.push(CatalogItem { attr, interval: bases[lo].hull(&bases[hi]) });
                for c in cover.iter_mut().take(hi + 1).skip(lo) {
                    c.push(id);
                }
            }
        }
        base_bounds.push(bases.iter().map(|iv| iv.hi).collect());
        covering.push(cover);
    }

    // --- 2. Map tuples to transactions ------------------------------------
    let mut tx = TransactionSet::new();
    let mut items = Vec::new();
    for row in 0..n {
        items.clear();
        for (ai, &attr) in attrs.iter().enumerate() {
            let v = relation.value(row, attr);
            let b = base_index(&base_bounds[ai], v);
            items.extend_from_slice(&covering[ai][b]);
        }
        tx.push(items.clone());
    }

    // --- 3. Apriori + rule generation --------------------------------------
    let freq = apriori(&tx, &AprioriConfig { min_support, max_len: config.max_itemset_len });
    let raw_rules = generate_rules(&freq, config.min_confidence);

    // --- 4. Prune and translate -------------------------------------------
    let mut out = Vec::new();
    for rule in raw_rules {
        let all: Vec<ItemId> = rule.antecedent.iter().chain(&rule.consequent).copied().collect();
        if has_duplicate_attr(&all, &catalog) {
            continue;
        }
        if config.min_interest > 0.0 {
            let expected: f64 = all
                .iter()
                .map(|i| freq.support(&[*i]).unwrap_or(0) as f64 / n as f64)
                .product::<f64>()
                * n as f64;
            if (rule.support as f64) < config.min_interest * expected {
                continue;
            }
        }
        let translate = |ids: &[ItemId]| {
            ids.iter()
                .map(|i| {
                    let c = &catalog[i.0 as usize];
                    (c.attr, c.interval)
                })
                .collect::<Vec<_>>()
        };
        out.push(QarRule {
            antecedent: translate(&rule.antecedent),
            consequent: translate(&rule.consequent),
            support: rule.support,
            confidence: rule.confidence,
        });
    }
    out
}

/// Index of the base interval a value falls into (values above the last
/// boundary clamp to the last interval — equi-depth covers the data range).
fn base_index(upper_bounds: &[f64], v: f64) -> usize {
    upper_bounds.partition_point(|&hi| hi < v).min(upper_bounds.len() - 1)
}

fn has_duplicate_attr(items: &[ItemId], catalog: &[CatalogItem]) -> bool {
    let mut attrs: Vec<AttrId> = items.iter().map(|i| catalog[i.0 as usize].attr).collect();
    attrs.sort_unstable();
    attrs.windows(2).any(|w| w[0] == w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{RelationBuilder, Schema};

    /// Age and Salary strongly correlated in two blocks:
    /// young/low-paid vs old/high-paid.
    fn blocks() -> Relation {
        let mut b = RelationBuilder::new(Schema::interval_attrs(2));
        for i in 0..50 {
            b.push_row(&[20.0 + (i % 10) as f64, 30_000.0 + 100.0 * (i % 7) as f64]).unwrap();
        }
        for i in 0..50 {
            b.push_row(&[60.0 + (i % 10) as f64, 90_000.0 + 100.0 * (i % 7) as f64]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn finds_the_block_rules() {
        let r = blocks();
        let cfg = QarConfig {
            min_support_frac: 0.2,
            min_confidence: 0.8,
            partial_completeness: 3.0,
            max_support_frac: 0.5,
            max_itemset_len: 2,
            min_interest: 0.0,
            max_base_intervals: 10,
            max_merge_span: 4,
        };
        let rules = mine_qar(&r, &[0, 1], &cfg);
        assert!(!rules.is_empty(), "block-structured data must yield rules");
        // Some rule must connect a young-age interval to a low-salary one.
        let young_low = rules.iter().any(|rule| {
            rule.antecedent.iter().any(|(a, iv)| *a == 0 && iv.hi <= 30.0)
                && rule.consequent.iter().any(|(a, iv)| *a == 1 && iv.hi <= 31_000.0)
        });
        assert!(young_low, "expected a young⇒low-salary rule, got {rules:?}");
        // No rule may predicate twice on one attribute.
        for rule in &rules {
            let mut attrs: Vec<AttrId> =
                rule.antecedent.iter().chain(&rule.consequent).map(|(a, _)| *a).collect();
            attrs.sort_unstable();
            attrs.dedup();
            assert_eq!(attrs.len(), rule.antecedent.len() + rule.consequent.len());
        }
    }

    #[test]
    fn interest_filter_drops_independent_rules() {
        let r = blocks();
        let lax = QarConfig { min_interest: 0.0, ..QarConfig::default() };
        let strict = QarConfig { min_interest: 1.1, ..QarConfig::default() };
        let all = mine_qar(&r, &[0, 1], &lax);
        let interesting = mine_qar(&r, &[0, 1], &strict);
        assert!(interesting.len() <= all.len());
    }

    #[test]
    fn empty_inputs_yield_no_rules() {
        let r = RelationBuilder::new(Schema::interval_attrs(1)).finish();
        assert!(mine_qar(&r, &[0], &QarConfig::default()).is_empty());
        let r = blocks();
        assert!(mine_qar(&r, &[], &QarConfig::default()).is_empty());
    }

    #[test]
    fn base_index_lookup() {
        let bounds = vec![10.0, 20.0, 30.0];
        assert_eq!(base_index(&bounds, 5.0), 0);
        assert_eq!(base_index(&bounds, 10.0), 0);
        assert_eq!(base_index(&bounds, 10.5), 1);
        assert_eq!(base_index(&bounds, 30.0), 2);
        // Out-of-range clamps to the last interval.
        assert_eq!(base_index(&bounds, 99.0), 2);
    }

    #[test]
    fn rule_support_counts_are_consistent() {
        let r = blocks();
        let rules = mine_qar(&r, &[0, 1], &QarConfig::default());
        for rule in &rules {
            // Recount the rule's support directly against the relation.
            let holds = |row: usize, preds: &[(AttrId, Interval)]| {
                preds.iter().all(|(a, iv)| iv.contains(r.value(row, *a)))
            };
            let both =
                (0..r.len()).filter(|&i| holds(i, &rule.antecedent) && holds(i, &rule.consequent));
            assert_eq!(both.count() as u64, rule.support, "{rule:?}");
        }
    }
}
