//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! the real `criterion` cannot be fetched. This workspace-local shim keeps
//! the `crates/bench` Criterion benches compiling and running: it measures
//! mean wall-clock time per iteration (warm-up pass, then an adaptive
//! number of timed iterations) and prints one line per benchmark, with
//! throughput when configured. No statistics, plots, or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget for one benchmark's measurement loop.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts (and ignores) command-line configuration, for API parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_benchmark(name, None, &mut f);
        self
    }
}

/// A named group of benchmarks sharing throughput configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) the requested sample count, for API parity.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `name` within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark label, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A label of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// A label that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Per-iteration throughput units, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The measurement handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u32,
    total: Duration,
}

impl Bencher {
    /// Times repeated calls of `f`, recording the mean.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up (and single-shot duration estimate).
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));

        let iters = (MEASURE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iterations += iters;
    }
}

fn run_benchmark(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("bench {label:<40} (no iterations)");
        return;
    }
    let mean = bencher.total / bencher.iterations;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        None => String::new(),
    };
    println!(
        "bench {label:<40} {:>12.3} µs/iter  ({} iters){rate}",
        mean.as_secs_f64() * 1e6,
        bencher.iterations,
    );
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_measures() {
        benches();
        let mut c = Criterion::default().configure_from_args();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 * 2)));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 7).0, "f/7");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}
