//! Behavioral tests for the fault-injecting proxy, against a local echo
//! server: each accepted upstream connection reads lines and echoes them
//! back prefixed with `ok:`.

use dar_chaos::{ChaosProxy, Fault, Script};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct EchoServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl EchoServer {
    fn start() -> EchoServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo server");
        let addr = listener.local_addr().expect("echo addr");
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            listener.set_nonblocking(false).expect("echo listener blocking mode");
            loop {
                let Ok((stream, _)) = listener.accept() else {
                    break;
                };
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let flag = Arc::clone(&flag);
                std::thread::spawn(move || {
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
                    let mut reader = BufReader::new(stream.try_clone().expect("clone echo stream"));
                    let mut writer = stream;
                    let mut line = String::new();
                    loop {
                        if flag.load(Ordering::SeqCst) {
                            break;
                        }
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) => break,
                            Ok(_) => {
                                let reply = format!("ok:{line}");
                                if writer.write_all(reply.as_bytes()).is_err() {
                                    break;
                                }
                                let _ = writer.flush();
                            }
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                                ) => {}
                            Err(_) => break,
                        }
                    }
                });
            }
        });
        EchoServer { addr, stop, thread: Some(thread) }
    }
}

impl Drop for EchoServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream =
        TcpStream::connect_timeout(&addr, Duration::from_secs(2)).expect("connect via proxy");
    stream.set_read_timeout(Some(Duration::from_secs(2))).expect("set client read timeout");
    stream
}

fn round_trip(stream: &mut TcpStream, payload: &str) -> std::io::Result<String> {
    stream.write_all(payload.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before a full reply",
        ));
    }
    Ok(line)
}

#[test]
fn clean_script_passes_traffic_through() {
    let echo = EchoServer::start();
    let proxy = ChaosProxy::start(echo.addr, 1, Script::Clean).expect("start proxy");
    for i in 0..3 {
        let mut stream = connect(proxy.addr());
        let reply = round_trip(&mut stream, &format!("hello-{i}")).expect("clean round trip");
        assert_eq!(reply, format!("ok:hello-{i}\n"));
    }
    assert_eq!(proxy.connections(), 3);
    assert_eq!(proxy.faulted(), 0);
    proxy.shutdown();
}

#[test]
fn reset_after_cuts_the_connection_mid_stream() {
    let echo = EchoServer::start();
    let proxy = ChaosProxy::start(echo.addr, 1, Script::all(Fault::ResetAfter { bytes: 4 }))
        .expect("start proxy");
    let mut stream = connect(proxy.addr());
    // The 12-byte request exceeds the 4-byte budget, so no full line ever
    // reaches the echo server and the proxy closes both sockets: the
    // client sees EOF (or a reset) instead of a reply.
    let result = round_trip(&mut stream, "hello-reset");
    assert!(result.is_err(), "reset connection must not yield a reply, got {result:?}");
    assert_eq!(proxy.faulted(), 1);
    proxy.shutdown();
}

#[test]
fn truncate_response_delivers_request_but_cuts_reply() {
    let echo = EchoServer::start();
    let proxy = ChaosProxy::start(echo.addr, 1, Script::all(Fault::TruncateResponse { bytes: 5 }))
        .expect("start proxy");
    let mut stream = connect(proxy.addr());
    stream.write_all(b"hello-truncate\n").expect("send request");
    stream.flush().expect("flush request");
    // The server echoes "ok:hello-truncate\n" (18 bytes) but only 5 pass.
    let mut got = Vec::new();
    stream.read_to_end(&mut got).expect("read truncated reply to EOF");
    assert_eq!(got, b"ok:he", "exactly the budgeted prefix must arrive");
    proxy.shutdown();
}

#[test]
fn blackhole_swallows_writes_and_never_replies() {
    let echo = EchoServer::start();
    let proxy =
        ChaosProxy::start(echo.addr, 1, Script::all(Fault::Blackhole)).expect("start proxy");
    let mut stream = connect(proxy.addr());
    stream.set_read_timeout(Some(Duration::from_millis(200))).expect("shorten read timeout");
    stream.write_all(b"anyone-there\n").expect("write into blackhole");
    stream.flush().expect("flush into blackhole");
    let mut buf = [0u8; 64];
    let read = stream.read(&mut buf);
    match read {
        Ok(0) => {} // proxy-side close also proves nothing was forwarded
        Ok(n) => panic!("blackhole forwarded {n} bytes: {:?}", &buf[..n]),
        Err(e) => assert!(
            matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "expected a read timeout, got {e:?}"
        ),
    }
    proxy.shutdown();
}

#[test]
fn delay_slows_but_preserves_traffic() {
    let echo = EchoServer::start();
    let proxy =
        ChaosProxy::start(echo.addr, 1, Script::all(Fault::Delay(Duration::from_millis(30))))
            .expect("start proxy");
    let mut stream = connect(proxy.addr());
    let started = std::time::Instant::now();
    let reply = round_trip(&mut stream, "slow-but-sure").expect("delayed round trip");
    assert_eq!(reply, "ok:slow-but-sure\n");
    // One delay each way is the floor; scheduling may add more.
    assert!(
        started.elapsed() >= Duration::from_millis(60),
        "both directions must pay the per-chunk delay, took {:?}",
        started.elapsed()
    );
    proxy.shutdown();
}

#[test]
fn sever_cuts_established_connections_but_keeps_accepting() {
    let echo = EchoServer::start();
    let proxy = ChaosProxy::start(echo.addr, 1, Script::Clean).expect("start proxy");
    let mut stream = connect(proxy.addr());
    let reply = round_trip(&mut stream, "pre-partition").expect("healthy round trip");
    assert_eq!(reply, "ok:pre-partition\n");

    proxy.sever();
    // The established flow dies within the proxy's poll interval: the
    // next round trip fails (EOF, reset, or a swallowed write).
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let mut cut = false;
    while std::time::Instant::now() < deadline {
        if round_trip(&mut stream, "post-partition").is_err() {
            cut = true;
            break;
        }
    }
    assert!(cut, "sever must tear down the established connection");

    // New dials still reach the proxy and get the current (clean) script.
    let mut fresh = connect(proxy.addr());
    let reply = round_trip(&mut fresh, "redial").expect("post-sever round trip");
    assert_eq!(reply, "ok:redial\n");
    proxy.shutdown();
}

#[test]
fn set_script_heals_new_connections() {
    let echo = EchoServer::start();
    let proxy =
        ChaosProxy::start(echo.addr, 1, Script::all(Fault::Blackhole)).expect("start proxy");
    let mut stream = connect(proxy.addr());
    stream.set_read_timeout(Some(Duration::from_millis(150))).expect("shorten read timeout");
    assert!(round_trip(&mut stream, "lost").is_err(), "blackholed connection must time out");
    proxy.set_script(Script::Clean);
    let mut healed = connect(proxy.addr());
    let reply = round_trip(&mut healed, "back-online").expect("healed round trip");
    assert_eq!(reply, "ok:back-online\n");
    assert_eq!(proxy.schedule(), vec![Fault::Blackhole, Fault::Clean]);
    proxy.shutdown();
}
