//! The deterministic stream generator behind every scheduling decision.

/// SplitMix64: a tiny, high-quality, allocation-free PRNG. Two instances
/// built from the same seed produce the same stream forever — the whole
/// point of this crate. (The same generator family seeds the backoff
/// jitter in `dar-serve`; this one is a full stateful stream.)
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator over the stream named by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// Uniform in `[lo, hi]` (inclusive); `lo` when the range is empty.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert!((0..10).any(|_| a.next_u64() != c.next_u64()));
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.between(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.between(5, 5), 5);
        assert_eq!(r.between(9, 3), 9);
    }
}
