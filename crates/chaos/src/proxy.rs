//! The fault-injecting TCP proxy itself.

use crate::script::{Fault, Script};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked reads wake to poll the shutdown flag. Short enough
/// that tests tear down promptly; long enough to stay off the profiles.
const POLL: Duration = Duration::from_millis(25);

/// Forwarding chunk size. Small on purpose: mid-frame cuts and per-chunk
/// delays should land inside one JSON line, not between lines.
const CHUNK: usize = 1024;

/// Connection workers, each tagged with the severance generation it was
/// accepted under — `sever` joins exactly the superseded ones.
type Workers = Arc<Mutex<Vec<(u64, JoinHandle<()>)>>>;

struct ProxyShared {
    upstream: SocketAddr,
    seed: u64,
    script: Mutex<Script>,
    shutdown: AtomicBool,
    /// Severance generation: bumping it makes every in-flight proxied
    /// connection tear down (each worker captured the value at accept).
    severed: AtomicU64,
    connections: AtomicU64,
    faulted: AtomicU64,
    /// The fault actually applied to each accepted connection, in accept
    /// order — the reproducibility log tests compare across runs.
    schedule: Mutex<Vec<Fault>>,
}

/// The proxy's entry point.
pub struct ChaosProxy;

impl ChaosProxy {
    /// Binds an ephemeral local port and proxies every accepted
    /// connection to `upstream`, applying the fault `script.fault_for
    /// (seed, k)` prescribes for connection *k* (0-based, in accept
    /// order). Returns immediately; the proxy runs on background threads
    /// until [`ChaosHandle::shutdown`].
    ///
    /// # Errors
    /// Bind failures or an unresolvable upstream address.
    pub fn start(
        upstream: impl ToSocketAddrs,
        seed: u64,
        script: Script,
    ) -> io::Result<ChaosHandle> {
        let upstream = upstream.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "upstream resolved empty")
        })?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream,
            seed,
            script: Mutex::new(script),
            shutdown: AtomicBool::new(false),
            severed: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            faulted: AtomicU64::new(0),
            schedule: Mutex::new(Vec::new()),
        });
        let workers: Workers = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            std::thread::Builder::new()
                .name("dar-chaos-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared, &workers))?
        };
        Ok(ChaosHandle { addr, shared, acceptor: Some(acceptor), workers })
    }
}

/// A handle to a running proxy.
pub struct ChaosHandle {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Workers,
}

impl ChaosHandle {
    /// The proxy's listening address — point the client side here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Swaps the script for connections accepted from now on — how a test
    /// heals the network (`Script::Clean`), partitions the upstream
    /// (`Script::all(Fault::Blackhole)`), or changes the chaos mix
    /// mid-run. Connections already in flight keep their original fault.
    pub fn set_script(&self, script: Script) {
        *lock(&self.shared.script) = script;
    }

    /// Tears down every in-flight proxied connection while the proxy
    /// keeps accepting new ones under the current script. `set_script`
    /// plus `sever` is a partition that cuts established flows too — the
    /// realistic kind; `set_script` alone only shapes future dials.
    ///
    /// Synchronous: returns only after every superseded connection worker
    /// has exited, so nothing written before the call can still sneak
    /// through afterward — tests can treat the cut as a clean barrier.
    pub fn sever(&self) {
        let new_generation = self.shared.severed.fetch_add(1, Ordering::SeqCst) + 1;
        let superseded: Vec<(u64, JoinHandle<()>)> = {
            let mut workers = lock(&self.workers);
            let all = std::mem::take(&mut *workers);
            let (old, keep): (Vec<_>, Vec<_>) =
                all.into_iter().partition(|(generation, _)| *generation < new_generation);
            *workers = keep;
            old
        };
        for (_, handle) in superseded {
            let _ = handle.join();
        }
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.shared.connections.load(Ordering::SeqCst)
    }

    /// Connections that got a non-[`Fault::Clean`] fault.
    pub fn faulted(&self) -> u64 {
        self.shared.faulted.load(Ordering::SeqCst)
    }

    /// The faults applied so far, in accept order — replaying a run under
    /// the same seed and script produces this exact sequence.
    pub fn schedule(&self) -> Vec<Fault> {
        lock(&self.shared.schedule).clone()
    }

    /// Stops accepting, tears down every in-flight proxied connection,
    /// and joins the proxy's threads.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor out of accept(2).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles: Vec<(u64, JoinHandle<()>)> = lock(&self.workers).drain(..).collect();
        for (_, handle) in handles {
            let _ = handle.join();
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<ProxyShared>,
    workers: &Mutex<Vec<(u64, JoinHandle<()>)>>,
) {
    loop {
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let conn = shared.connections.fetch_add(1, Ordering::SeqCst);
        let fault = lock(&shared.script).fault_for(shared.seed, conn);
        if fault != Fault::Clean {
            shared.faulted.fetch_add(1, Ordering::SeqCst);
        }
        lock(&shared.schedule).push(fault.clone());
        let generation = shared.severed.load(Ordering::SeqCst);
        let shared = Arc::clone(shared);
        let worker = std::thread::Builder::new()
            .name(format!("dar-chaos-conn-{conn}"))
            .spawn(move || serve_connection(client, &fault, &shared, generation));
        if let Ok(handle) = worker {
            lock(workers).push((generation, handle));
        }
    }
}

/// Applies `fault` to one proxied connection until either side closes,
/// the fault fires, the connection is severed, or the proxy shuts down.
fn serve_connection(client: TcpStream, fault: &Fault, shared: &Arc<ProxyShared>, generation: u64) {
    if *fault == Fault::Blackhole {
        return blackhole(client, shared, generation);
    }
    let Ok(upstream) = TcpStream::connect_timeout(&shared.upstream, Duration::from_secs(5)) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_read_timeout(Some(POLL));
    let _ = upstream.set_read_timeout(Some(POLL));

    let (delay, shared_budget, response_budget) = match fault {
        Fault::Clean => (None, None, None),
        Fault::Delay(d) => (Some(*d), None, None),
        // One budget across both directions: the reset fires wherever the
        // byte count lands, mid-request or mid-response.
        Fault::ResetAfter { bytes } => (None, Some(Arc::new(AtomicI64::new(*bytes as i64))), None),
        Fault::TruncateResponse { bytes } => {
            (None, None, Some(Arc::new(AtomicI64::new(*bytes as i64))))
        }
        Fault::Blackhole => unreachable!("handled above"),
    };

    let up = Pump { budget: shared_budget.clone(), delay, generation };
    let down = Pump { budget: shared_budget.or(response_budget), delay, generation };
    let back = {
        let upstream = match upstream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let client = match client.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("dar-chaos-pump".into())
            .spawn(move || down.run(upstream, client, &shared))
    };
    up.run(client, upstream, shared);
    if let Ok(handle) = back {
        let _ = handle.join();
    }
}

/// Swallow the client's bytes forever, forwarding nothing.
fn blackhole(client: TcpStream, shared: &ProxyShared, generation: u64) {
    let _ = client.set_read_timeout(Some(POLL));
    let mut client = client;
    let mut sink = [0u8; CHUNK];
    loop {
        if shared.shutdown.load(Ordering::SeqCst)
            || shared.severed.load(Ordering::SeqCst) != generation
        {
            break;
        }
        match client.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    let _ = client.shutdown(Shutdown::Both);
}

/// One forwarding direction with its fault parameters.
struct Pump {
    /// Remaining bytes this pump (or the pair, when shared) may forward;
    /// crossing zero closes both sockets.
    budget: Option<Arc<AtomicI64>>,
    delay: Option<Duration>,
    /// The severance generation at accept: a bump tears this pump down.
    generation: u64,
}

impl Pump {
    /// Copies `from` into `to` until EOF, an error, the budget running
    /// out, severance, or proxy shutdown. Closes both sockets on exit so
    /// the sibling pump (and both endpoints) observe the termination
    /// promptly.
    fn run(&self, mut from: TcpStream, mut to: TcpStream, shared: &ProxyShared) {
        let mut buf = [0u8; CHUNK];
        loop {
            if shared.shutdown.load(Ordering::SeqCst)
                || shared.severed.load(Ordering::SeqCst) != self.generation
            {
                break;
            }
            let n = match from.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    continue;
                }
                Err(_) => break,
            };
            if let Some(d) = self.delay {
                std::thread::sleep(d);
            }
            let allowed = match &self.budget {
                Some(budget) => {
                    let before = budget.fetch_sub(n as i64, Ordering::SeqCst);
                    before.clamp(0, n as i64) as usize
                }
                None => n,
            };
            if allowed > 0 && to.write_all(&buf[..allowed]).is_err() {
                break;
            }
            if allowed > 0 && to.flush().is_err() {
                break;
            }
            if allowed < n {
                break; // budget exhausted: fault fires now
            }
        }
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    }
}
