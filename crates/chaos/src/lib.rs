//! # dar-chaos — deterministic network fault injection
//!
//! A std-only, seeded TCP fault-injection proxy that sits between any two
//! halves of the DAR serving stack — coordinator and shard, client and
//! server — and misbehaves *on schedule*: the fault applied to connection
//! *k* is a pure function of `(seed, script, k)`, so the same seed always
//! produces the same fault schedule and a chaos-suite failure reproduces
//! under the same seed.
//!
//! The fault vocabulary mirrors what real networks do to long-lived JSON
//! framing:
//!
//! * [`Fault::Delay`] — fixed added latency per forwarded chunk (a slow
//!   or congested path; exercises timeout budgets without killing data);
//! * [`Fault::ResetAfter`] — the connection dies abruptly after *n*
//!   forwarded bytes (a mid-request reset; exercises retry + idempotent
//!   replay);
//! * [`Fault::TruncateResponse`] — the request reaches the server but the
//!   response is cut after *n* bytes (the nastiest case: the server
//!   **applied** the operation and the client cannot know; only
//!   sequence-numbered idempotency makes the retry safe);
//! * [`Fault::Blackhole`] — the connection opens but nothing is ever
//!   forwarded (a silent partition; exercises deadline budgets — without
//!   one, a caller hangs for its full read timeout).
//!
//! Scripts compose faults per connection: [`Script::Clean`] (pass
//! everything), [`Script::Sequence`] (a fixed rotation — precise tests),
//! [`Script::Random`] (a seeded weighted mix — soak tests). The script is
//! swappable at runtime ([`ChaosHandle::set_script`]), which is how a
//! test "heals" the network and asserts re-convergence, or partitions one
//! shard ([`Script::all`] of [`Fault::Blackhole`]) and asserts honest
//! degraded serving.
//!
//! Nothing here depends on the rest of the workspace: the proxy forwards
//! opaque bytes, so it can wrap any TCP protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod proxy;
mod rng;
mod script;

pub use proxy::{ChaosHandle, ChaosProxy};
pub use rng::SplitMix64;
pub use script::{Fault, FaultMix, Script};
