//! The fault vocabulary and the per-connection scheduling scripts.

use crate::rng::SplitMix64;
use std::time::Duration;

/// What the proxy does to one proxied connection. Every variant is
/// applied for the connection's whole lifetime — a connection is either
/// healthy or misbehaves one way, which keeps schedules interpretable
/// when a test fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Forward everything untouched.
    Clean,
    /// Forward everything, sleeping this long before each forwarded
    /// chunk (both directions).
    Delay(Duration),
    /// Forward `bytes` total (both directions combined), then close both
    /// sockets abruptly — a mid-stream connection reset.
    ResetAfter {
        /// Bytes forwarded before the reset.
        bytes: u64,
    },
    /// Forward the client's request bytes untouched, but cut the
    /// server-to-client direction after `bytes` — the response is
    /// truncated mid-frame even though the server applied the request.
    TruncateResponse {
        /// Response bytes forwarded before the cut.
        bytes: u64,
    },
    /// Accept the connection and forward nothing, ever; reads from the
    /// client are swallowed so the client's writes appear to succeed. The
    /// client only escapes via its own read timeout or deadline budget.
    Blackhole,
}

/// Weights for [`Script::Random`]: the relative likelihood of each fault
/// kind, plus the byte/latency ranges misbehaving connections draw from.
/// All weights zero degenerates to `Clean`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMix {
    /// Relative weight of clean connections.
    pub clean: u32,
    /// Relative weight of per-chunk-delayed connections.
    pub delay: u32,
    /// Relative weight of mid-stream resets.
    pub reset: u32,
    /// Relative weight of truncated responses.
    pub truncate: u32,
    /// Relative weight of blackholed connections.
    pub blackhole: u32,
    /// Delay range for [`Fault::Delay`], in milliseconds (inclusive).
    pub delay_ms: (u64, u64),
    /// Byte range for [`Fault::ResetAfter`] / [`Fault::TruncateResponse`]
    /// (inclusive). Keep the low end above 0 so a reset always lets *some*
    /// bytes through — a 0-byte reset is indistinguishable from a refused
    /// connection, which the client layers already cover.
    pub cut_bytes: (u64, u64),
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix {
            clean: 5,
            delay: 2,
            reset: 2,
            truncate: 1,
            blackhole: 0,
            delay_ms: (1, 10),
            cut_bytes: (1, 256),
        }
    }
}

/// How the proxy picks the fault for connection *k*. Every script is a
/// pure function of `(seed, k)`, so a proxy replayed under the same seed
/// injects the same faults at the same connection indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Script {
    /// Every connection is healthy (the "healed network" state).
    Clean,
    /// Connection *k* gets `faults[k % len]` — a fixed rotation for
    /// tests that need to know exactly which connection dies how.
    Sequence(Vec<Fault>),
    /// Connection *k* draws from the weighted mix, with parameters from
    /// the `(seed, k)` stream — the soak-test mode.
    Random(FaultMix),
}

impl Script {
    /// A script applying the same fault to every connection — e.g.
    /// `Script::all(Fault::Blackhole)` is a full partition.
    pub fn all(fault: Fault) -> Script {
        Script::Sequence(vec![fault])
    }

    /// The fault for connection `conn` under `seed` — deterministic:
    /// same `(script, seed, conn)`, same fault, always.
    pub fn fault_for(&self, seed: u64, conn: u64) -> Fault {
        match self {
            Script::Clean => Fault::Clean,
            Script::Sequence(faults) => {
                if faults.is_empty() {
                    Fault::Clean
                } else {
                    faults[(conn % faults.len() as u64) as usize].clone()
                }
            }
            Script::Random(mix) => {
                // One private stream per (seed, conn): decisions for
                // connection k never perturb connection k+1's.
                let mut rng = SplitMix64::new(seed ^ conn.wrapping_mul(0xa076_1d64_78bd_642f));
                let total = u64::from(mix.clean)
                    + u64::from(mix.delay)
                    + u64::from(mix.reset)
                    + u64::from(mix.truncate)
                    + u64::from(mix.blackhole);
                if total == 0 {
                    return Fault::Clean;
                }
                let mut pick = rng.below(total);
                for (weight, kind) in [
                    (u64::from(mix.clean), 0u8),
                    (u64::from(mix.delay), 1),
                    (u64::from(mix.reset), 2),
                    (u64::from(mix.truncate), 3),
                    (u64::from(mix.blackhole), 4),
                ] {
                    if pick < weight {
                        return match kind {
                            0 => Fault::Clean,
                            1 => Fault::Delay(Duration::from_millis(
                                rng.between(mix.delay_ms.0, mix.delay_ms.1),
                            )),
                            2 => Fault::ResetAfter {
                                bytes: rng.between(mix.cut_bytes.0, mix.cut_bytes.1),
                            },
                            3 => Fault::TruncateResponse {
                                bytes: rng.between(mix.cut_bytes.0, mix.cut_bytes.1),
                            },
                            _ => Fault::Blackhole,
                        };
                    }
                    pick -= weight;
                }
                Fault::Clean // unreachable: pick < total by construction
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let script = Script::Random(FaultMix { blackhole: 1, ..FaultMix::default() });
        let a: Vec<Fault> = (0..200).map(|k| script.fault_for(99, k)).collect();
        let b: Vec<Fault> = (0..200).map(|k| script.fault_for(99, k)).collect();
        assert_eq!(a, b, "same seed must give the same schedule");
        let c: Vec<Fault> = (0..200).map(|k| script.fault_for(100, k)).collect();
        assert_ne!(a, c, "distinct seeds must give distinct schedules");
    }

    #[test]
    fn random_mix_produces_every_weighted_kind() {
        let script = Script::Random(FaultMix {
            clean: 1,
            delay: 1,
            reset: 1,
            truncate: 1,
            blackhole: 1,
            ..FaultMix::default()
        });
        let faults: Vec<Fault> = (0..500).map(|k| script.fault_for(7, k)).collect();
        assert!(faults.iter().any(|f| matches!(f, Fault::Clean)));
        assert!(faults.iter().any(|f| matches!(f, Fault::Delay(_))));
        assert!(faults.iter().any(|f| matches!(f, Fault::ResetAfter { .. })));
        assert!(faults.iter().any(|f| matches!(f, Fault::TruncateResponse { .. })));
        assert!(faults.iter().any(|f| matches!(f, Fault::Blackhole)));
        // Parameters stay inside their configured ranges.
        for f in &faults {
            match f {
                Fault::Delay(d) => assert!((1..=10).contains(&(d.as_millis() as u64))),
                Fault::ResetAfter { bytes } | Fault::TruncateResponse { bytes } => {
                    assert!((1..=256).contains(bytes));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn sequence_rotates_and_degenerate_scripts_are_clean() {
        let script =
            Script::Sequence(vec![Fault::Clean, Fault::ResetAfter { bytes: 8 }, Fault::Blackhole]);
        assert_eq!(script.fault_for(0, 0), Fault::Clean);
        assert_eq!(script.fault_for(0, 1), Fault::ResetAfter { bytes: 8 });
        assert_eq!(script.fault_for(0, 2), Fault::Blackhole);
        assert_eq!(script.fault_for(0, 3), Fault::Clean);
        assert_eq!(Script::Sequence(Vec::new()).fault_for(0, 5), Fault::Clean);
        let zeroed = FaultMix {
            clean: 0,
            delay: 0,
            reset: 0,
            truncate: 0,
            blackhole: 0,
            ..FaultMix::default()
        };
        assert_eq!(Script::Random(zeroed).fault_for(0, 5), Fault::Clean);
        assert_eq!(Script::all(Fault::Blackhole).fault_for(3, 17), Fault::Blackhole);
    }
}
