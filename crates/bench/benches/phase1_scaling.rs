//! Criterion counterpart of Figure 6: Phase I wall time vs. relation size
//! (sizes reduced for bench-runner turnaround; the `figure6` binary runs
//! the paper's full 100K–500K sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dar_bench::wbcd_config;
use dar_core::{Metric, Partitioning};
use datagen::wbcd::wbcd_relation;
use mining::DarMiner;
use std::hint::black_box;

fn phase1_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1_scaling");
    group.sample_size(10);
    for &n in &[5_000usize, 10_000, 20_000] {
        let relation = wbcd_relation(n, 0.1, 20260707);
        let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
        let miner = DarMiner::new(wbcd_config(5 << 20));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let result =
                    miner.mine(black_box(&relation), &partitioning).expect("valid partitioning");
                black_box(result.stats.clusters_total)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, phase1_scaling);
criterion_main!(benches);
