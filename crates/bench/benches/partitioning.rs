//! Criterion bench backing Figure 1's comparison at scale: equi-depth vs
//! tie-aware equi-depth vs gap (distance-based) partitioning of a large
//! sorted column.

use classic::{equi_depth, equi_depth_tie_aware, gap_partition};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use datagen::SeededRng;
use std::hint::black_box;

fn partitioning(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    for &n in &[10_000usize, 100_000] {
        let mut rng = SeededRng::new(99);
        let mut values: Vec<f64> = (0..n)
            .map(|_| {
                // Three salary-like bands with gaps, plus ties.
                match rng.index(3) {
                    0 => rng.uniform_in(18_000.0, 32_000.0).round(),
                    1 => rng.uniform_in(60_000.0, 90_000.0).round(),
                    _ => rng.uniform_in(150_000.0, 160_000.0).round(),
                }
            })
            .collect();
        values.sort_by(f64::total_cmp);
        let depth = n / 20;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("equi_depth", n), &n, |b, _| {
            b.iter(|| black_box(equi_depth(black_box(&values), depth).len()));
        });
        group.bench_with_input(BenchmarkId::new("equi_depth_tie_aware", n), &n, |b, _| {
            b.iter(|| black_box(equi_depth_tie_aware(black_box(&values), depth).0.len()));
        });
        group.bench_with_input(BenchmarkId::new("gap_partition", n), &n, |b, _| {
            b.iter(|| black_box(gap_partition(black_box(&values), 5_000.0).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, partitioning);
criterion_main!(benches);
