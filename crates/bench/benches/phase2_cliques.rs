//! Criterion bench for the Phase II pipeline pieces on a fixed cluster
//! structure: graph construction and maximal-clique enumeration (Section
//! 7.2 reports clique time roughly constant in the data size, since Phase
//! II runs on summaries only — node count, not tuple count, drives it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dar_bench::wbcd_config;
use dar_core::{ClusterSummary, Metric, Partitioning};
use datagen::wbcd::wbcd_relation;
use mining::clique::maximal_cliques;
use mining::graph::{ClusterDistance, ClusteringGraph, GraphConfig};
use mining::pipeline::auto_density_thresholds;
use mining::DarMiner;
use std::hint::black_box;

/// Runs Phase I once per size, then benches Phase II pieces on the
/// resulting frequent clusters.
fn phase2_cliques(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase2");
    group.sample_size(20);
    for &n in &[10_000usize, 20_000] {
        let relation = wbcd_relation(n, 0.1, 20260707);
        let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
        let miner = DarMiner::new(wbcd_config(5 << 20));
        let result = miner.mine(&relation, &partitioning).expect("valid partitioning");
        let s0 = result.stats.s0;
        let frequent: Vec<ClusterSummary> =
            result.clusters.iter().filter(|cl| cl.is_frequent(s0)).cloned().collect();
        let tree_thresholds: Vec<f64> =
            result.stats.forest.trees.iter().map(|t| t.threshold).collect();
        let density = auto_density_thresholds(
            &result.clusters,
            &tree_thresholds,
            partitioning.num_sets(),
            1.5,
        );
        let config = GraphConfig {
            metric: ClusterDistance::D2,
            density_thresholds: density,
            prune_poor_density: true,
        };
        group.bench_with_input(BenchmarkId::new("graph_build", n), &n, |b, _| {
            b.iter(|| {
                let g = ClusteringGraph::build(black_box(frequent.clone()), &config);
                black_box(g.edges)
            });
        });
        let graph = ClusteringGraph::build(frequent.clone(), &config);
        group.bench_with_input(BenchmarkId::new("maximal_cliques", n), &n, |b, _| {
            b.iter(|| {
                let (cliques, _) = maximal_cliques(black_box(graph.adjacency()), 0);
                black_box(cliques.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, phase2_cliques);
criterion_main!(benches);
