//! Criterion bench for the classical baselines: Apriori over cluster items
//! (the Dfn 4.4 GQAR path) and the SA96 QAR miner, against the DAR Phase II
//! on the same workload — the cost comparison motivating the paper's
//! summary-only Phase II.

use classic::{apriori, mine_qar, AprioriConfig, QarConfig, TransactionSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::insurance::insurance_relation;
use datagen::SeededRng;
use std::hint::black_box;

fn random_transactions(n: usize, items: u32, per_tx: usize, seed: u64) -> TransactionSet {
    let mut rng = SeededRng::new(seed);
    let mut tx = TransactionSet::new();
    for _ in 0..n {
        let t: Vec<classic::ItemId> =
            (0..per_tx).map(|_| classic::ItemId(rng.index(items as usize) as u32)).collect();
        tx.push(t);
    }
    tx
}

fn bench_apriori(c: &mut Criterion) {
    let mut group = c.benchmark_group("apriori");
    for &n in &[1_000usize, 5_000] {
        let tx = random_transactions(n, 40, 6, 3);
        group.bench_with_input(BenchmarkId::new("random", n), &n, |b, _| {
            b.iter(|| {
                let freq = apriori(
                    black_box(&tx),
                    &AprioriConfig { min_support: (n / 20) as u64, max_len: 3 },
                );
                black_box(freq.total())
            });
        });
    }
    group.finish();
}

fn bench_qar(c: &mut Criterion) {
    let mut group = c.benchmark_group("qar");
    group.sample_size(10);
    for &n in &[2_000usize, 10_000] {
        let relation = insurance_relation(n, 42);
        group.bench_with_input(BenchmarkId::new("insurance", n), &n, |b, _| {
            b.iter(|| {
                let rules = mine_qar(
                    black_box(&relation),
                    &[0, 1, 2],
                    &QarConfig { min_support_frac: 0.1, ..QarConfig::default() },
                );
                black_box(rules.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apriori, bench_qar);
criterion_main!(benches);
