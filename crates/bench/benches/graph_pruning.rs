//! Criterion bench for ABL-PRUNE: clustering-graph construction with the
//! Section 6.2 poor-density pruning heuristic on vs. off, over synthetic
//! cluster populations with a controlled fraction of poor-density images.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dar_core::{Acf, AcfLayout, ClusterId, ClusterSummary};
use datagen::SeededRng;
use mining::graph::{ClusterDistance, ClusteringGraph, GraphConfig};
use std::hint::black_box;

/// Builds `n` clusters over 4 attribute sets; `poor_frac` of them have a
/// scattered image on every foreign set.
fn synthetic_clusters(n: usize, poor_frac: f64, seed: u64) -> Vec<ClusterSummary> {
    let num_sets = 4;
    let layout = AcfLayout::new(vec![1; num_sets]);
    let mut rng = SeededRng::new(seed);
    (0..n)
        .map(|i| {
            let set = i % num_sets;
            let poor = rng.uniform() < poor_frac;
            let center = 10.0 * rng.index(8) as f64;
            let mut acf = Acf::empty(&layout, set);
            for _ in 0..20 {
                let projections: Vec<Vec<f64>> = (0..num_sets)
                    .map(|s| {
                        if s == set {
                            vec![center + rng.normal(0.0, 0.3)]
                        } else if poor {
                            vec![rng.uniform_in(-100.0, 100.0)]
                        } else {
                            vec![center + rng.normal(0.0, 0.3)]
                        }
                    })
                    .collect();
                acf.add_row(&projections);
            }
            ClusterSummary { id: ClusterId(i as u32), set, acf }
        })
        .collect()
}

fn graph_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_pruning");
    for &n in &[200usize, 600] {
        let clusters = synthetic_clusters(n, 0.5, 7);
        for (label, prune) in [("off", false), ("on", true)] {
            let config = GraphConfig {
                metric: ClusterDistance::D2,
                density_thresholds: vec![2.0; 4],
                prune_poor_density: prune,
            };
            group.bench_with_input(BenchmarkId::new(format!("prune_{label}"), n), &n, |b, _| {
                b.iter(|| {
                    let g = ClusteringGraph::build(black_box(clusters.clone()), &config);
                    black_box((g.edges, g.comparisons))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, graph_pruning);
criterion_main!(benches);
