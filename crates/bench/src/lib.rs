//! # dar-bench
//!
//! Shared harness utilities for the binaries and Criterion benches that
//! regenerate every table and figure of the paper's evaluation (see
//! `DESIGN.md`, "Per-experiment index", and `EXPERIMENTS.md` for the
//! recorded paper-vs-measured outcomes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use birch::BirchConfig;
use mining::{DarConfig, DensitySpec, RuleQuery};
use std::time::{Duration, Instant};

/// Runs `f` once and returns its result with the elapsed wall-clock time.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Prints a fixed-width ASCII table (header row + separator + data rows).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let body: Vec<String> =
            cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
        println!("  {}", body.join("  "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!("  {}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        line(row.clone());
    }
}

/// The paper's WBCD experimental configuration (Section 7.2): frequency
/// threshold 3% of the tuples, a total memory cap (they used 5 MB) split
/// across the 30 per-attribute trees, adaptive threshold starting fully
/// precise. The Phase II leniency factor (4.0) is the calibrated value at
/// which the clustering graph enters the paper's regime on the WBCD-like
/// workload — tens of non-trivial cliques, edges a small multiple of the
/// node count ("the density and frequency thresholds" were the knobs the
/// paper, too, left free per experiment).
pub fn wbcd_config(total_memory_bytes: usize) -> DarConfig {
    DarConfig {
        birch: BirchConfig {
            initial_threshold: 0.0,
            ..BirchConfig::with_total_budget(total_memory_bytes, 30)
        },
        min_support_frac: 0.03,
        max_cliques: 10_000,
        query: RuleQuery {
            density: DensitySpec::Auto { factor: 4.0 },
            max_antecedent: 2,
            max_consequent: 1,
            max_pair_work: 1_000_000,
            ..RuleQuery::default()
        },
        ..DarConfig::default()
    }
}

/// Formats a `Duration` in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn wbcd_config_matches_the_paper() {
        let c = wbcd_config(5 << 20);
        assert!((c.min_support_frac - 0.03).abs() < 1e-12);
        assert_eq!(c.birch.memory_budget, (5 << 20) / 30);
        assert_eq!(c.birch.initial_threshold, 0.0);
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "x".into()], vec!["22".into(), "yy".into()]],
        );
    }
}
