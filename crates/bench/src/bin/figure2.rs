//! FIG2 — Figure 2 / Goals 2–3: the rule `Job=DBA ∧ Age=30 ⇒ Salary=40,000`
//! has identical classical support (50%) and confidence (60%) in relations
//! R1 and R2, yet R2 intuitively fits the rule better (41K/42K are *near*
//! 40K where R1's 90K/100K are not). The distance-based degree of
//! association captures the difference.
//!
//! Regenerate with: `cargo run -p dar-bench --bin figure2`

use dar_bench::print_table;
use dar_core::Metric;
use datagen::salary::{relation_r1, relation_r2, JOB_DBA};
use mining::interest::{confidence, degree_exact, satisfying_rows, support, Predicate};

fn main() {
    let r1 = relation_r1();
    let r2 = relation_r2();
    let antecedent = [Predicate::Eq(0, JOB_DBA), Predicate::Eq(1, 30.0)];
    let consequent = [Predicate::Eq(2, 40_000.0)];

    let mut rows = Vec::new();
    let mut degrees = Vec::new();
    for (name, r) in [("R1", &r1), ("R2", &r2)] {
        let s = support(r, &antecedent, &consequent);
        let c = confidence(r, &antecedent, &consequent).expect("antecedent non-empty");
        // Degree of association of C_X ⇒ C_Y with C_X = 30-year-old DBAs
        // and C_Y = the 40K salary cluster, exact D2 on Salary.
        let cx = satisfying_rows(r, &antecedent);
        let cy = satisfying_rows(r, &consequent);
        let degree =
            degree_exact(r, &cx, &cy, &[2], Metric::Euclidean).expect("both clusters non-empty");
        degrees.push(degree);
        rows.push(vec![
            name.to_string(),
            format!("{:.0}%", 100.0 * s),
            format!("{:.0}%", 100.0 * c),
            format!("{degree:.1}"),
        ]);
    }
    print_table(
        "Figure 2: Rule (1) under classical vs. distance-based interest",
        &["Relation", "support", "confidence", "degree (D2 on Salary, $)"],
        &rows,
    );
    println!("\n  paper: support and confidence identical (50%, 60%) in both relations,");
    println!("  but the rule should rate higher in R2 → lower degree in R2.");
    println!("  measured: degree(R1) = {:.1}, degree(R2) = {:.1}", degrees[0], degrees[1]);
    assert!(degrees[1] < degrees[0], "R2 must score a stronger (lower) degree");
}
