//! FIG1 — Figure 1 of the paper: equi-depth vs distance-based partitioning
//! of the Salary column {18K, 30K, 31K, 80K, 81K, 82K}.
//!
//! Regenerate with: `cargo run -p dar-bench --bin figure1`
//!
//! Expected shape (paper): equi-depth (depth 2) groups the distant values
//! 31K and 80K together; distance-based partitioning instead yields
//! [18K], [30K,31K], [80K,82K].

use classic::{equi_depth, gap_partition};
use dar_bench::print_table;
use datagen::salary::figure1_salaries;

fn main() {
    let salaries = figure1_salaries();
    let equi = equi_depth(&salaries, 2);
    let dist = gap_partition(&salaries, 5_000.0);

    let find = |v: f64, parts: &[dar_core::Interval]| {
        parts
            .iter()
            .position(|iv| iv.contains(v))
            .map(|i| (i + 1).to_string())
            .unwrap_or_else(|| "-".into())
    };
    let rows: Vec<Vec<String>> = salaries
        .iter()
        .map(|&v| {
            let e = equi.iter().find(|iv| iv.contains(v)).unwrap();
            let d = dist.iter().find(|iv| iv.contains(v)).unwrap();
            vec![
                format!("{}K", v / 1000.0),
                find(v, &equi),
                format!("[{}K, {}K]", e.lo / 1000.0, e.hi / 1000.0),
                find(v, &dist),
                format!("[{}K, {}K]", d.lo / 1000.0, d.hi / 1000.0),
            ]
        })
        .collect();
    print_table(
        "Figure 1: Equi-depth vs. distance-based partitioning",
        &["Salary", "ED no.", "ED interval", "DB no.", "DB interval"],
        &rows,
    );

    // The paper's headline contrast: equi-depth groups 31K with 80K; the
    // distance-based partition never does.
    let ed_bad = equi.iter().any(|iv| iv.contains(31_000.0) && iv.contains(80_000.0));
    let db_bad = dist.iter().any(|iv| iv.contains(31_000.0) && iv.contains(80_000.0));
    println!("\n  equi-depth groups 31K with 80K: {ed_bad} (paper: true)");
    println!("  distance-based groups 31K with 80K: {db_bad} (paper: false)");
    assert!(ed_bad && !db_bad, "Figure 1 shape must hold");
}
