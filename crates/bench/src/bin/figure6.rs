//! FIG6 — Figure 6 of the paper: Phase I running time vs. relation size on
//! the WBCD-like workload (30 attributes, frequency threshold 3%, total
//! memory cap 5 MB). The paper reports linear scaling up to 0.5M tuples.
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin figure6`
//! (pass sizes as arguments to override, e.g. `figure6 50000 100000`).

use dar_bench::{print_table, secs, time, wbcd_config};
use dar_core::{Metric, Partitioning};
use datagen::wbcd::wbcd_relation;
use mining::DarMiner;

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() {
            vec![100_000, 200_000, 300_000, 400_000, 500_000]
        } else {
            args
        }
    };
    // 10% outliers scale proportionally with the data, per the paper's
    // methodology.
    const OUTLIER_FRAC: f64 = 0.1;
    let miner = DarMiner::new(wbcd_config(5 << 20));

    let mut rows = Vec::new();
    let mut per_tuple = Vec::new();
    for &n in &sizes {
        let (relation, gen_time) = time(|| wbcd_relation(n, OUTLIER_FRAC, 20260707));
        let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
        let result = miner.mine(&relation, &partitioning).expect("valid partitioning");
        let p1 = result.stats.phase1;
        per_tuple.push(p1.as_secs_f64() / n as f64);
        rows.push(vec![
            n.to_string(),
            secs(p1),
            format!("{:.2}", 1e6 * p1.as_secs_f64() / n as f64),
            result.stats.clusters_total.to_string(),
            result.stats.forest.total_rebuilds().to_string(),
            format!("{:.2}", result.stats.forest.total_memory_bytes() as f64 / (1 << 20) as f64),
            secs(gen_time),
        ]);
    }
    print_table(
        "Figure 6: Phase I running time vs. relation size (WBCD-like, 5 MB cap)",
        &["tuples", "phase1 (s)", "µs/tuple", "clusters", "rebuilds", "tree MB", "gen (s)"],
        &rows,
    );

    // Linearity check: per-tuple time at the largest size within 2x of the
    // smallest (the paper's curve is visually linear).
    if per_tuple.len() >= 2 {
        let ratio = per_tuple.last().unwrap() / per_tuple.first().unwrap();
        println!("\n  per-tuple time ratio (largest/smallest): {ratio:.2} (paper: ~1, linear)");
        assert!(ratio < 2.0, "Phase I must scale (near-)linearly, got ratio {ratio:.2}");
    }
}
