//! ABL-MEM — ablation of the adaptive behaviour (Section 3's operating
//! constraint): sweep the total memory budget and observe the
//! precision/quality trade-off — smaller budgets force more rebuilds,
//! larger final thresholds, and fewer/coarser clusters, while never
//! rescanning the data.
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin ablation_memory`

use dar_bench::{print_table, secs, wbcd_config};
use dar_core::{Metric, Partitioning};
use datagen::wbcd::wbcd_relation;
use mining::DarMiner;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let budgets: [(usize, &str); 5] = [
        (256 << 10, "256KB"),
        (1 << 20, "1MB"),
        (2 << 20, "2MB"),
        (5 << 20, "5MB"),
        (16 << 20, "16MB"),
    ];
    let relation = wbcd_relation(n, 0.1, 20260707);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);

    let mut rows = Vec::new();
    let mut cluster_counts = Vec::new();
    for (budget, label) in budgets {
        let miner = DarMiner::new(wbcd_config(budget));
        let result = miner.mine(&relation, &partitioning).expect("valid partitioning");
        let s = &result.stats;
        let mean_diameter = if result.clusters.is_empty() {
            0.0
        } else {
            result.clusters.iter().map(|c| c.diameter()).sum::<f64>() / result.clusters.len() as f64
        };
        cluster_counts.push(s.clusters_total);
        rows.push(vec![
            label.to_string(),
            s.clusters_total.to_string(),
            s.forest.total_rebuilds().to_string(),
            format!("{mean_diameter:.3}"),
            format!("{:.2}", s.forest.total_memory_bytes() as f64 / (1 << 20) as f64),
            secs(s.phase1),
            s.rules.to_string(),
        ]);
    }
    print_table(
        &format!("Ablation: memory budget sweep at n = {n}"),
        &["budget", "clusters", "rebuilds", "mean diameter", "tree MB", "phase1 (s)", "rules"],
        &rows,
    );
    println!("\n  expectation: precision (cluster count) grows with memory; the");
    println!("  adaptive algorithm answers at the finest level the budget allows.");
    assert!(
        cluster_counts.last().unwrap() >= cluster_counts.first().unwrap(),
        "more memory must never yield fewer clusters"
    );
}
