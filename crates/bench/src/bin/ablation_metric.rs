//! ABL-DIST — ablation of the inter-cluster distance choice (Section 5
//! offers D1, D2 and friends): mine the same workloads under D0/D1/D2 and
//! compare the rule sets. The paper leaves the choice open ("we will use D
//! to refer to a distance metric between clusters"); this quantifies how
//! much it matters.
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin ablation_metric`

use birch::BirchConfig;
use dar_bench::print_table;
use dar_core::{Metric, Partitioning, Relation};
use datagen::insurance::insurance_relation;
use datagen::wbcd::wbcd_relation;
use mining::{ClusterDistance, DarConfig, DarMiner, RuleQuery};
use std::collections::BTreeSet;

type RuleKey = (Vec<u32>, Vec<u32>);

fn rule_keys(relation: &Relation, metric: ClusterDistance) -> BTreeSet<RuleKey> {
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let config = DarConfig {
        birch: BirchConfig {
            initial_threshold: 0.0,
            memory_budget: 64 << 10,
            ..BirchConfig::default()
        },
        min_support_frac: 0.05,
        metric,
        query: RuleQuery { max_antecedent: 2, max_consequent: 1, ..RuleQuery::default() },
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(relation, &partitioning).expect("valid partitioning");
    let clusters = result.graph.clusters();
    result
        .rules
        .iter()
        .map(|r| {
            // Key rules by member cluster ids (stable across metric runs
            // because Phase I is metric-independent here).
            (
                r.antecedent.iter().map(|&i| clusters[i].id.0).collect(),
                r.consequent.iter().map(|&i| clusters[i].id.0).collect(),
            )
        })
        .collect()
}

fn jaccard(a: &BTreeSet<RuleKey>, b: &BTreeSet<RuleKey>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

fn main() {
    let workloads: Vec<(&str, Relation)> = vec![
        ("insurance (20K)", insurance_relation(20_000, 42)),
        ("wbcd-like (20K)", wbcd_relation(20_000, 0.1, 20260707)),
    ];
    let mut rows = Vec::new();
    for (name, relation) in &workloads {
        let d0 = rule_keys(relation, ClusterDistance::D0);
        let d1 = rule_keys(relation, ClusterDistance::D1);
        let d2 = rule_keys(relation, ClusterDistance::D2);
        rows.push(vec![
            name.to_string(),
            d0.len().to_string(),
            d1.len().to_string(),
            d2.len().to_string(),
            format!("{:.2}", jaccard(&d0, &d1)),
            format!("{:.2}", jaccard(&d1, &d2)),
            format!("{:.2}", jaccard(&d0, &d2)),
        ]);
    }
    print_table(
        "Ablation: inter-cluster distance metric (rule-set agreement)",
        &["workload", "|D0|", "|D1|", "|D2|", "J(D0,D1)", "J(D1,D2)", "J(D0,D2)"],
        &rows,
    );
    println!("\n  D0/D1 (centroid-based) agree closely; D2 (mass-aware) is stricter on");
    println!("  spread-out images — the reason the paper's pruning bound targets D2.");
}
