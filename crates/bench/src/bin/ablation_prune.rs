//! ABL-PRUNE — Section 6.2's "Reducing the cost of Phase II": the
//! poor-density image heuristic. In an initial pass over the ACFs we mark
//! images whose radius already exceeds the density threshold; edges
//! requiring such an image are skipped without evaluating distances. The
//! heuristic is exact under D2, so the graph (and the rules) must be
//! identical — only the comparison count drops.
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin ablation_prune`

use dar_bench::{print_table, secs, wbcd_config};
use dar_core::{Metric, Partitioning};
use datagen::wbcd::wbcd_relation;
use mining::DarMiner;

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() {
            vec![50_000, 100_000, 200_000]
        } else {
            args
        }
    };
    let mut rows = Vec::new();
    for &n in &sizes {
        let relation = wbcd_relation(n, 0.1, 20260707);
        let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);

        let mut on_cfg = wbcd_config(5 << 20);
        on_cfg.prune_poor_density = true;
        let mut off_cfg = wbcd_config(5 << 20);
        off_cfg.prune_poor_density = false;

        let on = DarMiner::new(on_cfg).mine(&relation, &partitioning).expect("valid partitioning");
        let off =
            DarMiner::new(off_cfg).mine(&relation, &partitioning).expect("valid partitioning");

        assert_eq!(
            on.stats.graph_edges, off.stats.graph_edges,
            "pruning must be lossless under D2"
        );
        assert_eq!(on.stats.rules, off.stats.rules, "rule sets must agree");

        let saved =
            1.0 - on.stats.graph_comparisons as f64 / off.stats.graph_comparisons.max(1) as f64;
        rows.push(vec![
            n.to_string(),
            off.stats.graph_comparisons.to_string(),
            on.stats.graph_comparisons.to_string(),
            format!("{:.1}%", 100.0 * saved),
            on.stats.graph_pruned_images.to_string(),
            on.stats.graph_edges.to_string(),
            secs(off.stats.phase2),
            secs(on.stats.phase2),
        ]);
    }
    print_table(
        "Ablation: Phase II poor-density pruning (Section 6.2)",
        &[
            "tuples",
            "cmp (off)",
            "cmp (on)",
            "saved",
            "pruned images",
            "edges",
            "p2 off (s)",
            "p2 on (s)",
        ],
        &rows,
    );
    println!("\n  paper: the heuristic 'dramatically reduces the number of node");
    println!("  comparisons required' while leaving the clustering graph unchanged.");
}
