//! T-ACF — Section 7.2 text table: with data complexity held constant, the
//! number of ACFs found in Phase I stays ~constant (the paper: ≈1050,
//! varying about 5% from 100K to 0.5M tuples) and cluster centroids drift
//! little (<4%).
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin stability`
//! (pass sizes as arguments to override).

use dar_bench::{print_table, wbcd_config};
use dar_core::{Metric, Partitioning, SetId};
use datagen::wbcd::wbcd_relation;
use mining::{DarMiner, MineResult};
use std::collections::HashMap;

/// Per-set centroid list keyed for drift comparison.
fn centroids(result: &MineResult) -> HashMap<SetId, Vec<f64>> {
    let mut map: HashMap<SetId, Vec<f64>> = HashMap::new();
    for c in &result.clusters {
        map.entry(c.set).or_default().push(c.acf.centroid_on(c.set).expect("non-empty")[0]);
    }
    for v in map.values_mut() {
        v.sort_by(f64::total_cmp);
    }
    map
}

/// Mean relative drift between matched (sorted) centroids of two runs,
/// normalized by the column spread.
fn drift(a: &HashMap<SetId, Vec<f64>>, b: &HashMap<SetId, Vec<f64>>) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (set, ca) in a {
        let Some(cb) = b.get(set) else { continue };
        let spread = ca.last().unwrap_or(&1.0) - ca.first().unwrap_or(&0.0);
        if spread <= 0.0 {
            continue;
        }
        let n = ca.len().min(cb.len());
        // Compare the quantile-matched prefixes.
        for i in 0..n {
            let qa = ca[i * ca.len() / n.max(1)];
            let qb = cb[i * cb.len() / n.max(1)];
            total += (qa - qb).abs() / spread;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() {
            vec![100_000, 200_000, 300_000, 400_000, 500_000]
        } else {
            args
        }
    };
    let miner = DarMiner::new(wbcd_config(5 << 20));
    let mut rows = Vec::new();
    let mut counts = Vec::new();
    let mut baseline_centroids = None;
    for &n in &sizes {
        let relation = wbcd_relation(n, 0.1, 20260707);
        let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
        let result = miner.mine(&relation, &partitioning).expect("valid partitioning");
        let cents = centroids(&result);
        let d = match &baseline_centroids {
            None => {
                baseline_centroids = Some(cents);
                0.0
            }
            Some(base) => drift(base, &cents),
        };
        counts.push(result.stats.clusters_total);
        rows.push(vec![
            n.to_string(),
            result.stats.clusters_total.to_string(),
            result.stats.clusters_frequent.to_string(),
            format!("{:.2}%", 100.0 * d),
        ]);
    }
    print_table(
        "Section 7.2: ACF count stability across data sizes",
        &["tuples", "ACFs (clusters)", "frequent", "centroid drift"],
        &rows,
    );
    let max = *counts.iter().max().unwrap() as f64;
    let min = *counts.iter().min().unwrap() as f64;
    let variation = (max - min) / max;
    println!(
        "\n  ACF count variation across sizes: {:.1}% (paper: ~5% around ≈1050 ACFs)",
        100.0 * variation
    );
    assert!(
        variation < 0.25,
        "cluster structure must stay roughly constant, varied {variation:.2}"
    );
}
