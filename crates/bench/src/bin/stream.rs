//! STREAM — benchmark for the sliding-window serving layer: how long a
//! window advance takes end to end (seal + rule re-mine + churn diff +
//! fan-out), how fast the rule-set diff itself is, and how many churn
//! events per second K concurrent subscribers absorb — plus the
//! correctness bar: the windowed server's wire rules must equal a
//! one-shot engine over exactly the live rows.
//!
//! Emits `BENCH_stream.json` in the current directory.
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin stream`

use dar_bench::{print_table, time};
use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{
    protocol, Backoff, Client, Json, RetirePolicy, ServeConfig, Server, WindowSpec, WindowedEngine,
};
use mining::RuleQuery;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Workload knobs, overridable from the command line.
struct Opts {
    /// Windows to seal (one ingest + one explicit `advance` each).
    windows: usize,
    /// Rows in the first window's batch; later batches grow so the live
    /// tuple count — and with it `min_cluster_support` — changes every
    /// window, making every advance genuinely churn.
    batch_size: usize,
    /// Concurrent churn subscribers.
    subscribers: usize,
    out: String,
}

impl Default for Opts {
    fn default() -> Self {
        Opts { windows: 6, batch_size: 400, subscribers: 4, out: "BENCH_stream.json".into() }
    }
}

fn parse_opts() -> Opts {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts::default();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).unwrap_or_else(|| panic!("flag {} needs a value", argv[i])).clone()
        };
        match argv[i].as_str() {
            "--windows" => {
                opts.windows = value(i).parse().expect("--windows");
                i += 2;
            }
            "--batch-size" => {
                opts.batch_size = value(i).parse().expect("--batch-size");
                i += 2;
            }
            "--subscribers" => {
                opts.subscribers = value(i).parse().expect("--subscribers");
                i += 2;
            }
            "--out" => {
                opts.out = value(i);
                i += 2;
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    opts
}

/// Two planted blocks with dyadic jitter (0.25 steps): floating-point
/// sums are exact in any grouping, so the windowed re-merge reproduces
/// the one-shot scan bit for bit.
fn rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let k = i + offset;
            let jitter = (k % 4) as f64 * 0.25;
            if k.is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

fn config() -> EngineConfig {
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.2;
    config
}

fn partitioning() -> Partitioning {
    Partitioning::per_attribute(&Schema::interval_attrs(2), Metric::Euclidean)
}

/// Finds one series in the wire registry by family name and returns the
/// requested numeric field. Zero when absent.
fn metric_field(registry: &Json, name: &str, field: &str) -> f64 {
    registry
        .get("metrics")
        .and_then(Json::as_array)
        .and_then(|series| {
            series
                .iter()
                .find(|m| m.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|m| m.get(field))
                .and_then(Json::as_f64)
        })
        .unwrap_or(0.0)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let opts = parse_opts();
    const SLOTS: usize = 3; // open window + two sealed = a 2-window live horizon

    // Only explicit `advance` seals (the batch threshold is out of reach),
    // so each advance round trip is one clean window-boundary sample.
    let spec = WindowSpec { batches: u64::MAX, slots: SLOTS };
    let engine =
        WindowedEngine::new(partitioning(), config(), spec, RetirePolicy::Remerge).unwrap();
    let serve_config = ServeConfig {
        threads: 2,
        read_timeout: Duration::from_secs(30),
        write_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let handle = Server::start(engine, "127.0.0.1:0", serve_config).expect("bind loopback");
    let addr = handle.addr().to_string();

    // K subscribers attach before any churn. Each counts the events it
    // receives; `target_epoch` stays MAX until the workload finishes, then
    // tells them which epoch is the last one worth waiting for.
    let target_epoch = Arc::new(AtomicU64::new(u64::MAX));
    let subscriber_threads: Vec<_> = (0..opts.subscribers)
        .map(|_| {
            let addr = addr.clone();
            let target = Arc::clone(&target_epoch);
            std::thread::spawn(move || {
                let client = Client::connect(addr.as_str(), Duration::from_millis(500)).unwrap();
                let mut sub = client.subscribe(None, Backoff::default()).unwrap();
                let mut events = 0u64;
                loop {
                    match sub.next_event() {
                        Ok(_) => events += 1,
                        // Quiet socket: done once the workload has named its
                        // final epoch and we have caught up to it.
                        Err(_) => {
                            let t = target.load(Ordering::SeqCst);
                            if t != u64::MAX && sub.last_epoch() >= t {
                                break;
                            }
                        }
                    }
                }
                events
            })
        })
        .collect();

    // --- the workload: one batch + one explicit advance per window -------
    let mut writer = Client::connect(addr.as_str(), Duration::from_secs(30)).unwrap();
    let mut advance_ns: Vec<f64> = Vec::with_capacity(opts.windows);
    let mut batches: Vec<Vec<Vec<f64>>> = Vec::with_capacity(opts.windows);
    let (_, workload_wall) = time(|| {
        for w in 0..opts.windows {
            // Growing batches: the live tuple count changes every window,
            // so every advance re-mines to a different rule set (churn).
            let batch = rows(opts.batch_size + 40 * w, 7 * w);
            writer.ingest(batch.clone()).expect("ingest");
            batches.push(batch);
            let (_, wall) = time(|| writer.advance().expect("advance"));
            advance_ns.push(wall.as_nanos() as f64);
        }
    });

    // --- correctness: windowed wire rules == one-shot over live rows -----
    let response = writer.query(RuleQuery::default()).expect("windowed query");
    let windowed_rules = response.get("rules").expect("rules").encode();
    let final_epoch = response.get("epoch").and_then(Json::as_u64).expect("epoch");
    let mut oneshot = DarEngine::new(partitioning(), config()).unwrap();
    // The open window is empty, so the live horizon is the last SLOTS-1
    // sealed windows.
    for batch in batches.iter().skip(opts.windows.saturating_sub(SLOTS - 1)) {
        oneshot.ingest(batch).unwrap();
    }
    let expected = oneshot.query(&RuleQuery::default()).unwrap().rules;
    assert!(!expected.is_empty(), "the planted blocks must yield rules");
    let oneshot_rules =
        Json::Arr(expected.iter().map(|r| protocol::rule_json(r, r.degree)).collect::<Vec<_>>())
            .encode();
    let equal = windowed_rules == oneshot_rules;

    // --- drain the subscribers and read the server-side metrics ----------
    target_epoch.store(final_epoch, Ordering::SeqCst);
    let events_delivered: u64 =
        subscriber_threads.into_iter().map(|t| t.join().expect("subscriber")).sum();
    let events_per_sec = events_delivered as f64 / workload_wall.as_secs_f64();

    let metrics_wire = writer.metrics().expect("metrics verb");
    let registry = metrics_wire.get("registry").cloned().unwrap_or(Json::Obj(Vec::new()));
    let diff_p50 = metric_field(&registry, "dar_stream_diff_ns", "p50");
    let diff_p99 = metric_field(&registry, "dar_stream_diff_ns", "p99");
    let advanced = metric_field(&registry, "dar_stream_windows_advanced_total", "value");
    let retired = metric_field(&registry, "dar_stream_windows_retired_total", "value");
    let pushed = metric_field(&registry, "dar_stream_events_pushed_total", "value");
    let dropped = metric_field(&registry, "dar_stream_events_dropped_total", "value");

    writer.shutdown().expect("shutdown");
    drop(writer);
    handle.join().expect("join server");

    advance_ns.sort_by(f64::total_cmp);
    let advance_mean = advance_ns.iter().sum::<f64>() / advance_ns.len().max(1) as f64;

    print_table(
        "Stream: window advance, churn diff, and subscriber fan-out",
        &["quantity", "value"],
        &[
            vec!["windows sealed".into(), opts.windows.to_string()],
            vec!["subscribers".into(), opts.subscribers.to_string()],
            vec!["advance wall mean (µs)".into(), format!("{:.1}", advance_mean / 1e3)],
            vec![
                "advance wall p99 (µs)".into(),
                format!("{:.1}", percentile(&advance_ns, 99.0) / 1e3),
            ],
            vec!["rule diff p50 (µs)".into(), format!("{:.1}", diff_p50 / 1e3)],
            vec!["rule diff p99 (µs)".into(), format!("{:.1}", diff_p99 / 1e3)],
            vec!["events delivered".into(), events_delivered.to_string()],
            vec!["events/s (workload wall)".into(), format!("{events_per_sec:.0}")],
            vec!["events pushed / dropped".into(), format!("{pushed:.0} / {dropped:.0}")],
            vec!["windows advanced / retired".into(), format!("{advanced:.0} / {retired:.0}")],
            vec!["windowed == one-shot".into(), equal.to_string()],
        ],
    );
    assert!(equal, "windowed wire rules diverged from the one-shot live-row engine");

    let report = Json::obj(vec![
        ("windows", Json::Num(opts.windows as f64)),
        ("batch_size", Json::Num(opts.batch_size as f64)),
        ("subscribers", Json::Num(opts.subscribers as f64)),
        ("advance_wall_ns_mean", Json::Num(advance_mean)),
        ("advance_wall_ns_p50", Json::Num(percentile(&advance_ns, 50.0))),
        ("advance_wall_ns_p99", Json::Num(percentile(&advance_ns, 99.0))),
        ("diff_ns_p50", Json::Num(diff_p50)),
        ("diff_ns_p99", Json::Num(diff_p99)),
        ("events_delivered", Json::Num(events_delivered as f64)),
        ("events_per_sec", Json::Num(events_per_sec)),
        ("events_pushed", Json::Num(pushed)),
        ("events_dropped", Json::Num(dropped)),
        ("windows_advanced", Json::Num(advanced)),
        ("windows_retired", Json::Num(retired)),
        ("windowed_equals_oneshot", Json::Bool(equal)),
    ]);
    std::fs::write(&opts.out, format!("{}\n", report.encode())).expect("write report");
    println!("\n  wrote {}", opts.out);
}
