//! ABL-PHASE1 — replacing the adaptive BIRCH Phase I with the paper's cited
//! global clusterers: k-means (`[KR90]`-style objective, Lloyd + k-means++)
//! and CLARANS (`[NH94]`). All three feed the *same* Phase II (the
//! `kclust::adapter` turns hard assignments into ACFs), so the comparison
//! isolates Phase I:
//!
//! * quality: SSE and mean diameter per attribute against the ground-truth
//!   grid structure;
//! * cost: wall time and, crucially, data passes — BIRCH is single-scan,
//!   the global methods are not;
//! * downstream: do the planted component rules survive?
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin ablation_phase1`

use birch::{AcfForest, BirchConfig};
use dar_bench::{print_table, secs, time};
use dar_core::{ClusterId, ClusterSummary, Metric, Partitioning, Relation};
use datagen::grid::grid_spec;
use kclust::{assignments_to_summaries, clarans, kmeans, sse, ClaransConfig, KMeansConfig};
use mining::clique::{maximal_cliques, non_trivial};
use mining::graph::{ClusterDistance, ClusteringGraph, GraphConfig};
use std::time::Duration;

const CLUSTERS: usize = 4;
const ATTRS: usize = 3;

/// Per-attribute clustering by each method; returns summaries + quality.
struct Phase1Run {
    name: &'static str,
    summaries: Vec<ClusterSummary>,
    total_sse: f64,
    elapsed: Duration,
    passes: &'static str,
}

fn birch_run(relation: &Relation, partitioning: &Partitioning) -> Phase1Run {
    let config =
        BirchConfig { initial_threshold: 8.0, memory_budget: usize::MAX, ..BirchConfig::default() };
    let (per_set, elapsed) = time(|| {
        let mut forest = AcfForest::new(partitioning.clone(), &config);
        forest.scan(relation);
        forest.finish()
    });
    let mut summaries = Vec::new();
    let mut next_id = 0u32;
    let mut total_sse = 0.0;
    for (set, acfs) in per_set.into_iter().enumerate() {
        for acf in acfs {
            // SSE contribution: n·radius².
            total_sse += acf.n() as f64 * acf.home_cf().radius_sq();
            summaries.push(ClusterSummary { id: ClusterId(next_id), set, acf });
            next_id += 1;
        }
    }
    Phase1Run { name: "birch (1 scan)", summaries, total_sse, elapsed, passes: "1" }
}

fn global_run(
    relation: &Relation,
    partitioning: &Partitioning,
    name: &'static str,
    cluster_fn: impl Fn(&[Vec<f64>]) -> kclust::Clustering,
    passes: &'static str,
) -> Phase1Run {
    let ((summaries, total_sse), elapsed) = time(|| {
        let mut summaries = Vec::new();
        let mut next_id = 0u32;
        let mut total_sse = 0.0;
        for set in 0..partitioning.num_sets() {
            let points: Vec<Vec<f64>> = (0..relation.len())
                .map(|row| relation.project(row, &partitioning.set(set).attrs))
                .collect();
            let clustering = cluster_fn(&points);
            total_sse += sse(&points, &clustering.assignments, clustering.k());
            summaries.extend(assignments_to_summaries(
                relation,
                partitioning,
                set,
                &clustering.assignments,
                clustering.k(),
                &mut next_id,
            ));
        }
        (summaries, total_sse)
    });
    Phase1Run { name, summaries, total_sse, elapsed, passes }
}

/// Runs the shared Phase II and reports how many of the planted grid
/// components are covered by a full cross-attribute clique.
fn phase2_components(summaries: Vec<ClusterSummary>, s0: u64) -> (usize, usize) {
    let frequent: Vec<ClusterSummary> =
        summaries.into_iter().filter(|c| c.is_frequent(s0)).collect();
    let graph = ClusteringGraph::build(
        frequent,
        &GraphConfig {
            metric: ClusterDistance::D2,
            density_thresholds: vec![60.0; ATTRS],
            prune_poor_density: true,
        },
    );
    let clusters = graph.clusters();
    let (cliques, _) = maximal_cliques(graph.adjacency(), 0);
    let _ = non_trivial(&cliques);
    // A clique of size ATTRS covers component c when every member's
    // centroid matches the Latin-square layout of component c.
    let component_of = |m: usize| -> Option<i64> {
        let c = &clusters[m];
        let centroid = c.acf.centroid_on(c.set).ok()?[0];
        let pos = (centroid / 100.0).round();
        if (centroid - 100.0 * pos).abs() > 25.0 {
            return None; // cluster centroid off the grid: noise-dominated
        }
        Some((pos as i64 - c.set as i64).rem_euclid(CLUSTERS as i64))
    };
    let mut covered = [false; CLUSTERS];
    for q in &cliques {
        if q.len() != ATTRS {
            continue;
        }
        let comps: Vec<Option<i64>> = q.iter().map(|&m| component_of(m)).collect();
        if let Some(first) = comps[0] {
            if comps.iter().all(|&c| c == Some(first)) {
                covered[first as usize] = true;
            }
        }
    }
    (graph.edges, covered.iter().filter(|&&c| c).count())
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(30_000);
    let spec = grid_spec(ATTRS, CLUSTERS, 100.0, 1.0, 0.02);
    let relation = spec.generate(n, 77);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let s0 = (n / 10) as u64;

    let runs = vec![
        birch_run(&relation, &partitioning),
        global_run(
            &relation,
            &partitioning,
            "k-means++ (multi-pass)",
            |pts| {
                kmeans(
                    pts,
                    // k must cover clusters + noise absorbers.
                    &KMeansConfig { k: CLUSTERS + 2, ..KMeansConfig::default() },
                )
            },
            "~50×4",
        ),
        global_run(
            &relation,
            &partitioning,
            "CLARANS (multi-pass)",
            |pts| {
                clarans(
                    pts,
                    &ClaransConfig {
                        k: CLUSTERS + 2,
                        num_local: 2,
                        max_neighbors: 40,
                        ..ClaransConfig::default()
                    },
                )
            },
            "O(neighbors)",
        ),
    ];

    let mut rows = Vec::new();
    for run in runs {
        let clusters = run.summaries.len();
        let (edges, components) = phase2_components(run.summaries, s0);
        rows.push(vec![
            run.name.to_string(),
            secs(run.elapsed),
            run.passes.to_string(),
            clusters.to_string(),
            format!("{:.0}", run.total_sse),
            edges.to_string(),
            format!("{components}/{CLUSTERS}"),
        ]);
    }
    print_table(
        &format!("Ablation: Phase I clusterer at n = {n} (grid, 4 components × 3 attrs)"),
        &["method", "time (s)", "passes", "clusters", "SSE", "edges", "components found"],
        &rows,
    );
    println!("\n  expectation: comparable cluster quality, but only BIRCH achieves it");
    println!("  in a single scan under a memory budget — the paper's design point.");
}
