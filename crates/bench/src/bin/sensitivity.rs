//! ABL-SENS — the sensitivity study the paper names as ongoing work
//! (Section 8: "a comprehensive study of the sensitivity of our algorithm
//! to different input threshold values"). Sweeps the frequency threshold
//! `s0`, the Phase II density leniency, and the degree factor on the
//! insurance workload, reporting rule counts and whether the planted
//! Figure 5 rule survives each setting.
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin sensitivity`

use birch::BirchConfig;
use dar_bench::print_table;
use dar_core::{Metric, Partitioning};
use datagen::insurance::{insurance_relation, AGE, CLAIMS, DEPENDENTS};
use mining::{DarConfig, DarMiner, DensitySpec, MineResult, RuleQuery};

/// Whether the planted `C_Age C_Dep ⇒ C_Claims` rule is present.
fn planted_found(result: &MineResult) -> bool {
    let clusters = result.graph.clusters();
    result.rules.iter().any(|r| {
        if r.consequent.len() != 1 {
            return false;
        }
        let cons = &clusters[r.consequent[0]];
        if cons.set != CLAIMS {
            return false;
        }
        let claims = cons.acf.centroid_on(CLAIMS).unwrap()[0];
        if !(10_000.0..=14_000.0).contains(&claims) {
            return false;
        }
        let mut has_age = false;
        let mut has_dep = false;
        for &a in &r.antecedent {
            let c = &clusters[a];
            let centroid = c.acf.centroid_on(c.set).unwrap()[0];
            has_age |= c.set == AGE && (41.0..=47.0).contains(&centroid);
            has_dep |= c.set == DEPENDENTS && (2.0..=5.0).contains(&centroid);
        }
        has_age && has_dep
    })
}

fn mine(support: f64, density_factor: f64, degree_factor: f64) -> MineResult {
    let relation = insurance_relation(20_000, 42);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let config = DarConfig {
        birch: BirchConfig { memory_budget: 1 << 20, ..BirchConfig::default() },
        initial_thresholds: Some(vec![2.0, 1.5, 2_000.0]),
        min_support_frac: support,
        query: RuleQuery {
            density: DensitySpec::Auto { factor: density_factor },
            degree_factor,
            max_antecedent: 2,
            max_consequent: 1,
            ..RuleQuery::default()
        },
        ..DarConfig::default()
    };
    DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning")
}

fn main() {
    // --- sweep 1: frequency threshold s0 -------------------------------
    let mut rows = Vec::new();
    for support in [0.01, 0.03, 0.05, 0.10, 0.20, 0.35] {
        let r = mine(support, 1.5, 2.0);
        rows.push(vec![
            format!("{:.0}%", 100.0 * support),
            r.stats.clusters_frequent.to_string(),
            r.stats.graph_edges.to_string(),
            r.stats.rules.to_string(),
            planted_found(&r).to_string(),
        ]);
    }
    print_table(
        "Sensitivity: frequency threshold s0 (density 1.5, degree 2.0)",
        &["s0", "frequent", "edges", "rules", "planted rule"],
        &rows,
    );

    // --- sweep 2: Phase II density leniency -----------------------------
    let mut rows = Vec::new();
    for density in [0.5, 1.0, 1.5, 2.5, 4.0] {
        let r = mine(0.1, density, 2.0);
        rows.push(vec![
            format!("{density:.1}"),
            r.stats.graph_edges.to_string(),
            r.stats.nontrivial_cliques.to_string(),
            r.stats.rules.to_string(),
            planted_found(&r).to_string(),
        ]);
    }
    print_table(
        "Sensitivity: Phase II density factor (s0 10%, degree 2.0)",
        &["factor", "edges", "non-trivial cliques", "rules", "planted rule"],
        &rows,
    );

    // --- sweep 3: degree-of-association leniency ------------------------
    let mut rows = Vec::new();
    let mut rule_counts = Vec::new();
    for degree in [0.5, 1.0, 1.5, 2.0, 3.0] {
        let r = mine(0.1, 1.5, degree);
        rule_counts.push(r.stats.rules);
        rows.push(vec![
            format!("{degree:.1}"),
            r.stats.rules.to_string(),
            planted_found(&r).to_string(),
        ]);
    }
    print_table(
        "Sensitivity: degree factor D0 (s0 10%, density 1.5)",
        &["factor", "rules", "planted rule"],
        &rows,
    );
    assert!(
        rule_counts.windows(2).all(|w| w[0] <= w[1]),
        "rule count must grow monotonically with the degree threshold: {rule_counts:?}"
    );
    println!("\n  expectation: rules grow with every leniency knob; the planted rule");
    println!("  survives a wide middle band and disappears only at extreme settings.");
}
