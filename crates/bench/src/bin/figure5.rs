//! FIG5 — Figure 5 / Section 5.2: mining the planted N:1 rule
//! "people aged 41–47 with 2–5 dependents have close to $10K–$14K of annual
//! claims" from the insurance workload, end-to-end through the two-phase
//! DAR miner.
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin figure5`

use birch::BirchConfig;
use dar_bench::print_table;
use dar_core::{Metric, Partitioning};
use datagen::insurance::{insurance_relation, AGE, CLAIMS, DEPENDENTS};
use mining::describe::describe_rule;
use mining::{DarConfig, DarMiner, RuleQuery};

fn main() {
    let relation = insurance_relation(20_000, 42);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let config = DarConfig {
        birch: BirchConfig { memory_budget: 1 << 20, ..BirchConfig::default() },
        // One diameter threshold per attribute scale: ages in years,
        // dependents in heads, claims in dollars (the paper's per-X_i
        // threshold selection, Section 4.3.1).
        initial_thresholds: Some(vec![2.0, 1.5, 2_000.0]),
        min_support_frac: 0.1,
        query: RuleQuery { max_antecedent: 2, max_consequent: 1, ..RuleQuery::default() },
        rescan_candidate_frequency: true,
        ..DarConfig::default()
    };
    let result = DarMiner::new(config).mine(&relation, &partitioning).expect("valid partitioning");

    println!(
        "clusters: {} total, {} frequent (s0 = {}); edges {}; non-trivial cliques {}",
        result.stats.clusters_total,
        result.stats.clusters_frequent,
        result.stats.s0,
        result.stats.graph_edges,
        result.stats.nontrivial_cliques
    );

    // All N:1 rules with Claims in the consequent, strongest first.
    let clusters = result.graph.clusters();
    let rows: Vec<Vec<String>> = result
        .rules
        .iter()
        .enumerate()
        .filter(|(_, r)| r.consequent.len() == 1 && clusters[r.consequent[0]].set == CLAIMS)
        .take(10)
        .map(|(i, r)| {
            let freq = result.rule_frequencies.get(i).copied().unwrap_or(0);
            vec![describe_rule(r, clusters, relation.schema(), &partitioning), freq.to_string()]
        })
        .collect();
    print_table("Figure 5: N:1 rules targeting Claims", &["rule", "frequency"], &rows);

    // The planted rule must be found: some antecedent covering the
    // 41–47 age band and the 2–5 dependents band implying a claims cluster
    // near 12K.
    let planted = result.rules.iter().any(|r| {
        if r.consequent.len() != 1 {
            return false;
        }
        let cons = &clusters[r.consequent[0]];
        if cons.set != CLAIMS {
            return false;
        }
        let claims_centroid = cons.acf.centroid_on(CLAIMS).unwrap()[0];
        if !(10_000.0..=14_000.0).contains(&claims_centroid) {
            return false;
        }
        let mut has_age = false;
        let mut has_dep = false;
        for &a in &r.antecedent {
            let c = &clusters[a];
            let centroid = c.acf.centroid_on(c.set).unwrap()[0];
            if c.set == AGE && (41.0..=47.0).contains(&centroid) {
                has_age = true;
            }
            if c.set == DEPENDENTS && (2.0..=5.0).contains(&centroid) {
                has_dep = true;
            }
        }
        has_age && has_dep
    });
    println!("\n  planted rule C_Age C_Dep ⇒ C_Claims recovered: {planted} (paper: yes)");
    assert!(planted, "the Figure 5 rule must be mined");
}
