//! SERVER — load generator for the `dar-serve` network layer: N client
//! threads drive a mixed ingest/query workload over real TCP, measuring
//! end-to-end throughput and the cold-vs-cached query latency gap that
//! Theorem 6.1's read-concurrency buys (queries from a closed epoch are
//! answered from one shared `Phase2Artifacts`, in parallel).
//!
//! Emits `BENCH_server.json` in the current directory.
//!
//! Two modes:
//!
//! * self-contained (default): spawns an in-process server on an
//!   ephemeral loopback port, runs the workload, shuts it down;
//! * `--addr HOST:PORT`: drives an already-running `dar serve` instance
//!   (the CI smoke test starts the real binary and points this at it);
//!   add `--shutdown` to send the wire `shutdown` verb when done.
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin server`

use dar_bench::{print_table, secs, time};
use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{json::Json, Backoff, Client, ServeConfig, Server, ServerHandle};
use mining::RuleQuery;
use std::time::Duration;

/// Workload knobs, overridable from the command line.
struct Opts {
    addr: Option<String>,
    clients: usize,
    batches: usize,
    batch_size: usize,
    queries: usize,
    shutdown: bool,
    out: String,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            addr: None,
            clients: 4,
            batches: 4,
            batch_size: 500,
            queries: 25,
            shutdown: false,
            out: "BENCH_server.json".into(),
        }
    }
}

fn parse_opts() -> Opts {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts::default();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).unwrap_or_else(|| panic!("flag {} needs a value", argv[i])).clone()
        };
        match argv[i].as_str() {
            "--addr" => {
                opts.addr = Some(value(i));
                i += 2;
            }
            "--clients" => {
                opts.clients = value(i).parse().expect("--clients");
                i += 2;
            }
            "--batches" => {
                opts.batches = value(i).parse().expect("--batches");
                i += 2;
            }
            "--batch-size" => {
                opts.batch_size = value(i).parse().expect("--batch-size");
                i += 2;
            }
            "--queries" => {
                opts.queries = value(i).parse().expect("--queries");
                i += 2;
            }
            "--shutdown" => {
                opts.shutdown = true;
                i += 1;
            }
            "--out" => {
                opts.out = value(i);
                i += 2;
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    opts
}

/// Three-attribute rows with two planted blocks — the workload every
/// `dar-serve` test uses, matching `dar serve --attrs 3`.
fn rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let k = i + offset;
            let jitter = (k % 9) as f64 * 0.01;
            match k % 2 {
                0 => vec![jitter, 100.0 + jitter, 5.0 + jitter * 0.1],
                _ => vec![50.0 + jitter, 200.0 + jitter, 9.0 + jitter * 0.1],
            }
        })
        .collect()
}

fn in_process_server(engine_threads: usize) -> ServerHandle {
    let schema = Schema::interval_attrs(3);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 1.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.1;
    config.threads = engine_threads;
    let engine = DarEngine::new(partitioning, config).unwrap();
    Server::start(engine, "127.0.0.1:0", ServeConfig::default()).expect("bind loopback")
}

fn connect(addr: &str) -> Client {
    Client::connect(addr, Duration::from_secs(30)).unwrap_or_else(|e| panic!("connect {addr}: {e}"))
}

/// Finds one series in the wire registry (`metrics` verb response) by
/// family name and returns the requested numeric field (`value`, `p50`,
/// `p99`, `count`, …). Zero when the family is absent.
fn metric_field(registry: &Json, name: &str, field: &str) -> f64 {
    registry
        .get("metrics")
        .and_then(Json::as_array)
        .and_then(|series| {
            series
                .iter()
                .find(|m| m.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|m| m.get(field))
                .and_then(Json::as_f64)
        })
        .unwrap_or(0.0)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let opts = parse_opts();
    let handle = if opts.addr.is_none() { Some(in_process_server(1)) } else { None };
    let addr = match &opts.addr {
        Some(addr) => addr.clone(),
        None => handle.as_ref().expect("in-process").addr().to_string(),
    };
    // The in-process server is ours to stop; an external one only if asked.
    let send_shutdown = opts.shutdown || handle.is_some();

    // --- phase A: seed ingest, then cold vs cached query latency ---------
    let mut writer = connect(&addr);
    let total_rows = opts.batches * opts.batch_size;
    let (_, ingest_wall) = time(|| {
        for b in 0..opts.batches {
            writer.ingest(rows(opts.batch_size, b * opts.batch_size)).expect("seed ingest");
        }
    });
    let query = RuleQuery { degree_factor: 2.5, ..RuleQuery::default() };
    let (cold, cold_wall) = time(|| writer.query(query.clone()).expect("cold query"));
    assert_eq!(cold.get("cached").and_then(Json::as_bool), Some(false), "first query is cold");

    let mut cached_ms: Vec<f64> = (0..opts.queries)
        .map(|i| {
            let retuned =
                RuleQuery { degree_factor: 1.5 + 0.1 * (i % 10) as f64, ..RuleQuery::default() };
            let (response, wall) = time(|| writer.query(retuned).expect("cached query"));
            assert_eq!(response.get("cached").and_then(Json::as_bool), Some(true));
            wall.as_secs_f64() * 1e3
        })
        .collect();
    cached_ms.sort_by(f64::total_cmp);
    let cached_mean = cached_ms.iter().sum::<f64>() / cached_ms.len().max(1) as f64;
    let cold_ms = cold_wall.as_secs_f64() * 1e3;
    let speedup = cold_ms / cached_mean.max(1e-9);

    // --- phase B: N concurrent clients, mixed ingest/query ---------------
    let per_client = opts.queries;
    let (served, mixed_wall) = time(|| {
        let threads: Vec<_> = (0..opts.clients)
            .map(|c| {
                let addr = addr.clone();
                let batch_size = opts.batch_size / 4;
                std::thread::spawn(move || {
                    let mut client = connect(&addr);
                    // Distinct seeds decorrelate the clients' retry jitter,
                    // so a refused burst doesn't re-arrive in lockstep.
                    let backoff = Backoff { seed: c as u64, ..Backoff::default() };
                    let mut served = 0u64;
                    for i in 0..per_client {
                        // One request in eight is an ingest (client 0 only:
                        // the single-writer path), the rest are re-tuned
                        // queries racing on the shared epoch. Transient
                        // `overloaded`/`degraded` refusals back off and
                        // retry instead of failing the run.
                        if c == 0 && i % 8 == 3 {
                            client
                                .ingest_with_retry(
                                    rows(batch_size, 1_000_000 + i * batch_size),
                                    &backoff,
                                )
                                .unwrap();
                        } else {
                            let q = RuleQuery {
                                degree_factor: 1.5 + 0.1 * ((c + i) % 10) as f64,
                                ..RuleQuery::default()
                            };
                            client.query_with_retry(q, &backoff).unwrap();
                        }
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).sum::<u64>()
    });
    let throughput = served as f64 / mixed_wall.as_secs_f64();

    // --- server-side counters --------------------------------------------
    let stats = writer.stats().expect("stats");
    let engine = stats.get("engine").cloned().unwrap_or(Json::Obj(Vec::new()));
    let server = stats.get("server").cloned().unwrap_or(Json::Obj(Vec::new()));
    let counter = |block: &Json, name: &str| block.get(name).and_then(Json::as_u64).unwrap_or(0);
    let shared_read_hits = counter(&engine, "shared_read_hits");
    let cache_hits = counter(&engine, "cache_hits");
    let rejected = counter(&server, "rejected_connections");

    // --- per-stage metrics over the wire (`metrics` verb) ----------------
    let metrics_wire = writer.metrics().expect("metrics verb");
    let registry = metrics_wire.get("registry").cloned().unwrap_or(Json::Obj(Vec::new()));
    let phase1_p99 = metric_field(&registry, "dar_engine_phase1_insert_ns", "p99");
    let phase2_p99 = metric_field(&registry, "dar_mining_phase2_build_ns", "p99");
    let cliques = metric_field(&registry, "dar_mining_cliques_total", "value");

    if send_shutdown {
        writer.shutdown().expect("shutdown");
    }
    drop(writer);
    if let Some(handle) = handle {
        handle.join().expect("join in-process server");
    }

    // --- phase C (self-contained only): engine worker sweep --------------
    // Fresh server per `dar-par` worker count, same seed ingest + one cold
    // query; mining output is byte-identical at every count, so only the
    // walls move. `parallel_speedup` is serial wall over the best wall
    // (>= 1.0 by construction: the sweep includes the serial point).
    let mut sweep: Vec<(usize, f64, f64)> = Vec::new();
    let cores = dar_par::available_parallelism();
    if opts.addr.is_none() {
        let mut counts = vec![1, 2, 4, cores];
        counts.sort_unstable();
        counts.dedup();
        for threads in counts {
            let handle = in_process_server(threads);
            let mut client = connect(&handle.addr().to_string());
            let (_, seed_wall) = time(|| {
                for b in 0..opts.batches {
                    client
                        .ingest(rows(opts.batch_size, b * opts.batch_size))
                        .expect("sweep ingest");
                }
            });
            let (response, cold) = time(|| client.query(query.clone()).expect("sweep cold query"));
            assert_eq!(response.get("cached").and_then(Json::as_bool), Some(false));
            client.shutdown().expect("sweep shutdown");
            drop(client);
            handle.join().expect("join sweep server");
            sweep.push((threads, seed_wall.as_secs_f64(), cold.as_secs_f64() * 1e3));
        }
    }
    let best_seed = sweep.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let parallel_speedup =
        sweep.first().map(|serial| serial.1 / best_seed.max(1e-12)).unwrap_or(1.0);

    print_table(
        "Server: mixed-load throughput and query latency over TCP",
        &["quantity", "value"],
        &[
            vec!["clients".into(), opts.clients.to_string()],
            vec!["seed tuples".into(), total_rows.to_string()],
            vec!["seed ingest wall (s)".into(), secs(ingest_wall)],
            vec!["cold query (ms)".into(), format!("{cold_ms:.3}")],
            vec!["cached query mean (ms)".into(), format!("{cached_mean:.3}")],
            vec!["cached query p99 (ms)".into(), format!("{:.3}", percentile(&cached_ms, 99.0))],
            vec!["cold/cached speedup".into(), format!("{speedup:.1}×")],
            vec!["mixed requests served".into(), served.to_string()],
            vec!["mixed throughput (req/s)".into(), format!("{throughput:.0}")],
            vec!["shared read hits".into(), shared_read_hits.to_string()],
            vec!["engine cache hits".into(), cache_hits.to_string()],
            vec!["rejected connections".into(), rejected.to_string()],
            vec!["phase1 insert p99 (ms/batch)".into(), format!("{:.3}", phase1_p99 / 1e6)],
            vec!["phase2 build p99 (ms)".into(), format!("{:.3}", phase2_p99 / 1e6)],
            vec!["cliques found".into(), format!("{cliques:.0}")],
            vec!["cores available".into(), cores.to_string()],
            vec!["parallel speedup (seed ingest)".into(), format!("{parallel_speedup:.2}×")],
        ],
    );

    if !sweep.is_empty() {
        println!("\n  engine worker sweep (fresh server per count):");
        for (threads, seed_secs, cold_ms) in &sweep {
            println!(
                "    threads={threads:<2} seed ingest {seed_secs:.3}s, cold query {cold_ms:.3}ms"
            );
        }
    }

    let sweep_json: Vec<Json> = sweep
        .iter()
        .map(|&(threads, seed_secs, cold_ms)| {
            Json::obj(vec![
                ("threads", Json::Num(threads as f64)),
                ("seed_ingest_seconds", Json::Num(seed_secs)),
                ("cold_query_ms", Json::Num(cold_ms)),
            ])
        })
        .collect();
    let report = Json::obj(vec![
        ("clients", Json::Num(opts.clients as f64)),
        ("seed_tuples", Json::Num(total_rows as f64)),
        ("seed_ingest_seconds", Json::Num(ingest_wall.as_secs_f64())),
        ("cold_query_ms", Json::Num(cold_ms)),
        ("cached_query_ms_mean", Json::Num(cached_mean)),
        ("cached_query_ms_p50", Json::Num(percentile(&cached_ms, 50.0))),
        ("cached_query_ms_p99", Json::Num(percentile(&cached_ms, 99.0))),
        ("cold_over_cached_speedup", Json::Num(speedup)),
        ("mixed_requests", Json::Num(served as f64)),
        ("mixed_seconds", Json::Num(mixed_wall.as_secs_f64())),
        ("throughput_req_per_sec", Json::Num(throughput)),
        ("shared_read_hits", Json::Num(shared_read_hits as f64)),
        ("engine_cache_hits", Json::Num(cache_hits as f64)),
        ("rejected_connections", Json::Num(rejected as f64)),
        ("phase1_insert_ns_p99", Json::Num(phase1_p99)),
        ("phase2_build_ns_p99", Json::Num(phase2_p99)),
        ("cliques", Json::Num(cliques)),
        ("cores_available", Json::Num(cores as f64)),
        ("thread_sweep", Json::Arr(sweep_json)),
        ("parallel_speedup", Json::Num(parallel_speedup)),
    ]);
    std::fs::write(&opts.out, format!("{}\n", report.encode())).expect("write report");
    println!("\n  wrote {}", opts.out);
}
