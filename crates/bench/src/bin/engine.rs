//! ENGINE — ingest throughput and cold-vs-cached query latency of the
//! long-lived `dar-engine`, demonstrating the Section 6.2 payoff: once
//! Phase I summaries exist, re-tuned Phase II queries should be answered
//! from cached cliques at a small fraction of the cold cost.
//!
//! Also sweeps the `dar-par` worker count (1/2/4/available) over the same
//! ingest + cold-query workload with a fresh engine per count, asserting
//! the mined rules stay identical and recording `parallel_speedup`
//! (serial ingest wall over the best sweep wall — `>= 1.0` by
//! construction since the sweep includes the serial point).
//!
//! Emits `BENCH_engine.json` in the current directory.
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin engine`

use dar_bench::{print_table, secs, time};
use dar_core::{Metric, Partitioning};
use dar_engine::snapshot::{parse_snapshot_bytes, write_snapshot, write_snapshot_bytes};
use dar_engine::{DarEngine, EngineConfig};
use datagen::insurance::insurance_relation;
use mining::{DensitySpec, RuleQuery};
use std::fmt::Write as _;

const TUPLES: usize = 100_000;
const BATCHES: usize = 10;
const QUERY_REPS: u32 = 25;
const CODEC_REPS: usize = 30;

/// Fetches a histogram family's process-global snapshot by name.
fn histogram(name: &str) -> dar_obs::HistogramSnapshot {
    dar_obs::global()
        .snapshot()
        .into_iter()
        .find_map(|m| match (m.name == name, m.value) {
            (true, dar_obs::MetricValue::Histogram(h)) => Some(h),
            _ => None,
        })
        .unwrap_or_else(|| panic!("histogram {name} not registered"))
}

/// Fetches a gauge's process-global level by name.
fn gauge_level(name: &str) -> i64 {
    dar_obs::global()
        .snapshot()
        .into_iter()
        .find_map(|m| match (m.name == name, m.value) {
            (true, dar_obs::MetricValue::Gauge(v)) => Some(v),
            _ => None,
        })
        .unwrap_or_else(|| panic!("gauge {name} not registered"))
}

/// Sums every series of a counter family in the process-global registry.
fn counter_total(name: &str) -> u64 {
    dar_obs::global()
        .snapshot()
        .into_iter()
        .filter(|m| m.name == name)
        .map(|m| match m.value {
            dar_obs::MetricValue::Counter(v) => v,
            _ => 0,
        })
        .sum()
}

/// The benchmark's fixed engine configuration at a given worker count.
fn bench_config(threads: usize) -> EngineConfig {
    let mut config = EngineConfig::default();
    config.birch.memory_budget = 1 << 20;
    config.initial_thresholds = Some(vec![2.0, 1.5, 2_000.0]);
    config.min_support_frac = 0.05;
    config.threads = threads;
    config
}

/// One sweep point: ingest + cold-query walls at a fixed worker count.
struct SweepPoint {
    threads: usize,
    ingest_secs: f64,
    cold_secs: f64,
}

fn main() {
    let relation = insurance_relation(TUPLES, 42);
    let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
    let mut engine = DarEngine::new(partitioning.clone(), bench_config(1)).unwrap();

    // --- ingest throughput, in batches ----------------------------------
    let rows: Vec<Vec<f64>> = (0..relation.len()).map(|r| relation.row(r)).collect();
    let batch_size = rows.len() / BATCHES;
    let (_, ingest_wall) = time(|| {
        for batch in rows.chunks(batch_size) {
            engine.ingest(batch).unwrap();
        }
    });
    let tuples_per_sec = TUPLES as f64 / ingest_wall.as_secs_f64();

    // --- query latency: cold (epoch close + graph + cliques) vs cached --
    let q_base = RuleQuery { max_antecedent: 2, max_consequent: 1, ..RuleQuery::default() };
    let (outcome, cold_wall) = time(|| engine.query(&q_base).unwrap());
    assert!(!outcome.cached);
    let rules_cold = outcome.rules.len();
    let baseline_rules = outcome.rules.clone();

    // Re-tuned D0 sweep over the same density: every rep hits the cache.
    let sweep: Vec<RuleQuery> = (0..QUERY_REPS)
        .map(|i| RuleQuery { degree_factor: 1.0 + 0.1 * i as f64, ..q_base.clone() })
        .collect();
    let (_, cached_wall) = time(|| {
        for q in &sweep {
            let o = engine.query(q).unwrap();
            assert!(o.cached, "D0 sweep must reuse cached cliques");
        }
    });
    let cached_each = cached_wall / QUERY_REPS;

    // A different density setting misses once, then hits again.
    let q_density = RuleQuery { density: DensitySpec::Auto { factor: 2.5 }, ..q_base.clone() };
    let (o, second_cold) = time(|| engine.query(&q_density).unwrap());
    assert!(!o.cached);
    assert!(engine.query(&q_density).unwrap().cached);

    let stats = engine.stats();
    let speedup = cold_wall.as_secs_f64() / cached_each.as_secs_f64().max(1e-12);

    // --- per-stage metrics from the process-global registry --------------
    let phase1 = histogram("dar_engine_phase1_insert_ns");
    let phase2 = histogram("dar_mining_phase2_build_ns");
    let cliques = counter_total("dar_mining_cliques_total");

    // --- dar-par worker sweep: fresh engine per count, identical rules ---
    let cores = dar_par::available_parallelism();
    let mut counts = vec![1, 2, 4, cores];
    counts.sort_unstable();
    counts.dedup();
    let mut sweep = vec![SweepPoint {
        threads: 1,
        ingest_secs: ingest_wall.as_secs_f64(),
        cold_secs: cold_wall.as_secs_f64(),
    }];
    for &threads in counts.iter().filter(|&&t| t != 1) {
        let mut engine = DarEngine::new(partitioning.clone(), bench_config(threads)).unwrap();
        let (_, ingest) = time(|| {
            for batch in rows.chunks(batch_size) {
                engine.ingest(batch).unwrap();
            }
        });
        let (outcome, cold) = time(|| engine.query(&q_base).unwrap());
        assert_eq!(
            outcome.rules, baseline_rules,
            "rules diverged from serial at threads={threads}"
        );
        sweep.push(SweepPoint {
            threads,
            ingest_secs: ingest.as_secs_f64(),
            cold_secs: cold.as_secs_f64(),
        });
    }
    let best_ingest = sweep.iter().map(|p| p.ingest_secs).fold(f64::INFINITY, f64::min);
    let parallel_speedup = sweep[0].ingest_secs / best_ingest.max(1e-12);

    // --- rule quality: ranked, pruned, and anytime answers ---------------
    // Re-rank the cached artifacts by lift with redundancy pruning: same
    // cliques, different order — the rank pass itself is the cost.
    let q_ranked = RuleQuery {
        measure: mining::Measure::Lift,
        prune_redundant: true,
        top_k: 25,
        ..q_base.clone()
    };
    let (ranked, ranked_wall) = time(|| engine.query(&q_ranked).unwrap());
    assert!(ranked.cached, "ranking reuses the cached cliques");
    let prune_ratio =
        if ranked.rules_in > 0 { ranked.pruned as f64 / ranked.rules_in as f64 } else { 0.0 };
    // A generous anytime budget must converge to the exact rule set.
    let q_full_budget = RuleQuery { budget_ms: 60_000, ..q_base.clone() };
    let (full, anytime_full_wall) = time(|| engine.query(&q_full_budget).unwrap());
    assert_eq!(full.coverage, Some(1.0), "a 60s budget sees every clique pair");
    assert_eq!(full.rules, baseline_rules, "full-budget anytime must equal exact");
    // A 1ms budget bounds the answer's latency; record the honest fraction.
    let q_tiny_budget = RuleQuery { budget_ms: 1, ..q_base.clone() };
    let (tiny, anytime_tiny_wall) = time(|| engine.query(&q_tiny_budget).unwrap());
    let tiny_coverage = tiny.coverage.expect("budgeted answers report coverage");
    let rank_ns = histogram("dar_rank_rank_ns");

    // --- snapshot codec: v1 text vs v2 binary over the same forest -------
    // Codec-only comparison: same parsed state, each format's writer and
    // reader timed in isolation (min over reps). The engine paths also
    // feed the `dar_persist_*` histograms recorded below.
    let pool = dar_par::ThreadPool::serial();
    let v2_bytes = engine.snapshot().unwrap();
    let snap = parse_snapshot_bytes(&v2_bytes, &pool).unwrap();
    let v1_text = write_snapshot(
        snap.epoch,
        snap.tuples,
        &snap.partitioning,
        &snap.thresholds,
        &snap.clusters,
    )
    .unwrap();
    let restored = DarEngine::restore(&v2_bytes, bench_config(1)).unwrap();
    assert_eq!(restored.tuples(), TUPLES as u64);

    let mut enc_v2_ns = u128::MAX;
    let mut enc_v1_ns = u128::MAX;
    let mut dec_v2_ns = u128::MAX;
    let mut dec_v1_ns = u128::MAX;
    for _ in 0..CODEC_REPS {
        let (bytes, w) = time(|| {
            write_snapshot_bytes(
                snap.epoch,
                snap.tuples,
                &snap.partitioning,
                &snap.thresholds,
                &snap.clusters,
                &pool,
            )
            .unwrap()
        });
        assert_eq!(bytes, v2_bytes, "v2 encode must be deterministic");
        enc_v2_ns = enc_v2_ns.min(w.as_nanos());
        let (text, w) = time(|| {
            write_snapshot(
                snap.epoch,
                snap.tuples,
                &snap.partitioning,
                &snap.thresholds,
                &snap.clusters,
            )
            .unwrap()
        });
        assert_eq!(text, v1_text);
        enc_v1_ns = enc_v1_ns.min(w.as_nanos());
        let (s, w) = time(|| parse_snapshot_bytes(&v2_bytes, &pool).unwrap());
        assert_eq!(s.clusters.len(), snap.clusters.len());
        dec_v2_ns = dec_v2_ns.min(w.as_nanos());
        let (s, w) = time(|| parse_snapshot_bytes(v1_text.as_bytes(), &pool).unwrap());
        assert_eq!(s.clusters.len(), snap.clusters.len());
        dec_v1_ns = dec_v1_ns.min(w.as_nanos());
    }
    let encode_speedup = enc_v1_ns as f64 / enc_v2_ns.max(1) as f64;
    let decode_speedup = dec_v1_ns as f64 / dec_v2_ns.max(1) as f64;
    let codec_speedup = (enc_v1_ns + dec_v1_ns) as f64 / (enc_v2_ns + dec_v2_ns).max(1) as f64;
    assert!(
        codec_speedup >= 3.0,
        "persist v2 must beat v1 text by >= 3x encode+decode, got {codec_speedup:.2}x"
    );
    let persist_encode = histogram("dar_persist_encode_ns");
    let persist_decode = histogram("dar_persist_decode_ns");
    let persist_bytes = gauge_level("dar_persist_snapshot_bytes");

    print_table(
        "Engine: ingest throughput and query latency",
        &["quantity", "value"],
        &[
            vec!["tuples ingested".into(), format!("{TUPLES}")],
            vec!["batches".into(), format!("{BATCHES}")],
            vec!["ingest wall (s)".into(), secs(ingest_wall)],
            vec!["ingest tuples/s".into(), format!("{tuples_per_sec:.0}")],
            vec!["cold query (s)".into(), secs(cold_wall)],
            vec!["cached query (s)".into(), secs(cached_each)],
            vec!["cold/cached speedup".into(), format!("{speedup:.1}×")],
            vec!["2nd density cold (s)".into(), secs(second_cold)],
            vec!["rules (cold query)".into(), rules_cold.to_string()],
            vec!["cache hits".into(), stats.cache_hits.to_string()],
            vec!["cache misses".into(), stats.cache_misses.to_string()],
            vec!["forest rebuilds".into(), stats.forest_rebuilds.to_string()],
            vec![
                "phase1 insert p99 (ms/batch)".into(),
                format!("{:.3}", phase1.quantile(0.99) as f64 / 1e6),
            ],
            vec![
                "phase2 build p99 (ms)".into(),
                format!("{:.3}", phase2.quantile(0.99) as f64 / 1e6),
            ],
            vec!["cliques found".into(), cliques.to_string()],
            vec!["cores available".into(), cores.to_string()],
            vec!["parallel speedup (ingest)".into(), format!("{parallel_speedup:.2}×")],
            vec!["ranked query, lift+prune (s)".into(), secs(ranked_wall)],
            vec![
                "ranked rules kept/in".into(),
                format!("{}/{}", ranked.rules.len(), ranked.rules_in),
            ],
            vec!["prune ratio".into(), format!("{prune_ratio:.3}")],
            vec![
                "rank pass p99 (ms)".into(),
                format!("{:.3}", rank_ns.quantile(0.99) as f64 / 1e6),
            ],
            vec!["anytime full-budget (s)".into(), secs(anytime_full_wall)],
            vec!["anytime 1ms-budget (s)".into(), secs(anytime_tiny_wall)],
            vec!["anytime 1ms coverage".into(), format!("{tiny_coverage:.3}")],
            vec!["snapshot bytes v1 text".into(), v1_text.len().to_string()],
            vec!["snapshot bytes v2 binary".into(), v2_bytes.len().to_string()],
            vec![
                "snapshot encode v1/v2 (µs)".into(),
                format!("{:.1} / {:.1}", enc_v1_ns as f64 / 1e3, enc_v2_ns as f64 / 1e3),
            ],
            vec![
                "snapshot decode v1/v2 (µs)".into(),
                format!("{:.1} / {:.1}", dec_v1_ns as f64 / 1e3, dec_v2_ns as f64 / 1e3),
            ],
            vec![
                "snapshot codec speedup".into(),
                format!("{codec_speedup:.1}× (enc {encode_speedup:.1}×, dec {decode_speedup:.1}×)"),
            ],
        ],
    );

    println!("\n  worker sweep (fresh engine per count, rules identical):");
    for p in &sweep {
        println!(
            "    threads={:<2} ingest {:.3}s ({:.0} tuples/s), cold query {:.3}s",
            p.threads,
            p.ingest_secs,
            TUPLES as f64 / p.ingest_secs,
            p.cold_secs,
        );
    }

    // --- BENCH_engine.json ----------------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"tuples\": {TUPLES},");
    let _ = writeln!(json, "  \"batches\": {BATCHES},");
    let _ = writeln!(json, "  \"ingest_seconds\": {:.6},", ingest_wall.as_secs_f64());
    let _ = writeln!(json, "  \"ingest_tuples_per_sec\": {tuples_per_sec:.1},");
    let _ = writeln!(json, "  \"cold_query_ms\": {:.3},", cold_wall.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"cached_query_ms\": {:.3},", cached_each.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"cold_over_cached_speedup\": {speedup:.1},");
    let _ = writeln!(json, "  \"rules_cold\": {rules_cold},");
    let _ = writeln!(json, "  \"cache_hits\": {},", stats.cache_hits);
    let _ = writeln!(json, "  \"cache_misses\": {},", stats.cache_misses);
    let _ = writeln!(json, "  \"forest_rebuilds\": {},", stats.forest_rebuilds);
    let _ = writeln!(json, "  \"phase1_insert_ns_p50\": {},", phase1.quantile(0.50));
    let _ = writeln!(json, "  \"phase1_insert_ns_p99\": {},", phase1.quantile(0.99));
    let _ = writeln!(json, "  \"phase1_insert_batches\": {},", phase1.count);
    let _ = writeln!(json, "  \"phase2_build_ns_p50\": {},", phase2.quantile(0.50));
    let _ = writeln!(json, "  \"phase2_build_ns_p99\": {},", phase2.quantile(0.99));
    let _ = writeln!(json, "  \"phase2_builds\": {},", phase2.count);
    let _ = writeln!(json, "  \"cliques\": {cliques},");
    let _ = writeln!(json, "  \"cores_available\": {cores},");
    json.push_str("  \"thread_sweep\": [\n");
    for (i, p) in sweep.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"ingest_seconds\": {:.6}, \
             \"ingest_tuples_per_sec\": {:.1}, \"cold_query_ms\": {:.3}}}{}",
            p.threads,
            p.ingest_secs,
            TUPLES as f64 / p.ingest_secs,
            p.cold_secs * 1e3,
            if i + 1 < sweep.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"parallel_speedup\": {parallel_speedup:.3},");
    let _ = writeln!(json, "  \"ranked_query_ms\": {:.3},", ranked_wall.as_secs_f64() * 1e3);
    let _ = writeln!(json, "  \"ranked_rules_in\": {},", ranked.rules_in);
    let _ = writeln!(json, "  \"ranked_rules_out\": {},", ranked.rules.len());
    let _ = writeln!(json, "  \"ranked_rules_pruned\": {},", ranked.pruned);
    let _ = writeln!(json, "  \"prune_ratio\": {prune_ratio:.4},");
    let _ = writeln!(json, "  \"rank_ns_p50\": {},", rank_ns.quantile(0.50));
    let _ = writeln!(json, "  \"rank_ns_p99\": {},", rank_ns.quantile(0.99));
    let _ = writeln!(
        json,
        "  \"anytime_full_budget_ms\": {:.3},",
        anytime_full_wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        json,
        "  \"anytime_tiny_budget_ms\": {:.3},",
        anytime_tiny_wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(json, "  \"anytime_tiny_coverage\": {tiny_coverage:.4},");
    let _ = writeln!(json, "  \"snapshot_bytes_v1\": {},", v1_text.len());
    let _ = writeln!(json, "  \"snapshot_bytes_v2\": {},", v2_bytes.len());
    let _ = writeln!(json, "  \"snapshot_encode_v1_ns\": {enc_v1_ns},");
    let _ = writeln!(json, "  \"snapshot_encode_v2_ns\": {enc_v2_ns},");
    let _ = writeln!(json, "  \"snapshot_decode_v1_ns\": {dec_v1_ns},");
    let _ = writeln!(json, "  \"snapshot_decode_v2_ns\": {dec_v2_ns},");
    let _ = writeln!(json, "  \"snapshot_encode_speedup\": {encode_speedup:.2},");
    let _ = writeln!(json, "  \"snapshot_decode_speedup\": {decode_speedup:.2},");
    let _ = writeln!(json, "  \"snapshot_codec_speedup\": {codec_speedup:.2},");
    let _ = writeln!(json, "  \"persist_encode_ns_p50\": {},", persist_encode.quantile(0.50));
    let _ = writeln!(json, "  \"persist_encode_ns_p99\": {},", persist_encode.quantile(0.99));
    let _ = writeln!(json, "  \"persist_decode_ns_p50\": {},", persist_decode.quantile(0.50));
    let _ = writeln!(json, "  \"persist_decode_ns_p99\": {},", persist_decode.quantile(0.99));
    let _ = writeln!(json, "  \"persist_snapshot_bytes\": {persist_bytes}");
    json.push_str("}\n");
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\n  wrote BENCH_engine.json");
}
