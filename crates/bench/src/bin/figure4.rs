//! FIG4 — Figure 4 of the paper: classical confidence ranks
//! `C_X ⇒ C_Y` (10/12) above `C_Y ⇒ C_X` (10/13), but the members of
//! `C_Y − C_X` sit close to the intersection while `C_X − C_Y` is far out,
//! so the distance-based degree must invert the ranking.
//!
//! Regenerate with: `cargo run -p dar-bench --bin figure4`

use dar_bench::print_table;
use dar_core::Metric;
use datagen::overlap2d::{cx_rows, cy_rows, figure4_relation};
use mining::interest::degree_exact;

fn main() {
    let r = figure4_relation();
    let cx = cx_rows();
    let cy = cy_rows();
    let both = cx.iter().filter(|i| cy.contains(i)).count() as f64;

    let conf_xy = both / cx.len() as f64;
    let conf_yx = both / cy.len() as f64;
    // degree(C_X ⇒ C_Y) = D(C_Y[Y], C_X[Y]); degree(C_Y ⇒ C_X) = D(C_X[X], C_Y[X]).
    let deg_xy = degree_exact(&r, &cx, &cy, &[1], Metric::Euclidean).unwrap();
    let deg_yx = degree_exact(&r, &cy, &cx, &[0], Metric::Euclidean).unwrap();

    print_table(
        "Figure 4: classical confidence vs. distance-based degree",
        &["rule", "confidence", "degree (exact D2)"],
        &[
            vec!["C_X ⇒ C_Y".into(), format!("10/12 = {conf_xy:.3}"), format!("{deg_xy:.3}")],
            vec!["C_Y ⇒ C_X".into(), format!("10/13 = {conf_yx:.3}"), format!("{deg_yx:.3}")],
        ],
    );
    println!("\n  paper: confidence prefers C_X ⇒ C_Y, distance prefers C_Y ⇒ C_X");
    println!(
        "  measured: conf ranks X⇒Y first ({conf_xy:.3} > {conf_yx:.3}); \
         degree ranks Y⇒X first ({deg_yx:.3} < {deg_xy:.3})"
    );
    assert!(conf_xy > conf_yx, "classical ranking must match the figure");
    assert!(deg_yx < deg_xy, "distance-based ranking must invert");
}
