//! T-CLIQUE — Section 7.2: Phase II behaviour. The paper reports ~90
//! non-trivial cliques, clique-identification time roughly constant across
//! data sizes (it operates on summaries, not data), and a graph whose edge
//! count is "only a small constant times the number of nodes".
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin phase2`

use dar_bench::{print_table, secs, wbcd_config};
use dar_core::{Metric, Partitioning};
use datagen::wbcd::wbcd_relation;
use mining::DarMiner;

fn main() {
    let sizes: Vec<usize> = {
        let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() {
            vec![100_000, 200_000, 300_000, 400_000, 500_000]
        } else {
            args
        }
    };
    let miner = DarMiner::new(wbcd_config(5 << 20));
    let mut rows = Vec::new();
    let mut phase2_times = Vec::new();
    for &n in &sizes {
        let relation = wbcd_relation(n, 0.1, 20260707);
        let partitioning = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
        let result = miner.mine(&relation, &partitioning).expect("valid partitioning");
        let s = &result.stats;
        phase2_times.push(s.phase2.as_secs_f64());
        let edge_per_node = if s.clusters_frequent > 0 {
            s.graph_edges as f64 / s.clusters_frequent as f64
        } else {
            0.0
        };
        rows.push(vec![
            n.to_string(),
            s.clusters_frequent.to_string(),
            s.graph_edges.to_string(),
            format!("{edge_per_node:.2}"),
            s.cliques.to_string(),
            s.nontrivial_cliques.to_string(),
            s.rules.to_string(),
            secs(s.phase2),
        ]);
    }
    print_table(
        "Section 7.2: Phase II (graph, cliques, rules) across data sizes",
        &[
            "tuples",
            "nodes",
            "edges",
            "edges/node",
            "cliques",
            "non-trivial",
            "rules",
            "phase2 (s)",
        ],
        &rows,
    );
    let max_t = phase2_times.iter().cloned().fold(0.0f64, f64::max);
    let min_t = phase2_times.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\n  phase II time range: {min_t:.3}–{max_t:.3}s (paper: ~constant, ≈7 s on 1997 hardware)"
    );
    println!("  edges stay a small multiple of nodes (paper: 'a small constant times')");
}
