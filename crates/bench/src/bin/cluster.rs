//! CLUSTER — scaling and equality check for the `dar-cluster`
//! coordinator: the same dyadic workload routed across 1, 2, and 4
//! in-process shards, measuring routed-ingest throughput, the
//! pull+merge round (Theorem 6.1's entry-wise ACF sum, re-inserted
//! into a fresh forest), and whether the merged rules stay
//! **byte-identical** to a single engine fed the same batches.
//!
//! Emits `BENCH_cluster.json` in the current directory.
//!
//! Regenerate with: `cargo run --release -p dar-bench --bin cluster`

use dar_bench::{print_table, secs, time};
use dar_cluster::{ClusterConfig, Coordinator};
use dar_core::{Metric, Partitioning, Schema};
use dar_engine::{DarEngine, EngineConfig};
use dar_serve::{json::Json, protocol, Backoff, ServeConfig, Server, ServerHandle};
use mining::RuleQuery;
use std::time::Duration;

/// Sums every series of a counter family in the process-global registry.
fn counter_total(name: &str) -> u64 {
    dar_obs::global()
        .snapshot()
        .into_iter()
        .filter(|m| m.name == name)
        .map(|m| match m.value {
            dar_obs::MetricValue::Counter(v) => v,
            _ => 0,
        })
        .sum()
}

/// Workload knobs, overridable from the command line.
struct Opts {
    batches: usize,
    batch_size: usize,
    out: String,
}

impl Default for Opts {
    fn default() -> Self {
        Opts { batches: 16, batch_size: 500, out: "BENCH_cluster.json".into() }
    }
}

fn parse_opts() -> Opts {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts::default();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| {
            argv.get(i + 1).unwrap_or_else(|| panic!("flag {} needs a value", argv[i])).clone()
        };
        match argv[i].as_str() {
            "--batches" => {
                opts.batches = value(i).parse().expect("--batches");
                i += 2;
            }
            "--batch-size" => {
                opts.batch_size = value(i).parse().expect("--batch-size");
                i += 2;
            }
            "--out" => {
                opts.out = value(i);
                i += 2;
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    opts
}

/// Two well-separated blocks with dyadic-fraction jitter (0.25 steps):
/// every per-set floating-point sum is exact in any grouping, so the
/// merged forest reproduces the single-engine summaries to the bit and
/// the equality column below is meaningful (see DESIGN.md §12).
fn rows(n: usize, offset: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let k = i + offset;
            let jitter = (k % 4) as f64 * 0.25;
            if k.is_multiple_of(2) {
                vec![jitter, 100.0 + jitter]
            } else {
                vec![50.0 + jitter, 200.0 + jitter]
            }
        })
        .collect()
}

fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::default();
    config.birch.initial_threshold = 5.0;
    config.birch.memory_budget = usize::MAX;
    config.min_support_frac = 0.2;
    config
}

fn fresh_engine() -> DarEngine {
    let schema = Schema::interval_attrs(2);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    DarEngine::new(partitioning, engine_config()).unwrap()
}

fn timeout() -> Duration {
    Duration::from_secs(30)
}

fn start_shards(count: usize) -> (Vec<ServerHandle>, Vec<String>) {
    let config = ServeConfig {
        threads: 2,
        read_timeout: timeout(),
        write_timeout: timeout(),
        ..ServeConfig::default()
    };
    let handles: Vec<ServerHandle> = (0..count)
        .map(|_| Server::start(fresh_engine(), "127.0.0.1:0", config.clone()).unwrap())
        .collect();
    let addrs = handles.iter().map(|h| h.addr().to_string()).collect();
    (handles, addrs)
}

/// Degraded-mode numbers: four shards behind an `--allow-partial`
/// coordinator, one killed mid-run. `masked_query_ms` is the query right
/// after the kill: the dead shard's acked data is still served from the
/// coordinator's snapshot cache (its watermark never moved), so coverage
/// stays full until the failure detector notices. `first_degraded_query_ms`
/// is the first query after an ingest fail-over demotes the shard to Down;
/// `steady_degraded_query_ms` rides the fast-fail path where no socket is
/// touched for the dead shard.
struct Degraded {
    healthy_query_ms: f64,
    masked_query_ms: f64,
    first_degraded_query_ms: f64,
    steady_degraded_query_ms: f64,
    coverage: f64,
    live_shards: usize,
    total_shards: usize,
}

fn measure_degraded(batches: &[Vec<Vec<f64>>], batch_size: usize) -> Degraded {
    let (mut handles, addrs) = start_shards(4);
    let config = ClusterConfig {
        shards: addrs,
        timeout: timeout(),
        engine: engine_config(),
        threads: 2,
        read_timeout: timeout(),
        write_timeout: timeout(),
        allow_partial: true,
        down_after: 1,
        deadline: Duration::from_secs(2),
        backoff: Backoff {
            attempts: 1,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(20),
            seed: 0,
        },
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(100),
        ..ClusterConfig::default()
    };
    let mut coordinator = Coordinator::connect(config).unwrap();
    for batch in batches {
        coordinator.ingest(batch).unwrap();
    }

    let ((_, healthy), healthy_wall) = time(|| coordinator.query(&RuleQuery::default()).unwrap());
    assert!(!healthy.degraded, "all four shards are up: the first query must be full-coverage");

    // Kill one shard for good; the coordinator has not seen it fail yet.
    let victim = handles.remove(1);
    victim.shutdown();
    victim.join().unwrap();

    // A fresh batch (home: a live shard) dirties the merged view. The next
    // query re-pulls the moved shard but serves the dead shard's acked
    // data from the snapshot cache — its watermark never moved and the
    // board still lists it Up, so coverage stays full. Every row in that
    // answer was acknowledged and checksum-verified at pull time; the
    // mask lasts only until the prober or an ingest touches the corpse.
    coordinator.ingest(&rows(batch_size, batches.len() * batch_size)).unwrap();
    let ((_, masked), masked_wall) = time(|| coordinator.query(&RuleQuery::default()).unwrap());
    assert!(
        !masked.degraded,
        "cached acked data keeps coverage full until the death is discovered"
    );

    // Another batch, whose deterministic home IS the dead shard: the
    // fail-over demotes it to Down, which also bars its cache slot. The
    // next query degrades honestly.
    coordinator.ingest(&rows(batch_size, (batches.len() + 1) * batch_size)).unwrap();
    let ((_, first), first_wall) = time(|| coordinator.query(&RuleQuery::default()).unwrap());
    assert!(first.degraded, "a discovered-dead shard must degrade the answer");

    // One more query: the dead shard fast-fails without a socket touch.
    coordinator.ingest(&rows(batch_size, (batches.len() + 2) * batch_size)).unwrap();
    let ((_, steady), steady_wall) = time(|| coordinator.query(&RuleQuery::default()).unwrap());
    assert!(steady.degraded);

    drop(coordinator);
    for handle in handles {
        handle.shutdown();
        handle.join().unwrap();
    }

    Degraded {
        healthy_query_ms: healthy_wall.as_secs_f64() * 1e3,
        masked_query_ms: masked_wall.as_secs_f64() * 1e3,
        first_degraded_query_ms: first_wall.as_secs_f64() * 1e3,
        steady_degraded_query_ms: steady_wall.as_secs_f64() * 1e3,
        coverage: steady.fraction(),
        live_shards: steady.live_shards,
        total_shards: steady.total_shards,
    }
}

/// One measured run at a fixed shard count.
struct Point {
    shards: usize,
    ingest_secs: f64,
    tuples_per_sec: f64,
    merge_ns: u64,
    query_ms: f64,
    rules: usize,
    matches: bool,
}

fn main() {
    let opts = parse_opts();
    let total_tuples = opts.batches * opts.batch_size;
    let batches: Vec<Vec<Vec<f64>>> =
        (0..opts.batches).map(|b| rows(opts.batch_size, b * opts.batch_size)).collect();

    // --- single-engine control: the byte-equality baseline ---------------
    let mut control = fresh_engine();
    let (_, control_ingest) = time(|| {
        for batch in &batches {
            control.ingest(batch).unwrap();
        }
    });
    let (control_outcome, control_query) = time(|| control.query(&RuleQuery::default()).unwrap());
    let expected_line = protocol::query_response(&control_outcome).encode();
    assert!(
        !control_outcome.rules.is_empty(),
        "the planted blocks must yield rules or the equality check is vacuous"
    );

    // --- coordinator at 1, 2, 4 shards -----------------------------------
    let mut points: Vec<Point> = Vec::new();
    for shard_count in [1usize, 2, 4] {
        let (handles, addrs) = start_shards(shard_count);
        let config = ClusterConfig {
            shards: addrs,
            timeout: timeout(),
            engine: engine_config(),
            threads: 2,
            read_timeout: timeout(),
            write_timeout: timeout(),
            ..ClusterConfig::default()
        };
        let mut coordinator = Coordinator::connect(config).unwrap();

        let (_, ingest_wall) = time(|| {
            for batch in &batches {
                coordinator.ingest(batch).unwrap();
            }
        });
        // The pull+merge round, isolated: collect every shard's sealed
        // snapshot and rebuild one forest from the summed features. The
        // query after it runs Phase II on the already-merged engine.
        let (_, merge_wall) = time(|| coordinator.ensure_merged().unwrap());
        let ((outcome, _), query_wall) = time(|| coordinator.query(&RuleQuery::default()).unwrap());
        let got_line = protocol::query_response(&outcome).encode();

        points.push(Point {
            shards: shard_count,
            ingest_secs: ingest_wall.as_secs_f64(),
            tuples_per_sec: total_tuples as f64 / ingest_wall.as_secs_f64(),
            merge_ns: merge_wall.as_nanos() as u64,
            query_ms: query_wall.as_secs_f64() * 1e3,
            rules: outcome.rules.len(),
            matches: got_line == expected_line,
        });

        // Close the shard connections before joining so the shard worker
        // threads exit without waiting out their read timeouts.
        drop(coordinator);
        for handle in handles {
            handle.shutdown();
            handle.join().unwrap();
        }
    }

    // --- steady state: epoch-aware snapshot reuse --------------------------
    // A fresh 4-shard cluster. The first query after ingest pulls every
    // shard; queries with no intervening ingest touch no shard at all; and
    // each ingest+query round re-pulls only the one shard whose acked
    // watermark moved — the other three serve from the coordinator's
    // snapshot cache.
    const REPEAT_REPS: u32 = 50;
    const INCR_ROUNDS: usize = 8;
    let (handles, addrs) = start_shards(4);
    let config = ClusterConfig {
        shards: addrs,
        timeout: timeout(),
        engine: engine_config(),
        threads: 2,
        read_timeout: timeout(),
        write_timeout: timeout(),
        ..ClusterConfig::default()
    };
    let mut coordinator = Coordinator::connect(config).unwrap();
    for batch in &batches {
        coordinator.ingest(batch).unwrap();
    }
    let pulls_base = counter_total("dar_cluster_snapshot_pulls_total");
    let reuses_base = counter_total("dar_cluster_snapshot_reuses_total");
    let ((outcome, _), first_wall) = time(|| coordinator.query(&RuleQuery::default()).unwrap());
    assert_eq!(
        protocol::query_response(&outcome).encode(),
        expected_line,
        "the steady-state cluster must answer byte-identically to the control"
    );
    let pulls_first = counter_total("dar_cluster_snapshot_pulls_total") - pulls_base;
    assert_eq!(pulls_first, 4, "the first merge pulls every shard");

    let (_, repeat_wall) = time(|| {
        for _ in 0..REPEAT_REPS {
            coordinator.query(&RuleQuery::default()).unwrap();
        }
    });
    let pulls_repeat = counter_total("dar_cluster_snapshot_pulls_total") - pulls_base - pulls_first;
    assert_eq!(pulls_repeat, 0, "steady-state queries must skip every shard pull");
    let repeat_each_ms = repeat_wall.as_secs_f64() * 1e3 / f64::from(REPEAT_REPS);

    let (_, incr_wall) = time(|| {
        for round in 0..INCR_ROUNDS {
            coordinator
                .ingest(&rows(opts.batch_size, (opts.batches + round) * opts.batch_size))
                .unwrap();
            coordinator.query(&RuleQuery::default()).unwrap();
        }
    });
    let pulls_incr =
        counter_total("dar_cluster_snapshot_pulls_total") - pulls_base - pulls_first - pulls_repeat;
    let reuses_incr = counter_total("dar_cluster_snapshot_reuses_total") - reuses_base;
    assert_eq!(pulls_incr, INCR_ROUNDS as u64, "each round re-pulls only the moved shard");
    assert_eq!(reuses_incr, INCR_ROUNDS as u64 * 3, "the unmoved shards serve from cache");
    let incr_each_ms = incr_wall.as_secs_f64() * 1e3 / INCR_ROUNDS as f64;

    drop(coordinator);
    for handle in handles {
        handle.shutdown();
        handle.join().unwrap();
    }

    // --- degraded mode: 4 shards, 1 killed, partial answers ---------------
    let degraded = measure_degraded(&batches, opts.batch_size);

    let all_match = points.iter().all(|p| p.matches);
    print_table(
        "Cluster: routed ingest, merge wall, and rule equality vs one engine",
        &["shards", "ingest (s)", "tuples/s", "merge (ms)", "query (ms)", "rules", "byte-equal"],
        &points
            .iter()
            .map(|p| {
                vec![
                    p.shards.to_string(),
                    format!("{:.3}", p.ingest_secs),
                    format!("{:.0}", p.tuples_per_sec),
                    format!("{:.3}", p.merge_ns as f64 / 1e6),
                    format!("{:.3}", p.query_ms),
                    p.rules.to_string(),
                    p.matches.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\n  control: {} tuples ingested in {}, cold query {:.3}ms, {} rules",
        total_tuples,
        secs(control_ingest),
        control_query.as_secs_f64() * 1e3,
        control_outcome.rules.len()
    );
    println!(
        "  steady state (4 shards): first query {:.3}ms ({pulls_first} pulls), \
         repeat query {repeat_each_ms:.3}ms (0 pulls), \
         ingest+query round {incr_each_ms:.3}ms ({} pull/round, {} reuses/round)",
        first_wall.as_secs_f64() * 1e3,
        pulls_incr / INCR_ROUNDS as u64,
        reuses_incr / INCR_ROUNDS as u64,
    );
    println!(
        "  degraded ({}/{} shards live): healthy query {:.3}ms, cache-masked {:.3}ms, \
         first degraded {:.3}ms, steady degraded {:.3}ms, coverage {:.3}",
        degraded.live_shards,
        degraded.total_shards,
        degraded.healthy_query_ms,
        degraded.masked_query_ms,
        degraded.first_degraded_query_ms,
        degraded.steady_degraded_query_ms,
        degraded.coverage
    );
    assert!(all_match, "distributed rules diverged from the single engine");

    let report = Json::obj(vec![
        ("batches", Json::Num(opts.batches as f64)),
        ("batch_size", Json::Num(opts.batch_size as f64)),
        ("total_tuples", Json::Num(total_tuples as f64)),
        ("control_ingest_seconds", Json::Num(control_ingest.as_secs_f64())),
        ("control_query_ms", Json::Num(control_query.as_secs_f64() * 1e3)),
        ("control_rules", Json::Num(control_outcome.rules.len() as f64)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("shards", Json::Num(p.shards as f64)),
                            ("ingest_seconds", Json::Num(p.ingest_secs)),
                            ("routed_tuples_per_sec", Json::Num(p.tuples_per_sec)),
                            ("merge_wall_ns", Json::Num(p.merge_ns as f64)),
                            ("query_ms", Json::Num(p.query_ms)),
                            ("rules", Json::Num(p.rules as f64)),
                            ("matches_single_engine", Json::Bool(p.matches)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "steady_state",
            Json::obj(vec![
                ("first_query_ms", Json::Num(first_wall.as_secs_f64() * 1e3)),
                ("first_query_pulls", Json::Num(pulls_first as f64)),
                ("repeat_query_ms", Json::Num(repeat_each_ms)),
                ("repeat_query_pulls", Json::Num(pulls_repeat as f64)),
                ("incremental_round_ms", Json::Num(incr_each_ms)),
                ("incremental_rounds", Json::Num(INCR_ROUNDS as f64)),
                ("snapshot_pulls", Json::Num(pulls_incr as f64)),
                ("snapshot_reuses", Json::Num(reuses_incr as f64)),
            ]),
        ),
        (
            "degraded",
            Json::obj(vec![
                ("live_shards", Json::Num(degraded.live_shards as f64)),
                ("total_shards", Json::Num(degraded.total_shards as f64)),
                ("healthy_query_ms", Json::Num(degraded.healthy_query_ms)),
                ("masked_query_ms", Json::Num(degraded.masked_query_ms)),
                ("first_degraded_query_ms", Json::Num(degraded.first_degraded_query_ms)),
                ("steady_degraded_query_ms", Json::Num(degraded.steady_degraded_query_ms)),
                ("coverage", Json::Num(degraded.coverage)),
            ]),
        ),
        ("all_match", Json::Bool(all_match)),
    ]);
    std::fs::write(&opts.out, format!("{}\n", report.encode())).expect("write report");
    println!("\n  wrote {}", opts.out);
}
