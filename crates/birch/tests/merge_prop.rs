//! Property test for the ACF-additivity merge path (Theorem 6.1 / Eq. 7):
//! merging two forests built over disjoint row-shards must preserve every
//! aggregate moment a single forest over the concatenation holds — per
//! home set, the total `N` exactly, and every image projection's ΣY and
//! ΣY² within floating-point summation tolerance. Cluster *boundaries* may
//! legitimately differ (insertion is order-sensitive); the moments, which
//! are what Phase II distances are computed from, may not.

use birch::{AcfForest, BirchConfig};
use dar_core::{Acf, Metric, Partitioning, Schema};
use proptest::prelude::*;

const NUM_ATTRS: usize = 2;

fn forest() -> AcfForest {
    let schema = Schema::interval_attrs(NUM_ATTRS);
    let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
    let config =
        BirchConfig { initial_threshold: 5.0, memory_budget: usize::MAX, ..BirchConfig::default() };
    AcfForest::new(partitioning, &config)
}

/// Per home set: (total N, per image set (ΣY per dim, ΣY² per dim)).
type Aggregate = Vec<(u64, Vec<(Vec<f64>, Vec<f64>)>)>;

fn aggregate(per_set: &[Vec<Acf>]) -> Aggregate {
    per_set
        .iter()
        .map(|clusters| {
            let n: u64 = clusters.iter().map(Acf::n).sum();
            let images = (0..NUM_ATTRS)
                .map(|s| {
                    let mut ls = vec![0.0; 1];
                    let mut ss = vec![0.0; 1];
                    for acf in clusters {
                        let cf = acf.image(s);
                        for (d, v) in cf.linear_sum().iter().enumerate() {
                            ls[d] += v;
                        }
                        for (d, v) in cf.square_sum().iter().enumerate() {
                            ss[d] += v;
                        }
                    }
                    (ls, ss)
                })
                .collect();
            (n, images)
        })
        .collect()
}

/// Equal within accumulated-rounding tolerance: the two sides sum the same
/// per-tuple moments in different orders, so they can differ by a few ULPs
/// per addition but nothing more.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn build(rows: &[Vec<f64>]) -> AcfForest {
    let mut f = forest();
    for row in rows {
        f.insert_values(row);
    }
    f
}

/// `N` must agree exactly and every moment within [`close`] tolerance.
fn check_close(got: &Aggregate, want: &Aggregate, label: &str) -> TestCaseResult {
    prop_assert_eq!(got.len(), want.len(), "{}: home-set count diverged", label);
    for (set, ((n_got, img_got), (n_want, img_want))) in got.iter().zip(want).enumerate() {
        prop_assert_eq!(n_got, n_want, "{}: set {}: N diverged", label, set);
        for (s, ((ls_got, ss_got), (ls_want, ss_want))) in img_got.iter().zip(img_want).enumerate()
        {
            for d in 0..ls_got.len() {
                prop_assert!(
                    close(ls_got[d], ls_want[d]),
                    "{}: set {} image {} dim {}: ΣY {} vs {}",
                    label,
                    set,
                    s,
                    d,
                    ls_got[d],
                    ls_want[d]
                );
                prop_assert!(
                    close(ss_got[d], ss_want[d]),
                    "{}: set {} image {} dim {}: ΣY² {} vs {}",
                    label,
                    set,
                    s,
                    d,
                    ss_got[d],
                    ss_want[d]
                );
            }
        }
    }
    Ok(())
}

/// Three-shard associativity: `(a ⊕ b) ⊕ c` and `a ⊕ (b ⊕ c)` hold the
/// same aggregate moments as each other *and* as a single forest over
/// the concatenation — the property the `dar-cluster` coordinator
/// depends on to merge any number of shard snapshots in shard order
/// without caring how earlier rounds grouped them.
#[test]
fn merge_is_associative_across_three_shards() {
    proptest!(|(rows in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..120),
                cut1 in 0.0f64..1.0, cut2 in 0.0f64..1.0)| {
        let rows: Vec<Vec<f64>> = rows.into_iter().map(|(a, b)| vec![a, b]).collect();
        let (lo, hi) = if cut1 <= cut2 { (cut1, cut2) } else { (cut2, cut1) };
        let i = ((rows.len() as f64) * lo) as usize;
        let j = (((rows.len() as f64) * hi) as usize).max(i);
        let (a_rows, rest) = rows.split_at(i.min(rows.len()));
        let (b_rows, c_rows) = rest.split_at((j - i).min(rest.len()));

        // (a ⊕ b) ⊕ c
        let mut left = build(a_rows);
        left.merge(build(b_rows));
        left.merge(build(c_rows));
        // a ⊕ (b ⊕ c)
        let mut bc = build(b_rows);
        bc.merge(build(c_rows));
        let mut right = build(a_rows);
        right.merge(bc);

        let want = aggregate(&build(&rows).finish());
        let left = aggregate(&left.finish());
        let right = aggregate(&right.finish());
        check_close(&left, &want, "(a⊕b)⊕c vs concat")?;
        check_close(&right, &want, "a⊕(b⊕c) vs concat")?;
        check_close(&left, &right, "(a⊕b)⊕c vs a⊕(b⊕c)")?;
    });
}

/// The empty forest is a merge identity. `a ⊕ ∅` must be *bit-exact*
/// (nothing is inserted, so no summation reorders); `∅ ⊕ a` re-inserts
/// `a`'s clusters into a fresh forest, so `N` is exact and the moments
/// agree within summation tolerance.
#[test]
fn merging_with_the_empty_forest_is_the_identity() {
    proptest!(|(rows in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..120))| {
        let rows: Vec<Vec<f64>> = rows.into_iter().map(|(a, b)| vec![a, b]).collect();

        // Insertion is deterministic, so two builds of the same rows are
        // identical — the untouched twin is the exact baseline.
        let baseline = aggregate(&build(&rows).finish());

        let mut right_identity = build(&rows);
        right_identity.merge(forest());
        prop_assert_eq!(
            aggregate(&right_identity.finish()),
            baseline.clone(),
            "a ⊕ ∅ must leave every moment bit-identical"
        );

        let mut left_identity = forest();
        left_identity.merge(build(&rows));
        check_close(&aggregate(&left_identity.finish()), &baseline, "∅ ⊕ a")?;
    });
}

/// Subtraction inverts merge: for disjoint row-shards `a` and `b`,
/// `merge(a, b).subtract(b)` must hold the same aggregate moments as `a`
/// alone — per home set, the total `N` exactly and every image's ΣY and
/// ΣY² within summation tolerance. This is the retirement path of the
/// sliding-window forest: dropping an expired window by CF subtraction
/// must leave exactly the surviving windows' summary behind.
#[test]
fn subtract_inverts_merge() {
    proptest!(|(rows in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..120),
                split_frac in 0.0f64..1.0)| {
        let rows: Vec<Vec<f64>> = rows.into_iter().map(|(a, b)| vec![a, b]).collect();
        let split = ((rows.len() as f64) * split_frac) as usize;
        let (a_rows, b_rows) = rows.split_at(split.min(rows.len()));

        let mut merged = build(a_rows);
        merged.merge(build(b_rows));
        merged.subtract(build(b_rows));

        let want = aggregate(&build(a_rows).finish());
        let got = aggregate(&merged.finish());
        check_close(&got, &want, "merge(a,b).subtract(b) vs a")?;
    });
}

/// Subtracting everything a forest holds leaves the empty summary: zero
/// tuples and zero moments on every set (exactly — unmerging a cluster
/// from itself cancels bit-for-bit, so no tolerance is needed for `N`,
/// and the moment residue of cross-cluster regroupings stays within
/// summation tolerance of zero).
#[test]
fn subtract_to_empty_is_the_identity_inverse() {
    proptest!(|(rows in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..120))| {
        let rows: Vec<Vec<f64>> = rows.into_iter().map(|(a, b)| vec![a, b]).collect();
        let mut base = forest();
        base.merge(build(&rows));
        base.subtract(build(&rows));
        let per_set = base.finish();
        for (set, clusters) in per_set.iter().enumerate() {
            let n: u64 = clusters.iter().map(Acf::n).sum();
            prop_assert_eq!(n, 0, "set {}: tuples survived a total subtraction", set);
            prop_assert!(clusters.is_empty(), "set {}: empty clusters must be dropped", set);
        }
    });
}

#[test]
fn merge_of_disjoint_shards_equals_the_concatenated_build() {
    proptest!(|(rows in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..120),
                split_frac in 0.0f64..1.0)| {
        let rows: Vec<Vec<f64>> = rows.into_iter().map(|(a, b)| vec![a, b]).collect();
        let split = ((rows.len() as f64) * split_frac) as usize;
        let (left, right) = rows.split_at(split.min(rows.len()));

        let mut whole = forest();
        for row in &rows {
            whole.insert_values(row);
        }

        let mut a = forest();
        for row in left {
            a.insert_values(row);
        }
        let mut b = forest();
        for row in right {
            b.insert_values(row);
        }
        a.merge(b);

        let want = aggregate(&whole.finish());
        let got = aggregate(&a.finish());
        prop_assert_eq!(got.len(), want.len());
        for (set, ((n_got, img_got), (n_want, img_want))) in
            got.iter().zip(&want).enumerate()
        {
            prop_assert_eq!(n_got, n_want, "set {}: N diverged", set);
            for (s, ((ls_got, ss_got), (ls_want, ss_want))) in
                img_got.iter().zip(img_want).enumerate()
            {
                for d in 0..ls_got.len() {
                    prop_assert!(close(ls_got[d], ls_want[d]),
                        "set {} image {} dim {}: ΣY {} vs {}",
                        set, s, d, ls_got[d], ls_want[d]);
                    prop_assert!(close(ss_got[d], ss_want[d]),
                        "set {} image {} dim {}: ΣY² {} vs {}",
                        set, s, d, ss_got[d], ss_want[d]);
                }
            }
        }
    });
}
