//! Global observability handles for Phase I (`dar_birch_*`).
//!
//! All handles are resolved once (first use) and cached in a `OnceLock`,
//! so the insert hot path pays only relaxed atomic increments — the
//! registry map is never touched per point. Registering the whole family
//! eagerly also means every `dar_birch_*` series shows up in exposition
//! (at zero) before the first rebuild happens.

use dar_obs::{global, Counter};
use std::sync::OnceLock;

/// The Phase I metric family.
pub(crate) struct BirchMetrics {
    /// `dar_birch_inserts_total`: points inserted across all trees.
    pub inserts: Counter,
    /// `dar_birch_rebuilds_total`: threshold-raise rebuilds performed.
    pub rebuilds: Counter,
    /// `dar_birch_threshold_raises_total`: rebuilds that strictly raised
    /// the diameter threshold (all of them, in practice — kept separate
    /// so a same-threshold rebuild would be visible).
    pub threshold_raises: Counter,
    /// `dar_birch_outliers_paged_total`: leaf entries paged to the
    /// outlier store during rebuilds.
    pub outliers_paged: Counter,
    /// `dar_birch_outliers_reinserted_total`: paged entries re-inserted
    /// at `finish()`.
    pub outliers_reinserted: Counter,
}

/// The cached handles (shared by every tree in the process).
pub(crate) fn metrics() -> &'static BirchMetrics {
    static METRICS: OnceLock<BirchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        BirchMetrics {
            inserts: r.counter("dar_birch_inserts_total"),
            rebuilds: r.counter("dar_birch_rebuilds_total"),
            threshold_raises: r.counter("dar_birch_threshold_raises_total"),
            outliers_paged: r.counter("dar_birch_outliers_paged_total"),
            outliers_reinserted: r.counter("dar_birch_outliers_reinserted_total"),
        }
    })
}
