//! Tuning knobs of the clustering engine.

/// Configuration for one [`AcfTree`](crate::AcfTree) (shared by every tree of
/// an [`AcfForest`](crate::AcfForest)).
#[derive(Debug, Clone, PartialEq)]
pub struct BirchConfig {
    /// Maximum `(CF, child)` entries in an internal node (the branching
    /// factor `L` of the paper's complexity analysis, Section 7.1).
    pub branching: usize,
    /// Maximum ACF entries in a leaf node.
    pub leaf_capacity: usize,
    /// Initial diameter threshold `T` (the density threshold `d0^X` each
    /// cluster must satisfy, Dfn 4.2). `0.0` starts fully precise: every
    /// distinct value begins its own cluster until memory pressure raises
    /// the threshold — the adaptive behaviour of Section 3.
    pub initial_threshold: f64,
    /// Heap budget in bytes for one tree. When the tree's estimated
    /// footprint exceeds this, the threshold is raised and the tree rebuilt
    /// from its leaf entries. The paper's experiments used 5 MB *total*
    /// across all 30 attribute trees.
    pub memory_budget: usize,
    /// During a rebuild, leaf entries with fewer than this many tuples are
    /// paged out as candidate outliers (the paper: clusters "significantly
    /// smaller than the frequency threshold"). `0` disables outlier paging.
    pub outlier_entry_limit: u64,
    /// Multiplicative floor for threshold growth on rebuild: the new
    /// threshold is at least `old * threshold_growth` even when the
    /// closest-pair heuristic suggests less.
    pub threshold_growth: f64,
}

impl Default for BirchConfig {
    fn default() -> Self {
        BirchConfig {
            branching: 8,
            leaf_capacity: 8,
            initial_threshold: 0.0,
            memory_budget: 1 << 20, // 1 MiB per tree
            outlier_entry_limit: 0,
            threshold_growth: 1.5,
        }
    }
}

impl BirchConfig {
    /// The paper's evaluation setup scaled per tree: a total budget split
    /// evenly over `num_sets` trees (they used 5 MB over 30 attributes).
    pub fn with_total_budget(total_bytes: usize, num_sets: usize) -> Self {
        BirchConfig { memory_budget: total_bytes / num_sets.max(1), ..BirchConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = BirchConfig::default();
        assert!(c.branching >= 2);
        assert!(c.leaf_capacity >= 2);
        assert!(c.threshold_growth > 1.0);
        assert_eq!(c.initial_threshold, 0.0);
    }

    #[test]
    fn total_budget_split() {
        let c = BirchConfig::with_total_budget(5 << 20, 30);
        assert_eq!(c.memory_budget, (5 << 20) / 30);
        // Degenerate zero sets doesn't divide by zero.
        let c = BirchConfig::with_total_budget(100, 0);
        assert_eq!(c.memory_budget, 100);
    }
}
