//! The ACF-tree: a height-balanced tree of clustering summaries.
//!
//! Internal nodes are CF nodes (summaries on the home attribute set only);
//! leaf nodes hold full ACFs — exactly the structure of Section 6.1 of the
//! paper ("An ACF-tree is a CF-tree with the leaf nodes modified to be ACFs.
//! The internal nodes remain CF nodes.").

use crate::config::BirchConfig;
use dar_core::{Acf, AcfLayout, Cf, SetId};

/// Estimated fixed overhead per tree node (allocation header, enum tag,
/// entry-vector header).
const NODE_OVERHEAD_BYTES: usize = 64;

#[derive(Debug, Clone)]
struct InternalEntry {
    /// Summary of the subtree on the home attribute set.
    cf: Cf,
    /// Arena index of the child node.
    child: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Internal { entries: Vec<InternalEntry> },
    Leaf { entries: Vec<Acf> },
}

/// Diagnostic snapshot of one tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// The attribute set this tree clusters.
    pub set: SetId,
    /// Current diameter threshold.
    pub threshold: f64,
    /// Number of threshold-raising rebuilds performed.
    pub rebuilds: usize,
    /// Tree height (a lone leaf has height 1).
    pub height: usize,
    /// Live node count.
    pub nodes: usize,
    /// Current number of leaf ACF entries (clusters).
    pub leaf_entries: usize,
    /// Entries currently paged out to the outlier store.
    pub outliers: usize,
    /// Estimated heap footprint in bytes.
    pub memory_bytes: usize,
}

/// An adaptive CF/ACF-tree clustering the projections of a data stream onto
/// one attribute set.
#[derive(Debug, Clone)]
pub struct AcfTree {
    layout: AcfLayout,
    set: SetId,
    config: BirchConfig,
    threshold: f64,
    threshold_sq: f64,
    nodes: Vec<Node>,
    root: usize,
    leaf_entry_count: usize,
    outliers: Vec<Acf>,
    rebuilds: usize,
    points_inserted: u64,
}

/// Result bubbled up when a child node split: the arena index of the new
/// sibling the parent must now reference.
type SplitUp = Option<usize>;

impl AcfTree {
    /// Creates an empty tree clustering attribute set `set`.
    pub fn new(layout: AcfLayout, set: SetId, config: BirchConfig) -> Self {
        let threshold = config.initial_threshold.max(0.0);
        AcfTree {
            layout,
            set,
            threshold,
            threshold_sq: threshold * threshold,
            nodes: vec![Node::Leaf { entries: Vec::new() }],
            root: 0,
            leaf_entry_count: 0,
            outliers: Vec::new(),
            rebuilds: 0,
            points_inserted: 0,
            config,
        }
    }

    /// The attribute set this tree clusters.
    pub fn set(&self) -> SetId {
        self.set
    }

    /// Current diameter threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of rebuilds performed so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Number of clusters (leaf ACF entries) currently in the tree,
    /// excluding paged-out outliers.
    pub fn num_clusters(&self) -> usize {
        self.leaf_entry_count
    }

    /// Number of points inserted so far.
    pub fn points_inserted(&self) -> u64 {
        self.points_inserted
    }

    /// Inserts one tuple given its projections onto every attribute set of
    /// the layout (indexed by [`SetId`]).
    pub fn insert_point(&mut self, projections: &[Vec<f64>]) {
        debug_assert_eq!(projections.len(), self.layout.num_sets());
        self.points_inserted += 1;
        crate::metrics::metrics().inserts.inc();
        if let Some(sibling) = self.insert_point_rec(self.root, projections) {
            self.grow_root(sibling);
        }
        self.maybe_rebuild();
    }

    /// Inserts a pre-aggregated ACF entry (the rebuild / outlier
    /// re-insertion path; Section 4.3.1).
    pub fn insert_entry(&mut self, acf: Acf) {
        debug_assert_eq!(acf.home(), self.set);
        if acf.is_empty() {
            return;
        }
        let mut slot = Some(acf);
        if let Some(sibling) = self.insert_entry_rec(self.root, &mut slot) {
            self.grow_root(sibling);
        }
    }

    /// Estimated heap footprint of the tree in bytes.
    pub fn memory_estimate(&self) -> usize {
        let live_nodes = self.nodes.len();
        let home_dims = self.layout.dims_of(self.set);
        // Every non-root node is referenced by exactly one internal entry.
        let internal_entries = live_nodes.saturating_sub(1);
        let cf_entry_bytes = 2 * 8 * home_dims + 2 * 24 + std::mem::size_of::<InternalEntry>();
        live_nodes * NODE_OVERHEAD_BYTES
            + self.leaf_entry_count * self.layout.acf_heap_bytes()
            + internal_entries * cf_entry_bytes
    }

    /// Iterates over the current leaf entries (clusters).
    pub fn leaf_entries(&self) -> impl Iterator<Item = &Acf> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Leaf { entries } => Some(entries.iter()),
                Node::Internal { .. } => None,
            })
            .flatten()
    }

    /// Re-inserts paged-out outliers ("to ensure that they are indeed
    /// outliers") and returns the final cluster summaries.
    pub fn finish(mut self) -> Vec<Acf> {
        let outliers = std::mem::take(&mut self.outliers);
        crate::metrics::metrics().outliers_reinserted.add(outliers.len() as u64);
        for acf in outliers {
            self.insert_entry(acf);
        }
        let mut out = Vec::with_capacity(self.leaf_entry_count);
        for node in self.nodes {
            if let Node::Leaf { entries } = node {
                out.extend(entries);
            }
        }
        out
    }

    /// Removes previously-merged sub-clusters from the tree — the inverse
    /// of [`insert_entry`](Self::insert_entry) at the moment level.
    ///
    /// Every live entry (leaves and paged-out outliers alike) is drained,
    /// each subtrahend's moments are cancelled against the drained entries,
    /// and the survivors are re-inserted at the current threshold, mirroring
    /// [`rebuild`](Self::rebuild). Per subtrahend the cancellation is
    /// greedy by home-centroid distance: entries smaller than the remaining
    /// subtrahend are consumed whole (their own exact moments removed from
    /// the residue), and the final residue is unmerged from the closest
    /// entry big enough to hold it. However the residue is attributed, the
    /// *total* moments removed equal the subtrahend's exactly, so per set
    /// the surviving `N` is exact and the surviving ΣY/ΣY² match a tree
    /// that never saw the subtracted rows up to floating-point summation
    /// order; when the subtracted clusters are well separated from the
    /// survivors (the sliding-window case), the closest entry is the true
    /// host and the cancellation is exact per entry too. The pass is fully
    /// deterministic: entries drain in arena order, ties keep the lowest
    /// index, and re-insertion runs in drain order.
    ///
    /// # Contract
    /// `clusters` must summarize a sub-multiset of the tuples this tree has
    /// absorbed — the way `b`'s clusters are inside `merge(a, b)`. Like
    /// [`AcfForest::merge`]'s partitioning check, a violation is a
    /// programming error and panics.
    ///
    /// # Panics
    /// Panics if the subtrahends hold more tuples than the tree does
    /// (i.e. `clusters` cannot have been merged into this tree).
    ///
    /// [`AcfForest::merge`]: crate::AcfForest::merge
    pub fn subtract_entries(&mut self, clusters: &[Acf]) {
        if clusters.iter().all(Acf::is_empty) {
            return;
        }
        let mut carried: Vec<Acf> = Vec::with_capacity(self.leaf_entry_count);
        for node in std::mem::take(&mut self.nodes) {
            if let Node::Leaf { entries } = node {
                carried.extend(entries);
            }
        }
        carried.append(&mut self.outliers);
        for sub in clusters {
            let mut remaining = sub.clone();
            while !remaining.is_empty() {
                let centroid = remaining.home_cf().centroid().expect("non-empty residue");
                let mut best: Option<(usize, f64)> = None;
                for (i, e) in carried.iter().enumerate() {
                    let d = e
                        .home_cf()
                        .centroid_distance_sq_to_point(&centroid)
                        .expect("carried entries are non-empty");
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((i, d));
                    }
                }
                let Some((host, _)) = best else {
                    panic!(
                        "subtract_entries: the set-{} tree ran out of clusters with a \
                         {}-tuple residue left to subtract — the subtracted forest was \
                         never merged into this one",
                        self.set,
                        remaining.n()
                    );
                };
                if carried[host].n() >= remaining.n() {
                    carried[host].unmerge(&remaining).expect("same layout and home set, n checked");
                    if carried[host].is_empty() {
                        // The host cancelled to zero tuples but — unless its
                        // tuples were literally the subtracted ones — it still
                        // carries a moment residue (±δ per image). Dropping it
                        // would leak δ from the aggregate, so fold the residue
                        // into the nearest survivor; with no survivors the
                        // tree is empty and the residue is pure regrouping
                        // noise around zero.
                        let emptied = carried.remove(host);
                        let mut nearest: Option<(usize, f64)> = None;
                        for (i, e) in carried.iter().enumerate() {
                            let d = e
                                .home_cf()
                                .centroid_distance_sq_to_point(&centroid)
                                .expect("carried entries are non-empty");
                            if nearest.is_none_or(|(_, bd)| d < bd) {
                                nearest = Some((i, d));
                            }
                        }
                        if let Some((absorber, _)) = nearest {
                            carried[absorber].merge(&emptied).expect("same layout and home set");
                        }
                    }
                    break;
                }
                // The closest entry is smaller than the residue: consume it
                // whole — removing its exact moments keeps the aggregate
                // subtraction exact — and keep cancelling.
                let consumed = carried.remove(host);
                remaining.unmerge(&consumed).expect("same layout and home set, n checked");
            }
        }
        self.nodes.push(Node::Leaf { entries: Vec::new() });
        self.root = 0;
        self.leaf_entry_count = 0;
        for acf in carried {
            self.insert_entry(acf);
        }
    }

    /// Diagnostic snapshot.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            set: self.set,
            threshold: self.threshold,
            rebuilds: self.rebuilds,
            height: self.height(),
            nodes: self.nodes.len(),
            leaf_entries: self.leaf_entry_count,
            outliers: self.outliers.len(),
            memory_bytes: self.memory_estimate(),
        }
    }

    /// Validates the structural invariants of the tree, returning a
    /// description of the first violation found. Used by tests and
    /// available for debugging; `O(tree)`.
    ///
    /// Checked invariants:
    /// 1. every internal entry's CF equals the summary of its child;
    /// 2. every node except the root is referenced exactly once;
    /// 3. node fan-outs respect the configured capacities (the root may
    ///    temporarily hold as few as one entry after a trivial build);
    /// 4. the leaf-entry counter matches the actual leaf population;
    /// 5. all leaves sit at the same depth (height balance).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut referenced = vec![0usize; self.nodes.len()];
        let mut leaf_entries = 0usize;
        let mut leaf_depths: Vec<usize> = Vec::new();
        let mut stack = vec![(self.root, 0usize)];
        while let Some((node_id, depth)) = stack.pop() {
            match &self.nodes[node_id] {
                Node::Leaf { entries } => {
                    if entries.len() > self.config.leaf_capacity {
                        return Err(format!("leaf {node_id} over capacity: {}", entries.len()));
                    }
                    leaf_entries += entries.len();
                    leaf_depths.push(depth);
                }
                Node::Internal { entries } => {
                    if entries.is_empty() {
                        return Err(format!("internal node {node_id} is empty"));
                    }
                    if entries.len() > self.config.branching {
                        return Err(format!(
                            "internal {node_id} over branching: {}",
                            entries.len()
                        ));
                    }
                    for e in entries {
                        referenced[e.child] += 1;
                        let summary = self.summarize_node(e.child);
                        if summary.n() != e.cf.n() {
                            return Err(format!(
                                "entry CF of node {} child {} stale: n {} vs {}",
                                node_id,
                                e.child,
                                e.cf.n(),
                                summary.n()
                            ));
                        }
                        let drift: f64 = summary
                            .linear_sum()
                            .iter()
                            .zip(e.cf.linear_sum())
                            .map(|(a, b)| (a - b).abs())
                            .sum();
                        let scale: f64 =
                            summary.linear_sum().iter().map(|v| v.abs()).sum::<f64>() + 1.0;
                        if drift > 1e-6 * scale {
                            return Err(format!(
                                "entry CF of node {node_id} child {} drifted by {drift}",
                                e.child
                            ));
                        }
                        stack.push((e.child, depth + 1));
                    }
                }
            }
        }
        for (id, &count) in referenced.iter().enumerate() {
            let expected = usize::from(id != self.root);
            if count != expected {
                return Err(format!("node {id} referenced {count} times"));
            }
        }
        if leaf_entries != self.leaf_entry_count {
            return Err(format!("leaf counter {} vs actual {leaf_entries}", self.leaf_entry_count));
        }
        if let (Some(min), Some(max)) = (leaf_depths.iter().min(), leaf_depths.iter().max()) {
            if min != max {
                return Err(format!("unbalanced leaves: depths {min}..{max}"));
            }
        }
        Ok(())
    }

    /// Tree height: 1 for a lone leaf.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return h,
                Node::Internal { entries } => {
                    h += 1;
                    node = entries[0].child;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    fn insert_point_rec(&mut self, node_id: usize, projections: &[Vec<f64>]) -> SplitUp {
        let point = &projections[self.set];
        match &self.nodes[node_id] {
            Node::Internal { entries } => {
                let ci = Self::closest_internal(entries, point);
                let child = entries[ci].child;
                let split = self.insert_point_rec(child, projections);
                self.after_child_insert(node_id, ci, split, |cf| cf.add_point(point))
            }
            Node::Leaf { entries } => {
                if let Some(ei) = Self::closest_leaf(entries, point) {
                    let entry = match &mut self.nodes[node_id] {
                        Node::Leaf { entries } => &mut entries[ei],
                        Node::Internal { .. } => unreachable!(),
                    };
                    if entry.home_cf().merged_diameter_sq_with_point(point) <= self.threshold_sq {
                        entry.add_row(projections);
                        return None;
                    }
                }
                let acf = Acf::from_row(&self.layout, self.set, projections);
                self.push_leaf_entry(node_id, acf)
            }
        }
    }

    fn insert_entry_rec(&mut self, node_id: usize, slot: &mut Option<Acf>) -> SplitUp {
        let acf_cf = slot.as_ref().expect("entry already placed").home_cf().clone();
        let centroid = acf_cf.centroid().expect("non-empty entry");
        match &self.nodes[node_id] {
            Node::Internal { entries } => {
                let ci = Self::closest_internal(entries, &centroid);
                let child = entries[ci].child;
                let split = self.insert_entry_rec(child, slot);
                self.after_child_insert(node_id, ci, split, |cf| cf.merge(&acf_cf))
            }
            Node::Leaf { entries } => {
                if let Some(ei) = Self::closest_leaf(entries, &centroid) {
                    let threshold_sq = self.threshold_sq;
                    let entry = match &mut self.nodes[node_id] {
                        Node::Leaf { entries } => &mut entries[ei],
                        Node::Internal { .. } => unreachable!(),
                    };
                    let incoming = slot.as_ref().expect("entry already placed");
                    if entry.merged_home_diameter_sq(incoming) <= threshold_sq {
                        let incoming = slot.take().expect("entry already placed");
                        entry.merge(&incoming).expect("same layout and home set");
                        return None;
                    }
                }
                let acf = slot.take().expect("entry already placed");
                self.push_leaf_entry(node_id, acf)
            }
        }
    }

    /// Shared post-recursion bookkeeping for internal nodes: update the
    /// descended entry's CF, absorb a child split, split ourselves if over
    /// capacity.
    fn after_child_insert(
        &mut self,
        node_id: usize,
        child_idx: usize,
        split: SplitUp,
        update: impl FnOnce(&mut Cf),
    ) -> SplitUp {
        match split {
            None => {
                if let Node::Internal { entries } = &mut self.nodes[node_id] {
                    update(&mut entries[child_idx].cf);
                }
                None
            }
            Some(new_child) => {
                // The child redistributed its entries; recompute both sides
                // from scratch rather than patching.
                let old_child = match &self.nodes[node_id] {
                    Node::Internal { entries } => entries[child_idx].child,
                    Node::Leaf { .. } => unreachable!(),
                };
                let cf_old = self.summarize_node(old_child);
                let cf_new = self.summarize_node(new_child);
                let overflow = match &mut self.nodes[node_id] {
                    Node::Internal { entries } => {
                        entries[child_idx].cf = cf_old;
                        entries.push(InternalEntry { cf: cf_new, child: new_child });
                        entries.len() > self.config.branching
                    }
                    Node::Leaf { .. } => unreachable!(),
                };
                if overflow {
                    Some(self.split_internal(node_id))
                } else {
                    None
                }
            }
        }
    }

    fn push_leaf_entry(&mut self, node_id: usize, acf: Acf) -> SplitUp {
        self.leaf_entry_count += 1;
        let overflow = match &mut self.nodes[node_id] {
            Node::Leaf { entries } => {
                entries.push(acf);
                entries.len() > self.config.leaf_capacity
            }
            Node::Internal { .. } => unreachable!("push_leaf_entry on internal node"),
        };
        if overflow {
            Some(self.split_leaf(node_id))
        } else {
            None
        }
    }

    fn grow_root(&mut self, sibling: usize) {
        let cf_old = self.summarize_node(self.root);
        let cf_new = self.summarize_node(sibling);
        let new_root = self.nodes.len();
        self.nodes.push(Node::Internal {
            entries: vec![
                InternalEntry { cf: cf_old, child: self.root },
                InternalEntry { cf: cf_new, child: sibling },
            ],
        });
        self.root = new_root;
    }

    fn closest_internal(entries: &[InternalEntry], point: &[f64]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, e) in entries.iter().enumerate() {
            // Entries on the descent path are never empty.
            let d =
                e.cf.centroid_distance_sq_to_point(point).expect("internal entries are non-empty");
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    fn closest_leaf(entries: &[Acf], point: &[f64]) -> Option<usize> {
        let mut best = None;
        let mut best_d = f64::INFINITY;
        for (i, e) in entries.iter().enumerate() {
            let d = e
                .home_cf()
                .centroid_distance_sq_to_point(point)
                .expect("leaf entries are non-empty");
            if d < best_d {
                best_d = d;
                best = Some(i);
            }
        }
        best
    }

    fn summarize_node(&self, node_id: usize) -> Cf {
        let mut cf = Cf::empty(self.layout.dims_of(self.set));
        match &self.nodes[node_id] {
            Node::Internal { entries } => {
                for e in entries {
                    cf.merge(&e.cf);
                }
            }
            Node::Leaf { entries } => {
                for e in entries {
                    cf.merge(e.home_cf());
                }
            }
        }
        cf
    }

    // ------------------------------------------------------------------
    // Splitting
    // ------------------------------------------------------------------

    /// Splits an over-full leaf; returns the arena index of the new sibling.
    fn split_leaf(&mut self, node_id: usize) -> usize {
        let entries = match &mut self.nodes[node_id] {
            Node::Leaf { entries } => std::mem::take(entries),
            Node::Internal { .. } => unreachable!(),
        };
        let centroids: Vec<Vec<f64>> = entries
            .iter()
            .map(|e| e.home_cf().centroid().expect("leaf entries are non-empty"))
            .collect();
        let (keep, give) = partition_by_farthest_pair(entries, &centroids);
        self.nodes[node_id] = Node::Leaf { entries: keep };
        let new_id = self.nodes.len();
        self.nodes.push(Node::Leaf { entries: give });
        new_id
    }

    /// Splits an over-full internal node; returns the new sibling's index.
    fn split_internal(&mut self, node_id: usize) -> usize {
        let entries = match &mut self.nodes[node_id] {
            Node::Internal { entries } => std::mem::take(entries),
            Node::Leaf { .. } => unreachable!(),
        };
        let centroids: Vec<Vec<f64>> = entries
            .iter()
            .map(|e| e.cf.centroid().expect("internal entries are non-empty"))
            .collect();
        let (keep, give) = partition_by_farthest_pair(entries, &centroids);
        self.nodes[node_id] = Node::Internal { entries: keep };
        let new_id = self.nodes.len();
        self.nodes.push(Node::Internal { entries: give });
        new_id
    }

    // ------------------------------------------------------------------
    // Adaptive rebuild
    // ------------------------------------------------------------------

    fn maybe_rebuild(&mut self) {
        // Each round raises the threshold at least geometrically, so the
        // loop terminates; the round cap is a belt-and-braces guard.
        let mut rounds = 0;
        while self.memory_estimate() > self.config.memory_budget
            && self.leaf_entry_count > 1
            && rounds < 64
        {
            let t = self.next_threshold();
            self.rebuild(t);
            rounds += 1;
        }
    }

    /// Threshold heuristic: the median over leaves of the smallest merged
    /// diameter of any entry pair within the leaf — i.e. a threshold at
    /// which about half the leaves will merge their closest pair — floored
    /// by geometric growth of the current threshold.
    fn next_threshold(&self) -> f64 {
        let mut mins: Vec<f64> = Vec::new();
        for node in &self.nodes {
            if let Node::Leaf { entries } = node {
                if entries.len() < 2 {
                    continue;
                }
                let mut best = f64::INFINITY;
                for i in 0..entries.len() {
                    for j in (i + 1)..entries.len() {
                        let d = entries[i].merged_home_diameter_sq(&entries[j]).sqrt();
                        if d < best {
                            best = d;
                        }
                    }
                }
                mins.push(best);
            }
        }
        let hint = if mins.is_empty() {
            0.0
        } else {
            mins.sort_by(f64::total_cmp);
            mins[mins.len() / 2]
        };
        let grown = if self.threshold > 0.0 {
            self.threshold * self.config.threshold_growth
        } else {
            f64::MIN_POSITIVE
        };
        hint.max(grown)
    }

    /// Rebuilds the tree from its own leaf entries at a higher threshold,
    /// paging out candidate outliers. No data rescan (Section 4.3.1).
    fn rebuild(&mut self, new_threshold: f64) {
        debug_assert!(new_threshold >= self.threshold);
        let old_threshold = self.threshold;
        let mut carried: Vec<Acf> = Vec::with_capacity(self.leaf_entry_count);
        for node in std::mem::take(&mut self.nodes) {
            if let Node::Leaf { entries } = node {
                carried.extend(entries);
            }
        }
        self.nodes.push(Node::Leaf { entries: Vec::new() });
        self.root = 0;
        self.leaf_entry_count = 0;
        self.threshold = new_threshold;
        self.threshold_sq = new_threshold * new_threshold;
        let limit = self.config.outlier_entry_limit;
        let mut paged = 0u64;
        for acf in carried {
            if limit > 0 && acf.n() < limit {
                self.outliers.push(acf);
                paged += 1;
            } else {
                self.insert_entry(acf);
            }
        }
        self.rebuilds += 1;
        let m = crate::metrics::metrics();
        m.rebuilds.inc();
        if new_threshold > old_threshold {
            m.threshold_raises.inc();
        }
        m.outliers_paged.add(paged);
        dar_obs::event(
            "birch.rebuild",
            &[
                ("set", &self.set.to_string()),
                ("threshold", &format!("{new_threshold:.6}")),
                ("outliers_paged", &paged.to_string()),
            ],
        );
    }
}

/// Farthest-pair split: seeds are the two items whose centroids are farthest
/// apart; every item joins the nearer seed. Both halves are guaranteed
/// non-empty (the seeds themselves).
fn partition_by_farthest_pair<T>(items: Vec<T>, centroids: &[Vec<f64>]) -> (Vec<T>, Vec<T>) {
    debug_assert!(items.len() >= 2);
    let mut seed_a = 0;
    let mut seed_b = 1;
    let mut best = -1.0;
    for i in 0..centroids.len() {
        for j in (i + 1)..centroids.len() {
            let d: f64 = centroids[i]
                .iter()
                .zip(&centroids[j])
                .map(|(a, b)| {
                    let d = a - b;
                    d * d
                })
                .sum();
            if d > best {
                best = d;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut keep = Vec::with_capacity(items.len() / 2 + 1);
    let mut give = Vec::with_capacity(items.len() / 2 + 1);
    for (i, item) in items.into_iter().enumerate() {
        let da: f64 = centroids[i]
            .iter()
            .zip(&centroids[seed_a])
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum();
        let db: f64 = centroids[i]
            .iter()
            .zip(&centroids[seed_b])
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum();
        if i == seed_a || (i != seed_b && da <= db) {
            keep.push(item);
        } else {
            give.push(item);
        }
    }
    (keep, give)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout1() -> AcfLayout {
        AcfLayout::new(vec![1, 1])
    }

    fn proj(x: f64, y: f64) -> Vec<Vec<f64>> {
        vec![vec![x], vec![y]]
    }

    fn tree(threshold: f64) -> AcfTree {
        let config = BirchConfig {
            branching: 3,
            leaf_capacity: 3,
            initial_threshold: threshold,
            memory_budget: usize::MAX,
            ..BirchConfig::default()
        };
        AcfTree::new(layout1(), 0, config)
    }

    #[test]
    fn zero_threshold_keeps_distinct_values_apart() {
        let mut t = tree(0.0);
        for v in [1.0, 2.0, 3.0, 1.0, 2.0, 1.0] {
            t.insert_point(&proj(v, v * 10.0));
        }
        assert_eq!(t.num_clusters(), 3);
        assert_eq!(t.points_inserted(), 6);
        let mut counts: Vec<u64> = t.leaf_entries().map(Acf::n).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2, 3]);
    }

    #[test]
    fn points_within_threshold_merge() {
        let mut t = tree(1.0);
        // 0.0 and 0.5 merge (diameter 0.5 ≤ 1); 10.0 stays apart.
        t.insert_point(&proj(0.0, 0.0));
        t.insert_point(&proj(0.5, 1.0));
        t.insert_point(&proj(10.0, 2.0));
        assert_eq!(t.num_clusters(), 2);
        let big = t.leaf_entries().find(|a| a.n() == 2).unwrap();
        assert_eq!(big.centroid_on(0).unwrap(), vec![0.25]);
        // The image on set 1 accumulated both rows.
        assert_eq!(big.centroid_on(1).unwrap(), vec![0.5]);
    }

    #[test]
    fn splits_preserve_all_points_and_balance() {
        let mut t = tree(0.0);
        let n = 200;
        for i in 0..n {
            t.insert_point(&proj(i as f64, 0.0));
        }
        assert_eq!(t.num_clusters(), n);
        let total: u64 = t.leaf_entries().map(Acf::n).sum();
        assert_eq!(total, n as u64);
        assert!(t.height() >= 3, "200 distinct values must grow the tree");
        // Root summary must equal the whole data set.
        let root_cf = t.summarize_node(t.root);
        assert_eq!(root_cf.n(), n as u64);
        let sum: f64 = (0..n).map(|i| i as f64).sum();
        assert!((root_cf.linear_sum()[0] - sum).abs() < 1e-6);
    }

    #[test]
    fn finish_returns_all_entries() {
        let mut t = tree(0.0);
        for i in 0..50 {
            t.insert_point(&proj(i as f64, i as f64));
        }
        let clusters = t.finish();
        assert_eq!(clusters.len(), 50);
        let total: u64 = clusters.iter().map(Acf::n).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn memory_pressure_triggers_rebuild_and_shrinks_tree() {
        let config = BirchConfig {
            branching: 4,
            leaf_capacity: 4,
            initial_threshold: 0.0,
            memory_budget: 6_000, // tiny: forces rebuilds
            threshold_growth: 2.0,
            ..BirchConfig::default()
        };
        let mut t = AcfTree::new(layout1(), 0, config);
        for i in 0..500 {
            t.insert_point(&proj(i as f64, 0.0));
        }
        assert!(t.rebuilds() > 0, "budget must have forced rebuilds");
        assert!(t.threshold() > 0.0);
        assert!(t.memory_estimate() <= 6_000, "estimate {} exceeds budget", t.memory_estimate());
        // No points lost across rebuilds.
        let total: u64 = t.leaf_entries().map(Acf::n).sum();
        assert_eq!(total, 500);
        assert!(t.num_clusters() < 500);
    }

    #[test]
    fn outliers_paged_out_and_reinserted_on_finish() {
        let config = BirchConfig {
            branching: 4,
            leaf_capacity: 4,
            initial_threshold: 0.0,
            memory_budget: 4_000,
            outlier_entry_limit: 5,
            threshold_growth: 2.0,
        };
        let mut t = AcfTree::new(layout1(), 0, config);
        // A heavy cluster at 0 and many scattered singletons.
        for _ in 0..300 {
            t.insert_point(&proj(0.0, 0.0));
        }
        for i in 0..200 {
            t.insert_point(&proj(1_000.0 + 50.0 * i as f64, 0.0));
        }
        let paged = t.stats().outliers;
        assert!(paged > 0, "scattered singletons must be paged out");
        let clusters = t.finish();
        let total: u64 = clusters.iter().map(Acf::n).sum();
        assert_eq!(total, 500, "outlier re-insertion must not lose tuples");
        // The heavy value survives as one cluster with n >= 300.
        assert!(clusters.iter().any(|c| c.n() >= 300));
    }

    #[test]
    fn insert_entry_merges_compatible_summaries() {
        let mut t = tree(2.0);
        let layout = layout1();
        let a = Acf::from_row(&layout, 0, &proj(1.0, 5.0));
        let b = Acf::from_row(&layout, 0, &proj(1.5, 7.0));
        t.insert_entry(a);
        t.insert_entry(b);
        assert_eq!(t.num_clusters(), 1);
        let only = t.leaf_entries().next().unwrap();
        assert_eq!(only.n(), 2);
        // Empty entries are ignored.
        t.insert_entry(Acf::empty(&layout, 0));
        assert_eq!(t.num_clusters(), 1);
    }

    #[test]
    fn stats_snapshot_is_consistent() {
        let mut t = tree(0.0);
        for i in 0..20 {
            t.insert_point(&proj(i as f64, 0.0));
        }
        let s = t.stats();
        assert_eq!(s.set, 0);
        assert_eq!(s.leaf_entries, 20);
        assert_eq!(s.rebuilds, 0);
        assert!(s.nodes >= 1);
        assert!(s.memory_bytes > 0);
        assert_eq!(s.outliers, 0);
    }

    #[test]
    fn invariants_hold_through_growth_rebuilds_and_outliers() {
        let config = BirchConfig {
            branching: 4,
            leaf_capacity: 4,
            initial_threshold: 0.0,
            memory_budget: 5_000,
            outlier_entry_limit: 3,
            threshold_growth: 2.0,
        };
        let mut t = AcfTree::new(layout1(), 0, config);
        // A deterministic pseudo-random stream covering merges, splits,
        // rebuilds and outlier paging.
        let mut x = 0x2545F4914F6CDD1Du64;
        for i in 0..800 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = (x % 1000) as f64 + if i % 5 == 0 { 0.0 } else { 0.5 };
            t.insert_point(&proj(v, v));
            if i % 97 == 0 {
                t.check_invariants().unwrap_or_else(|e| panic!("at insert {i}: {e}"));
            }
        }
        t.check_invariants().unwrap();
        // Outliers live outside the tree; finish() folds them back.
        let all = t.finish();
        assert_eq!(all.iter().map(Acf::n).sum::<u64>(), 800);
    }

    #[test]
    fn invariant_checker_detects_a_stale_parent() {
        let mut t = tree(0.0);
        for i in 0..50 {
            t.insert_point(&proj(i as f64, 0.0));
        }
        t.check_invariants().unwrap();
        // Corrupt a parent CF.
        for node in &mut t.nodes {
            if let Node::Internal { entries } = node {
                entries[0].cf.add_point(&[999.0]);
                break;
            }
        }
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn farthest_pair_partition_nonempty_sides() {
        let items = vec![0, 1, 2, 3];
        let centroids = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
        let (a, b) = partition_by_farthest_pair(items, &centroids);
        assert!(!a.is_empty() && !b.is_empty());
        assert_eq!(a.len() + b.len(), 4);
        // The two tight groups end up on opposite sides.
        assert!(a.contains(&0) == a.contains(&1));
        assert!(b.contains(&2) == b.contains(&3));
    }
}
