//! One ACF-tree per attribute set: the full Phase I scan.

use crate::config::BirchConfig;
use crate::tree::{AcfTree, TreeStats};
use dar_core::{Acf, AcfLayout, Partitioning, Relation};

/// A forest of [`AcfTree`]s, one per attribute set of a [`Partitioning`]
/// ("a separate tree is maintained for each attribute that can be grouped",
/// Section 3). Feeding every tuple of a relation through the forest is the
/// single data scan of Phase I.
///
/// ```
/// use birch::{AcfForest, BirchConfig};
/// use dar_core::{Metric, Partitioning, Schema};
/// let schema = Schema::interval_attrs(2);
/// let partitioning = Partitioning::per_attribute(&schema, Metric::Euclidean);
/// let config = BirchConfig { initial_threshold: 1.0, ..BirchConfig::default() };
/// let mut forest = AcfForest::new(partitioning, &config);
/// for i in 0..100 {
///     let block = if i % 2 == 0 { 0.0 } else { 50.0 };
///     forest.insert_values(&[block, block + 10.0]);
/// }
/// let per_set = forest.finish();
/// assert_eq!(per_set.len(), 2);          // one cluster list per attribute
/// assert_eq!(per_set[0].len(), 2);       // the two value blocks
/// assert_eq!(per_set[0][0].n() + per_set[0][1].n(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct AcfForest {
    trees: Vec<AcfTree>,
    partitioning: Partitioning,
    /// Reusable per-set projection buffers: one `Vec<f64>` per attribute set.
    scratch: Vec<Vec<f64>>,
}

/// Aggregate diagnostics across all trees of a forest.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestStats {
    /// Per-tree snapshots, indexed by set id.
    pub trees: Vec<TreeStats>,
}

impl ForestStats {
    /// Total clusters (leaf entries) across all trees.
    pub fn total_clusters(&self) -> usize {
        self.trees.iter().map(|t| t.leaf_entries).sum()
    }

    /// Total estimated memory across all trees.
    pub fn total_memory_bytes(&self) -> usize {
        self.trees.iter().map(|t| t.memory_bytes).sum()
    }

    /// Total rebuilds across all trees.
    pub fn total_rebuilds(&self) -> usize {
        self.trees.iter().map(|t| t.rebuilds).sum()
    }
}

impl AcfForest {
    /// Creates a forest for `partitioning`, one tree per attribute set,
    /// sharing `config`.
    pub fn new(partitioning: Partitioning, config: &BirchConfig) -> Self {
        let thresholds = vec![config.initial_threshold; partitioning.num_sets()];
        Self::with_initial_thresholds(partitioning, config, &thresholds)
    }

    /// Creates a forest with a *per-set* initial diameter threshold —
    /// attribute sets on different scales (ages vs. dollar amounts) need
    /// different density thresholds `d0^{X_i}` (Dfn 4.2); the paper selects
    /// "an initial diameter threshold ... for each X_i" (Section 4.3.1).
    ///
    /// # Panics
    /// Panics if `thresholds.len()` differs from the number of sets.
    pub fn with_initial_thresholds(
        partitioning: Partitioning,
        config: &BirchConfig,
        thresholds: &[f64],
    ) -> Self {
        assert_eq!(
            thresholds.len(),
            partitioning.num_sets(),
            "one initial threshold per attribute set"
        );
        let layout = AcfLayout::from_partitioning(&partitioning);
        let trees = thresholds
            .iter()
            .enumerate()
            .map(|(set, &t)| {
                let cfg = BirchConfig { initial_threshold: t, ..config.clone() };
                AcfTree::new(layout.clone(), set, cfg)
            })
            .collect();
        let scratch = partitioning.sets().iter().map(|s| Vec::with_capacity(s.dims())).collect();
        AcfForest { trees, partitioning, scratch }
    }

    /// The partitioning this forest clusters.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The shared ACF layout.
    pub fn layout(&self) -> AcfLayout {
        AcfLayout::from_partitioning(&self.partitioning)
    }

    /// Inserts one tuple of `relation` (by row index) into every tree.
    pub fn insert_row(&mut self, relation: &Relation, row: usize) {
        for (set, buf) in self.scratch.iter_mut().enumerate() {
            relation.project_into(row, &self.partitioning.set(set).attrs, buf);
        }
        for tree in &mut self.trees {
            tree.insert_point(&self.scratch);
        }
    }

    /// Inserts a full tuple given by value (streaming ingestion without a
    /// materialized relation).
    pub fn insert_values(&mut self, row: &[f64]) {
        for (set, buf) in self.scratch.iter_mut().enumerate() {
            buf.clear();
            buf.extend(self.partitioning.set(set).attrs.iter().map(|&a| row[a]));
        }
        for tree in &mut self.trees {
            tree.insert_point(&self.scratch);
        }
    }

    /// Scans an entire relation — the Phase I pass.
    pub fn scan(&mut self, relation: &Relation) {
        for row in 0..relation.len() {
            self.insert_row(relation, row);
        }
    }

    /// Inserts a batch of full tuples, fanning the per-set trees out across
    /// `pool` — one tree per task, zero contention, since the attribute
    /// partitions are independent by construction (Dfn 4.2). Every tree
    /// sees the batch's rows in their original order, exactly as a serial
    /// [`AcfForest::insert_values`] loop would feed it, so the resulting
    /// forest is bit-identical to the serial scan at any worker count.
    ///
    /// Small batches (or a serial pool) take the one-thread path directly:
    /// the output is identical either way, the fan-out just isn't worth a
    /// scope spawn.
    pub fn insert_batch(&mut self, rows: &[Vec<f64>], pool: &dar_par::ThreadPool) {
        const PARALLEL_BATCH_MIN: usize = 64;
        if pool.is_serial() || self.trees.len() <= 1 || rows.len() < PARALLEL_BATCH_MIN {
            for row in rows {
                self.insert_values(row);
            }
            return;
        }
        // Project every row onto every set once, up front: `insert_point`
        // needs the full per-set projections (ACFs track images on all
        // sets), and sharing one projection table keeps the per-tree tasks
        // read-only with respect to everything but their own tree.
        let sets = self.partitioning.sets();
        let projections: Vec<Vec<Vec<f64>>> = rows
            .iter()
            .map(|row| sets.iter().map(|s| s.attrs.iter().map(|&a| row[a]).collect()).collect())
            .collect();
        pool.run_mut("phase1_batch", &mut self.trees, |_, tree| {
            for projection in &projections {
                tree.insert_point(projection);
            }
        });
    }

    /// Merges another forest built over a disjoint shard of the data into
    /// this one: each of `other`'s finished clusters is re-inserted as a
    /// pre-aggregated ACF entry. ACF additivity (Theorem 6.1 / Eq. 7) makes
    /// the merge exact in aggregate — per set, the merged forest's total
    /// `N`, `LS`, `SS` and every image's moment vectors equal those of a
    /// single forest fed the concatenated shards — though cluster
    /// *boundaries* may differ, as they do for any insertion-order change.
    ///
    /// # Panics
    /// Panics if the two forests were built over different partitionings.
    pub fn merge(&mut self, other: AcfForest) {
        assert_eq!(
            self.partitioning, other.partitioning,
            "merge requires forests over the same partitioning"
        );
        for (set, acfs) in other.finish().into_iter().enumerate() {
            for acf in acfs {
                self.insert_entry(set, acf);
            }
        }
    }

    /// Subtracts a forest previously merged into this one — the inverse of
    /// [`AcfForest::merge`] at the moment level, the retirement path of a
    /// sliding-window forest. `other` is finished (outliers re-inserted)
    /// exactly as `merge` would have, and each of its clusters is unmerged
    /// from the closest live entry with enough mass; CF additivity (Theorem
    /// 6.1 / Eq. 7) runs both ways, so per set the surviving total `N` is
    /// exact and every moment matches a forest that never saw `other`'s
    /// rows, up to floating-point summation order. Cluster *boundaries* may
    /// differ, as with any insertion-order change; the subtraction itself
    /// is deterministic.
    ///
    /// # Panics
    /// Panics if the two forests were built over different partitionings,
    /// or if `other` holds more tuples on some set than this forest does
    /// (i.e. `other` was never merged into this forest).
    pub fn subtract(&mut self, other: AcfForest) {
        assert_eq!(
            self.partitioning, other.partitioning,
            "subtract requires forests over the same partitioning"
        );
        for (set, acfs) in other.finish().into_iter().enumerate() {
            self.trees[set].subtract_entries(&acfs);
        }
    }

    /// Finishes every tree (re-inserting outliers) and returns the clusters
    /// grouped by attribute set.
    pub fn finish(self) -> Vec<Vec<Acf>> {
        self.trees.into_iter().map(AcfTree::finish).collect()
    }

    /// Extracts the current clusters *without consuming the forest*: each
    /// tree is cloned and finished (outliers re-inserted into the copy), so
    /// the live trees keep accepting insertions. This is what lets a
    /// long-lived engine close an epoch — snapshot the clustering as of now
    /// — and continue ingesting into the same Phase I state. By
    /// construction the result is identical to what [`AcfForest::finish`]
    /// would have returned at this point.
    pub fn extract_clusters(&self) -> Vec<Vec<Acf>> {
        self.trees.iter().map(|tree| tree.clone().finish()).collect()
    }

    /// Inserts a pre-aggregated ACF entry into one set's tree — the restore
    /// path: a snapshot's cluster summaries are replayed into a fresh forest
    /// (ACF additivity, Equation 7, makes the merge exact). Empty entries
    /// are ignored.
    pub fn insert_entry(&mut self, set: usize, acf: Acf) {
        self.trees[set].insert_entry(acf);
    }

    /// The current per-set diameter thresholds (these rise over the scan as
    /// trees rebuild to stay within their memory budgets).
    pub fn thresholds(&self) -> Vec<f64> {
        self.trees.iter().map(AcfTree::threshold).collect()
    }

    /// Diagnostic snapshot of all trees.
    pub fn stats(&self) -> ForestStats {
        ForestStats { trees: self.trees.iter().map(AcfTree::stats).collect() }
    }

    /// Access a single tree (read-only), e.g. for nearest-centroid lookups.
    pub fn tree(&self, set: usize) -> &AcfTree {
        &self.trees[set]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Metric, RelationBuilder, Schema};

    fn two_cluster_relation() -> Relation {
        // Attribute 0 has clusters near 0 and near 100; attribute 1 has
        // clusters near 5 and near 50.
        let mut b = RelationBuilder::new(Schema::interval_attrs(2));
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.01;
            b.push_row(&[jitter, 5.0 + jitter]).unwrap();
            b.push_row(&[100.0 + jitter, 50.0 + jitter]).unwrap();
        }
        b.finish()
    }

    fn forest_for(relation: &Relation, threshold: f64) -> AcfForest {
        let p = Partitioning::per_attribute(relation.schema(), Metric::Euclidean);
        let config = BirchConfig {
            initial_threshold: threshold,
            memory_budget: usize::MAX,
            ..BirchConfig::default()
        };
        AcfForest::new(p, &config)
    }

    #[test]
    fn scan_finds_the_planted_clusters() {
        let r = two_cluster_relation();
        let mut f = forest_for(&r, 1.0);
        f.scan(&r);
        let stats = f.stats();
        assert_eq!(stats.trees.len(), 2);
        assert_eq!(stats.total_clusters(), 4, "two clusters per attribute");
        let per_set = f.finish();
        assert_eq!(per_set.len(), 2);
        for clusters in &per_set {
            assert_eq!(clusters.len(), 2);
            let total: u64 = clusters.iter().map(Acf::n).sum();
            assert_eq!(total, 40);
        }
        // Images: the cluster near 0 on attr0 must have its attr1 image near 5.
        let c0 = per_set[0].iter().find(|c| c.centroid_on(0).unwrap()[0] < 1.0).unwrap();
        let img = c0.centroid_on(1).unwrap()[0];
        assert!((img - 5.0).abs() < 0.1, "image centroid {img} should be ~5");
    }

    #[test]
    fn insert_values_matches_insert_row() {
        let r = two_cluster_relation();
        let mut f1 = forest_for(&r, 1.0);
        f1.scan(&r);
        let mut f2 = forest_for(&r, 1.0);
        for row in 0..r.len() {
            let vals = r.row(row);
            f2.insert_values(&vals);
        }
        let s1 = f1.stats();
        let s2 = f2.stats();
        assert_eq!(s1.total_clusters(), s2.total_clusters());
    }

    #[test]
    fn extract_clusters_matches_finish_and_preserves_the_forest() {
        let r = two_cluster_relation();
        let mut f = forest_for(&r, 1.0);
        f.scan(&r);
        let extracted = f.extract_clusters();
        // The forest is still usable: more insertions and a final finish.
        f.insert_values(&[0.01, 5.01]);
        let finished = f.finish();
        assert_eq!(extracted.len(), finished.len());
        let n = |per_set: &[Vec<Acf>]| -> u64 { per_set[0].iter().map(Acf::n).sum() };
        assert_eq!(n(&extracted), 40);
        assert_eq!(n(&finished), 41);
    }

    #[test]
    fn insert_entry_replays_extracted_clusters() {
        let r = two_cluster_relation();
        let mut f = forest_for(&r, 1.0);
        f.scan(&r);
        let thresholds = f.thresholds();
        let extracted = f.extract_clusters();

        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let config = BirchConfig { memory_budget: usize::MAX, ..BirchConfig::default() };
        let mut replayed = AcfForest::with_initial_thresholds(p, &config, &thresholds);
        for (set, acfs) in extracted.iter().enumerate() {
            for acf in acfs {
                replayed.insert_entry(set, acf.clone());
            }
        }
        let out = replayed.finish();
        for (set, acfs) in extracted.iter().enumerate() {
            let total: u64 = acfs.iter().map(Acf::n).sum();
            let replayed_total: u64 = out[set].iter().map(Acf::n).sum();
            assert_eq!(total, replayed_total, "set {set} lost tuples in replay");
        }
    }

    #[test]
    fn insert_batch_is_bit_identical_to_serial_at_any_worker_count() {
        let r = two_cluster_relation();
        let rows: Vec<Vec<f64>> = (0..r.len()).map(|i| r.row(i)).collect();
        // Pad the batch past the parallel threshold with jittered copies.
        let rows: Vec<Vec<f64>> = (0..3).flat_map(|_| rows.iter().cloned()).collect();
        let mut serial = forest_for(&r, 1.0);
        for row in &rows {
            serial.insert_values(row);
        }
        let want = serial.extract_clusters();
        for workers in [1usize, 2, 4, 8] {
            let pool = dar_par::ThreadPool::new(workers);
            let mut f = forest_for(&r, 1.0);
            f.insert_batch(&rows, &pool);
            assert_eq!(f.extract_clusters(), want, "workers={workers}");
            assert_eq!(f.thresholds(), serial.thresholds(), "workers={workers}");
        }
    }

    #[test]
    fn merge_of_disjoint_shards_preserves_totals() {
        let r = two_cluster_relation();
        let rows: Vec<Vec<f64>> = (0..r.len()).map(|i| r.row(i)).collect();
        let (left, right) = rows.split_at(rows.len() / 2);
        let mut a = forest_for(&r, 1.0);
        for row in left {
            a.insert_values(row);
        }
        let mut b = forest_for(&r, 1.0);
        for row in right {
            b.insert_values(row);
        }
        a.merge(b);
        let merged = a.finish();
        for (set, clusters) in merged.iter().enumerate() {
            let total: u64 = clusters.iter().map(Acf::n).sum();
            assert_eq!(total, rows.len() as u64, "set {set} lost tuples in merge");
        }
    }

    #[test]
    #[should_panic(expected = "same partitioning")]
    fn merge_rejects_mismatched_partitionings() {
        let r = two_cluster_relation();
        let a = forest_for(&r, 1.0);
        let schema = Schema::interval_attrs(3);
        let p = Partitioning::per_attribute(&schema, Metric::Euclidean);
        let config = BirchConfig { memory_budget: usize::MAX, ..BirchConfig::default() };
        let b = AcfForest::new(p, &config);
        let mut a = a;
        a.merge(b);
    }

    #[test]
    fn stats_aggregates() {
        let r = two_cluster_relation();
        let mut f = forest_for(&r, 1.0);
        f.scan(&r);
        let s = f.stats();
        assert!(s.total_memory_bytes() > 0);
        assert_eq!(s.total_rebuilds(), 0);
        assert_eq!(f.tree(0).points_inserted(), r.len() as u64);
    }
}
