//! Global cluster refinement — BIRCH's "Phase 3" applied to ACFs.
//!
//! The incremental, order-dependent tree can split what is really one
//! cluster across several leaf entries (the paper observes "a small
//! difference ... in the centroid of the clusters due to the use of a
//! non-optimal clustering strategy", Section 7.2). This pass runs a global
//! agglomerative merge over the final leaf entries: while the closest pair
//! of clusters (by merged home diameter) still fits under the threshold,
//! merge it. ACF additivity makes the merge exact — no data rescan.

use dar_core::Acf;

/// Agglomeratively merges clusters whose union's home diameter stays at or
/// below `threshold`. Greedy closest-pair; `O(k²)` per merge with `k`
/// clusters — Phase I has already reduced `k` to a summary-sized set.
///
/// Returns the refined clusters; total tuple count is preserved.
pub fn refine_clusters(mut clusters: Vec<Acf>, threshold: f64) -> Vec<Acf> {
    let threshold_sq = threshold * threshold;
    loop {
        let k = clusters.len();
        if k < 2 {
            return clusters;
        }
        // Find the pair with the smallest merged diameter.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..k {
            for j in (i + 1)..k {
                let d = clusters[i].merged_home_diameter_sq(&clusters[j]);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, d)) = best else { return clusters };
        if d > threshold_sq {
            return clusters;
        }
        let absorbed = clusters.swap_remove(j); // j > i, so i stays valid
        clusters[i].merge(&absorbed).expect("clusters of one tree share home set and layout");
    }
}

/// Convenience: refine every per-set cluster list of a forest output with
/// per-set thresholds.
pub fn refine_forest_output(per_set: Vec<Vec<Acf>>, thresholds: &[f64]) -> Vec<Vec<Acf>> {
    per_set
        .into_iter()
        .enumerate()
        .map(|(set, clusters)| {
            let t = thresholds.get(set).copied().unwrap_or(0.0);
            refine_clusters(clusters, t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::AcfLayout;

    fn acf(values: &[f64]) -> Acf {
        let layout = AcfLayout::new(vec![1]);
        let mut a = Acf::empty(&layout, 0);
        for &v in values {
            a.add_row(&[vec![v]]);
        }
        a
    }

    #[test]
    fn close_fragments_merge_distant_ones_do_not() {
        // Three fragments of one cluster around 10, one far cluster at 100.
        let clusters =
            vec![acf(&[9.8, 10.0]), acf(&[10.1, 10.2]), acf(&[10.4]), acf(&[100.0, 100.1])];
        let refined = refine_clusters(clusters, 2.0);
        assert_eq!(refined.len(), 2);
        let mut counts: Vec<u64> = refined.iter().map(Acf::n).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![2, 5]);
        // The merged cluster's centroid is the mean of all five values.
        let big = refined.iter().find(|c| c.n() == 5).unwrap();
        let c = big.centroid_on(0).unwrap()[0];
        assert!((c - 10.1).abs() < 1e-9, "centroid {c}");
        // And its bounding box covers all fragments.
        assert_eq!(big.bbox().interval(0).lo, 9.8);
        assert_eq!(big.bbox().interval(0).hi, 10.4);
    }

    #[test]
    fn zero_threshold_only_merges_identical_points() {
        let clusters = vec![acf(&[1.0]), acf(&[1.0]), acf(&[2.0])];
        let refined = refine_clusters(clusters, 0.0);
        assert_eq!(refined.len(), 2);
    }

    #[test]
    fn preserves_total_population() {
        let clusters: Vec<Acf> = (0..20).map(|i| acf(&[i as f64 * 0.1])).collect();
        let refined = refine_clusters(clusters, 5.0);
        let total: u64 = refined.iter().map(Acf::n).sum();
        assert_eq!(total, 20);
        assert_eq!(refined.len(), 1, "everything within diameter 5 merges");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(refine_clusters(Vec::new(), 1.0).is_empty());
        let one = refine_clusters(vec![acf(&[3.0])], 1.0);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn forest_output_uses_per_set_thresholds() {
        let per_set = vec![
            vec![acf(&[0.0]), acf(&[0.5])], // set 0: merges at t=1
            vec![acf(&[0.0]), acf(&[0.5])], // set 1: stays at t=0.1
        ];
        let refined = refine_forest_output(per_set, &[1.0, 0.1]);
        assert_eq!(refined[0].len(), 1);
        assert_eq!(refined[1].len(), 2);
    }
}
