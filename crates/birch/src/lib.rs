//! # birch
//!
//! An adaptive, BIRCH-style clustering engine over **Association Clustering
//! Features** (ACFs), built as the Phase I substrate of Miller & Yang's
//! distance-based association rule miner (SIGMOD 1997, Sections 3, 4.3.1 and
//! 6.1).
//!
//! The engine maintains one height-balanced [`AcfTree`] per attribute set of
//! a partitioning (see [`AcfForest`]). Each tree is a B⁺-tree-like structure:
//! internal nodes hold `(CF, child)` entries summarizing their subtrees on
//! the *home* attribute set; leaves hold full [`Acf`](dar_core::Acf) entries
//! (CF on the home set plus moment vectors on every other set, Eq. 7 of the
//! paper). Insertion descends to the closest entry at every level and merges
//! a point into the closest leaf cluster if the merged diameter stays within
//! the current threshold, otherwise starts a new cluster; full nodes split
//! like B⁺-tree pages.
//!
//! Three adaptive behaviours from the paper are implemented:
//!
//! * **Memory budgeting** — each tree estimates its heap footprint; when the
//!   estimate exceeds the budget, the diameter threshold is raised and the
//!   tree is rebuilt *from its own leaf entries* (no data rescan; Section 3,
//!   "as memory gets scarce, the height of the tree is reduced").
//! * **Threshold heuristic** — the next threshold is chosen from the
//!   distribution of closest-pair merged diameters inside the current
//!   leaves, so that a rebuild actually merges clusters (Section 4.3.1).
//! * **Outlier paging** — during a rebuild, leaf entries far smaller than
//!   the frequency threshold are paged to an outlier store; they are
//!   re-inserted at [`AcfTree::finish`] "to ensure that they are indeed
//!   outliers" (Section 4.3.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod forest;
mod metrics;
pub mod refine;
pub mod tree;

pub use config::BirchConfig;
pub use forest::{AcfForest, ForestStats};
pub use refine::{refine_clusters, refine_forest_output};
pub use tree::{AcfTree, TreeStats};
