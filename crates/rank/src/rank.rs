//! The ranking pipeline: evaluate → filter → order → prune → top-k.
//!
//! The output is a pure function of the (already canonically-sorted) rule
//! list and the knobs, with a stable total order — measure value first,
//! rule identity `(antecedent, consequent)` as the tie-break — so ranked
//! artifacts are byte-identical however the rules were produced (any
//! worker count, any shard layout).

use crate::measure::{evaluate, RuleStats};
use crate::metrics::metrics;
use crate::prune;
use dar_core::ClusterSummary;
use dar_obs::Span;
use mining::{Dar, Measure};

/// One ranking request: the `RuleQuery` rank knobs plus the context the
/// measures are evaluated against.
#[derive(Debug, Clone, Copy)]
pub struct RankSpec<'a> {
    /// The measure to rank by.
    pub measure: Measure,
    /// Measure floor: rules scoring below it are dropped. For `degree`,
    /// where *lower* is stronger, this is an upper bound on degree
    /// instead.
    pub min_measure: Option<f64>,
    /// Keep only the best `top_k` rules (0 = all).
    pub top_k: usize,
    /// Collapse redundant rules to one representative per cluster.
    pub prune_redundant: bool,
    /// The cluster summaries the rules index into.
    pub clusters: &'a [ClusterSummary],
    /// Relation size (tuples scanned), for the frequency-based measures.
    pub n: u64,
}

impl<'a> RankSpec<'a> {
    /// Builds a spec from a query's rank knobs plus evaluation context.
    pub fn from_query(
        query: &mining::RuleQuery,
        clusters: &'a [ClusterSummary],
        n: u64,
    ) -> RankSpec<'a> {
        RankSpec {
            measure: query.measure,
            min_measure: query.min_measure,
            top_k: query.top_k,
            prune_redundant: query.prune_redundant,
            clusters,
            n,
        }
    }
}

/// A ranked rule set: rules and their measure values, aligned index-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked {
    /// The surviving rules, best first.
    pub rules: Vec<Dar>,
    /// `rules[i]`'s value under the ranking measure.
    pub values: Vec<f64>,
    /// Rules entering the pipeline (before filter/prune/top-k).
    pub rules_in: usize,
    /// Rules dropped as redundant.
    pub pruned: usize,
    /// Redundancy clusters that absorbed at least one duplicate.
    pub prune_clusters: usize,
}

/// Ranks a rule list under `spec`.
///
/// With default knobs (`degree` measure, no floor, no prune, no top-k)
/// this returns the input rules in their historical order with their
/// degrees as values — the legacy output, byte for byte.
pub fn rank(rules: Vec<Dar>, spec: &RankSpec) -> Ranked {
    let m = metrics();
    let _t = Span::new(m.rank_ns.clone());
    let rules_in = rules.len();
    m.rules_in.add(rules_in as u64);

    let mut scored: Vec<(Dar, f64)> = rules
        .into_iter()
        .map(|rule| {
            let stats = RuleStats::for_rule(&rule, spec.clusters, spec.n);
            let value = evaluate(spec.measure, &rule, &stats);
            (rule, value)
        })
        .collect();

    if let Some(floor) = spec.min_measure {
        match spec.measure {
            // Degree: lower is stronger, so the floor is a ceiling.
            Measure::Degree => scored.retain(|(_, v)| *v <= floor),
            _ => scored.retain(|(_, v)| *v >= floor),
        }
    }

    // Stable total order: measure value (degree ascending, everything
    // else descending), rule identity as the tie-break.
    scored.sort_by(|(ra, va), (rb, vb)| {
        let by_value = match spec.measure {
            Measure::Degree => va.total_cmp(vb),
            _ => vb.total_cmp(va),
        };
        by_value
            .then_with(|| ra.antecedent.cmp(&rb.antecedent))
            .then_with(|| ra.consequent.cmp(&rb.consequent))
    });

    let (mut pruned, mut prune_clusters) = (0, 0);
    if spec.prune_redundant {
        let rules_only: Vec<Dar> = scored.iter().map(|(r, _)| r.clone()).collect();
        let outcome = prune::prune(&rules_only, spec.clusters);
        pruned = outcome.pruned;
        prune_clusters = outcome.clusters;
        m.pruned_rules.add(pruned as u64);
        m.prune_clusters.add(prune_clusters as u64);
        let keep: std::collections::BTreeSet<usize> = outcome.kept.into_iter().collect();
        let mut i = 0;
        scored.retain(|_| {
            let k = keep.contains(&i);
            i += 1;
            k
        });
    }

    if spec.top_k != 0 && scored.len() > spec.top_k {
        scored.truncate(spec.top_k);
    }
    m.rules_out.add(scored.len() as u64);

    let mut rules = Vec::with_capacity(scored.len());
    let mut values = Vec::with_capacity(scored.len());
    for (rule, value) in scored {
        rules.push(rule);
        values.push(value);
    }
    Ranked { rules, values, rules_in, pruned, prune_clusters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Acf, AcfLayout, ClusterId};

    fn cluster(id: u32, set: usize, x: f64, n: usize) -> ClusterSummary {
        let layout = AcfLayout::new(vec![1, 1]);
        let mut acf = Acf::empty(&layout, set);
        for _ in 0..n {
            acf.add_row(&[vec![x], vec![x]]);
        }
        ClusterSummary { id: ClusterId(id), set, acf }
    }

    fn rule(ant: Vec<usize>, cons: Vec<usize>, degree: f64, support: u64) -> Dar {
        Dar { antecedent: ant, consequent: cons, degree, min_cluster_support: support }
    }

    fn fixture() -> (Vec<ClusterSummary>, Vec<Dar>) {
        let clusters = vec![
            cluster(0, 0, 1.0, 40),
            cluster(1, 1, 2.0, 30),
            cluster(2, 0, 50.0, 10),
            cluster(3, 1, 60.0, 20),
        ];
        // Canonical (degree, identity) order, as the generator emits.
        let rules = vec![
            rule(vec![0], vec![1], 0.1, 30),
            rule(vec![2], vec![3], 0.2, 10),
            rule(vec![3], vec![2], 0.3, 10),
        ];
        (clusters, rules)
    }

    #[test]
    fn default_knobs_reproduce_the_legacy_order() {
        let (clusters, rules) = fixture();
        let spec = RankSpec {
            measure: Measure::Degree,
            min_measure: None,
            top_k: 0,
            prune_redundant: false,
            clusters: &clusters,
            n: 100,
        };
        let ranked = rank(rules.clone(), &spec);
        assert_eq!(ranked.rules, rules);
        assert_eq!(ranked.values, vec![0.1, 0.2, 0.3]);
        assert_eq!(ranked.rules_in, 3);
        assert_eq!(ranked.pruned, 0);
    }

    #[test]
    fn lift_reorders_and_top_k_truncates() {
        let (clusters, rules) = fixture();
        let spec = RankSpec {
            measure: Measure::Lift,
            min_measure: None,
            top_k: 2,
            prune_redundant: false,
            clusters: &clusters,
            n: 100,
        };
        let ranked = rank(rules, &spec);
        assert_eq!(ranked.rules.len(), 2);
        // lift(r0) = 30·100/(40·30) = 2.5; lift(r1) = 10·100/(10·20) = 5;
        // lift(r2) = 5 as well — identity breaks the tie ([2]⇒[3] first).
        assert_eq!(ranked.rules[0].antecedent, vec![2]);
        assert_eq!(ranked.values[0], 5.0);
        assert_eq!(ranked.rules[1].antecedent, vec![3]);
    }

    #[test]
    fn min_measure_is_a_ceiling_for_degree_and_a_floor_otherwise() {
        let (clusters, rules) = fixture();
        let base = RankSpec {
            measure: Measure::Degree,
            min_measure: Some(0.15),
            top_k: 0,
            prune_redundant: false,
            clusters: &clusters,
            n: 100,
        };
        let ranked = rank(rules.clone(), &base);
        assert_eq!(ranked.rules.len(), 1, "only degree ≤ 0.15 survives");
        let spec = RankSpec { measure: Measure::Lift, min_measure: Some(3.0), ..base };
        let ranked = rank(rules, &spec);
        assert_eq!(ranked.rules.len(), 2, "lift ≥ 3 keeps the two strong rules");
        assert!(ranked.values.iter().all(|v| *v >= 3.0));
    }
}
