//! Clustering-based redundancy pruning.
//!
//! Overlapping maximal cliques emit families of near-identical rules: same
//! antecedent/consequent *attribute sets*, cluster bounding boxes that
//! overlap interval-by-interval — to a consumer these are one insight
//! stated several times. Following the pruning-by-clustering literature,
//! rules are grouped into redundancy clusters (same attribute-set
//! signature, pairwise-overlapping member bounding boxes) and only the
//! best-ranked representative of each cluster is kept.
//!
//! The pass is greedy over the already-ranked rule list, so which rule
//! represents a cluster is exactly the one the active measure ranks
//! highest — and the output is a deterministic function of the ranked
//! input, preserving byte-identity across worker counts and shards.

use dar_core::{BoundingBox, ClusterSummary};
use mining::Dar;
use std::collections::BTreeMap;

/// The rules a pruning pass kept, plus its bookkeeping.
#[derive(Debug)]
pub struct PruneOutcome {
    /// Indices (into the ranked input) of the representatives, in input
    /// order.
    pub kept: Vec<usize>,
    /// Rules dropped as redundant.
    pub pruned: usize,
    /// Redundancy clusters that absorbed at least one duplicate.
    pub clusters: usize,
}

/// Attribute-set signature of one rule side, members ordered by set.
/// Clique adjacency guarantees the member sets are pairwise distinct, so
/// the ordering is total.
fn signature(members: &[usize], clusters: &[ClusterSummary]) -> Vec<usize> {
    let mut sets: Vec<usize> = members.iter().map(|&i| clusters[i].set).collect();
    sets.sort_unstable();
    sets
}

/// Member cluster indices ordered by their attribute set, aligning the
/// two rules of one signature member-by-member.
fn by_set(members: &[usize], clusters: &[ClusterSummary]) -> Vec<usize> {
    let mut ordered = members.to_vec();
    ordered.sort_unstable_by_key(|&i| clusters[i].set);
    ordered
}

/// Whether two bounding boxes overlap in every dimension.
fn overlaps(a: &BoundingBox, b: &BoundingBox) -> bool {
    let (ia, ib) = (a.intervals(), b.intervals());
    ia.len() == ib.len() && ia.iter().zip(ib).all(|(x, y)| x.lo <= y.hi && y.lo <= x.hi)
}

/// Whether two same-signature rules are redundant: corresponding members
/// (matched by attribute set) have overlapping bounding boxes on both
/// sides.
fn redundant(a: &Dar, b: &Dar, clusters: &[ClusterSummary]) -> bool {
    let side = |xs: &[usize], ys: &[usize]| {
        by_set(xs, clusters)
            .iter()
            .zip(by_set(ys, clusters))
            .all(|(&x, y)| overlaps(clusters[x].bbox(), clusters[y].bbox()))
    };
    side(&a.antecedent, &b.antecedent) && side(&a.consequent, &b.consequent)
}

/// Greedy redundancy pruning over a ranked rule list: a rule that is
/// redundant with an earlier (better-ranked) representative is dropped,
/// otherwise it becomes a representative itself.
pub fn prune(rules: &[Dar], clusters: &[ClusterSummary]) -> PruneOutcome {
    // Representative indices per signature; signatures partition the
    // rules, so only same-signature pairs are ever compared.
    let mut reps: BTreeMap<(Vec<usize>, Vec<usize>), Vec<usize>> = BTreeMap::new();
    let mut kept = Vec::with_capacity(rules.len());
    let mut absorbed: BTreeMap<usize, usize> = BTreeMap::new();
    let mut pruned = 0;
    for (i, rule) in rules.iter().enumerate() {
        let sig = (signature(&rule.antecedent, clusters), signature(&rule.consequent, clusters));
        let group = reps.entry(sig).or_default();
        match group.iter().find(|&&rep| redundant(&rules[rep], rule, clusters)) {
            Some(&rep) => {
                pruned += 1;
                *absorbed.entry(rep).or_default() += 1;
            }
            None => {
                group.push(i);
                kept.push(i);
            }
        }
    }
    PruneOutcome { kept, pruned, clusters: absorbed.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_core::{Acf, AcfLayout, ClusterId};

    /// One single-attribute cluster per set, centered at `x` with ±0.5
    /// spread.
    fn cluster(id: u32, set: usize, x: f64) -> ClusterSummary {
        let layout = AcfLayout::new(vec![1, 1]);
        let mut acf = Acf::empty(&layout, set);
        acf.add_row(&[vec![x - 0.5], vec![x - 0.5]]);
        acf.add_row(&[vec![x + 0.5], vec![x + 0.5]]);
        ClusterSummary { id: ClusterId(id), set, acf }
    }

    fn rule(ant: Vec<usize>, cons: Vec<usize>, degree: f64) -> Dar {
        Dar { antecedent: ant, consequent: cons, degree, min_cluster_support: 2 }
    }

    #[test]
    fn overlapping_same_signature_rules_collapse_to_the_best() {
        // Clusters 0/2 (set 0) overlap; clusters 1/3 (set 1) overlap.
        let clusters = vec![
            cluster(0, 0, 10.0),
            cluster(1, 1, 20.0),
            cluster(2, 0, 10.4),
            cluster(3, 1, 20.4),
        ];
        let rules = vec![
            rule(vec![0], vec![1], 0.1),
            rule(vec![2], vec![3], 0.5),
            rule(vec![1], vec![0], 0.9),
        ];
        let out = prune(&rules, &clusters);
        // Rule 1 is redundant with rule 0; rule 2 has a different
        // signature (sides swapped) and survives.
        assert_eq!(out.kept, vec![0, 2]);
        assert_eq!(out.pruned, 1);
        assert_eq!(out.clusters, 1);
    }

    #[test]
    fn disjoint_boxes_are_not_redundant() {
        let clusters = vec![cluster(0, 0, 10.0), cluster(1, 1, 20.0), cluster(2, 0, 99.0)];
        let rules = vec![rule(vec![0], vec![1], 0.1), rule(vec![2], vec![1], 0.5)];
        let out = prune(&rules, &clusters);
        assert_eq!(out.kept, vec![0, 1]);
        assert_eq!(out.pruned, 0);
        assert_eq!(out.clusters, 0);
    }
}
