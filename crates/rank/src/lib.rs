//! # dar-rank
//!
//! Rule quality for distance-based association rules: interestingness
//! ranking, redundancy pruning, and anytime sampled answers.
//!
//! Phase II output on wide schemas explodes combinatorially; the paper's
//! degree of association says a rule is *meaningful*, but a production
//! consumer wants the rule list ranked, deduplicated, and bounded. This
//! crate is that layer, deliberately downstream of `mining`:
//!
//! * [`measure`] evaluates classical interestingness measures (lift,
//!   conviction, leverage, Jaccard) and the paper's degree of association
//!   from per-rule support statistics — deterministically, so ranked
//!   artifacts stay byte-identical across worker counts and shards;
//! * [`rank`] is the pipeline: evaluate → filter (`min_measure`) → stable
//!   total order (measure value, then rule identity) → optional redundancy
//!   prune → `top_k`;
//! * [`prune`] collapses near-identical rules (same attribute sets,
//!   overlapping cluster bounding boxes) to one representative per
//!   redundancy cluster;
//! * [`anytime`] samples clique pairs under a wall-clock budget and
//!   reports an honest coverage fraction instead of timing out.
//!
//! Everything is driven by the knobs on [`mining::RuleQuery`]
//! (`measure`, `min_measure`, `top_k`, `prune_redundant`, `budget_ms`);
//! `dar-engine` threads them through its query path and caches ranked
//! artifacts per knob-set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anytime;
pub mod measure;
mod metrics;
pub mod prune;
pub mod rank;

pub use anytime::{mine_budgeted, AnytimeOutcome};
pub use measure::{evaluate, RuleStats, CONVICTION_CAP};
pub use rank::{rank, RankSpec, Ranked};
