//! Interestingness measures evaluated from per-rule support statistics.
//!
//! The classical measures (lift, conviction, leverage, Jaccard) are all
//! functions of four counts: the relation size `n`, the antecedent and
//! consequent frequencies, and the joint frequency. For DARs the engine
//! does not know exact frequencies without the optional rescan (Section
//! 6.2), so [`RuleStats::for_rule`] substitutes the tightest statistics
//! the ACF summaries provide:
//!
//! * antecedent / consequent frequency ≈ the smallest member-cluster
//!   support on that side (an upper bound on the true side frequency);
//! * joint frequency ≈ the rule's `min_cluster_support` (the tightest
//!   upper bound available without a rescan).
//!
//! The substitution is deterministic — a pure function of the rule and the
//! cluster summaries — which is what keeps ranked artifacts byte-identical
//! across worker counts and shards. When exact joint frequencies *are*
//! available (rescan mode), [`RuleStats::with_joint`] swaps them in.

use dar_core::ClusterSummary;
use mining::{Dar, Measure};

/// Finite ceiling for conviction: the measure diverges to `+∞` as
/// confidence approaches 1, but the wire codec renders non-finite floats
/// as `null`, so perfectly-confident rules report this value instead.
pub const CONVICTION_CAP: f64 = 1e6;

/// The support statistics one rule is scored from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleStats {
    /// Relation size (tuples scanned).
    pub n: u64,
    /// Antecedent frequency (or its member-support proxy).
    pub antecedent: u64,
    /// Consequent frequency (or its member-support proxy).
    pub consequent: u64,
    /// Joint frequency (or its member-support proxy).
    pub joint: u64,
}

impl RuleStats {
    /// Derives the proxy statistics for `rule` from the cluster summaries
    /// it references and the relation size `n`.
    pub fn for_rule(rule: &Dar, clusters: &[ClusterSummary], n: u64) -> RuleStats {
        let side =
            |members: &[usize]| members.iter().map(|&i| clusters[i].support()).min().unwrap_or(0);
        RuleStats {
            n,
            antecedent: side(&rule.antecedent),
            consequent: side(&rule.consequent),
            joint: rule.min_cluster_support,
        }
    }

    /// The same statistics with an exact joint frequency (rescan mode).
    pub fn with_joint(self, joint: u64) -> RuleStats {
        RuleStats { joint, ..self }
    }
}

/// Evaluates one measure for one rule.
///
/// * `Degree` returns the rule's own degree of association unchanged
///   (lower is stronger — the ranking layer sorts it ascending, all other
///   measures descending).
/// * The classical measures return `0.0` when the statistics are vacuous
///   (`n == 0` or an empty side), so degenerate rules sink to the bottom
///   of a descending ranking rather than poisoning it with NaN.
pub fn evaluate(measure: Measure, rule: &Dar, stats: &RuleStats) -> f64 {
    if measure == Measure::Degree {
        return rule.degree;
    }
    let (n, ant, cons, joint) =
        (stats.n as f64, stats.antecedent as f64, stats.consequent as f64, stats.joint as f64);
    if stats.n == 0 || stats.antecedent == 0 || stats.consequent == 0 {
        return 0.0;
    }
    match measure {
        Measure::Degree => unreachable!("handled above"),
        // P(XY) / (P(X)·P(Y)) = joint·n / (ant·cons).
        Measure::Lift => (joint * n) / (ant * cons),
        // (1 − P(Y)) / (1 − conf); conf = joint/ant. Capped, not ∞.
        Measure::Conviction => {
            let confidence = joint / ant;
            if confidence >= 1.0 {
                CONVICTION_CAP
            } else {
                ((1.0 - cons / n) / (1.0 - confidence)).clamp(0.0, CONVICTION_CAP)
            }
        }
        // P(XY) − P(X)·P(Y).
        Measure::Leverage => joint / n - (ant / n) * (cons / n),
        // P(XY) / P(X ∨ Y) = joint / (ant + cons − joint).
        Measure::Jaccard => {
            let union = ant + cons - joint;
            if union <= 0.0 {
                0.0
            } else {
                joint / union
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(degree: f64, joint: u64) -> Dar {
        Dar { antecedent: vec![0], consequent: vec![1], degree, min_cluster_support: joint }
    }

    fn stats(n: u64, ant: u64, cons: u64, joint: u64) -> RuleStats {
        RuleStats { n, antecedent: ant, consequent: cons, joint }
    }

    #[test]
    fn degree_passes_through() {
        assert_eq!(evaluate(Measure::Degree, &rule(0.25, 5), &stats(0, 0, 0, 0)), 0.25);
    }

    #[test]
    fn independent_sides_score_neutral() {
        // joint = P(X)·P(Y)·n: lift 1, leverage 0, conviction 1.
        let s = stats(100, 50, 40, 20);
        let r = rule(0.5, 20);
        assert!((evaluate(Measure::Lift, &r, &s) - 1.0).abs() < 1e-12);
        assert!(evaluate(Measure::Leverage, &r, &s).abs() < 1e-12);
        assert!((evaluate(Measure::Conviction, &r, &s) - 1.0).abs() < 1e-12);
        assert!((evaluate(Measure::Jaccard, &r, &s) - 20.0 / 70.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_confidence_hits_the_conviction_cap() {
        let s = stats(100, 20, 30, 20);
        assert_eq!(evaluate(Measure::Conviction, &rule(0.1, 20), &s), CONVICTION_CAP);
    }

    #[test]
    fn vacuous_statistics_score_zero_not_nan() {
        let r = rule(0.1, 0);
        for m in [Measure::Lift, Measure::Conviction, Measure::Leverage, Measure::Jaccard] {
            assert_eq!(evaluate(m, &r, &stats(0, 0, 0, 0)), 0.0, "{m}");
            assert_eq!(evaluate(m, &r, &stats(10, 0, 5, 0)), 0.0, "{m}");
        }
    }

    #[test]
    fn with_joint_replaces_the_proxy() {
        let s = stats(100, 50, 40, 40).with_joint(10);
        assert_eq!(s.joint, 10);
        assert_eq!(s.antecedent, 50);
    }
}
