//! Anytime rule mining: sample clique pairs under a wall-clock budget.
//!
//! Rule generation is quadratic in the clique count; on degenerate graphs
//! a caller with a latency budget would rather have *most* of the answer
//! now than all of it late. Following the interval-pattern-sampling
//! literature, the sampler walks the clique-pair space in a fixed
//! low-discrepancy order (a golden-ratio stride, coprime with the pair
//! count, so early prefixes spread across the space instead of dwelling on
//! one consequent clique) and stops at the budget, reporting the exact
//! fraction of pairs it examined.
//!
//! The honesty contract mirrors `--allow-partial`: which pairs are
//! examined for a given coverage is deterministic, the answer is sorted in
//! canonical rule order, and the caller is told `coverage < 1.0` whenever
//! the enumeration was cut short — never a silently-partial answer. With
//! enough budget the sampler visits every pair and converges to the exact
//! rule set. In anytime mode the wall-clock budget *replaces*
//! `max_pair_work` as the work bound; `max_rules` still caps the final
//! (sorted) answer.

use crate::metrics::metrics;
use mining::{consequent_subsets, pair_candidates, sort_rules, ClusterDistance, Dar};
use mining::{Phase2Artifacts, RuleQuery};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// The result of one budgeted mining pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AnytimeOutcome {
    /// The sampled rules, in canonical `(degree, identity)` order.
    pub rules: Vec<Dar>,
    /// Whether the answer is incomplete (budget cut the walk short, or
    /// `max_rules` truncated the sorted answer).
    pub truncated: bool,
    /// Fraction of clique pairs examined, in `(0, 1]`. `1.0` means every
    /// pair was seen and `rules` equals the exact uncapped answer.
    pub coverage: f64,
}

/// Mines rules from cached Phase II artifacts under a wall-clock budget.
///
/// At least one clique pair is always examined, so the coverage fraction
/// is strictly positive even under a zero budget.
pub fn mine_budgeted(
    artifacts: &Phase2Artifacts,
    metric: ClusterDistance,
    query: &RuleQuery,
    budget: Duration,
) -> AnytimeOutcome {
    let m = metrics();
    m.anytime_queries.inc();
    let config = query.rule_config(metric, &artifacts.density_thresholds);
    let cliques = &artifacts.cliques;
    let len = cliques.len();
    let total = len * len;
    if total == 0 {
        m.anytime_coverage_permille.observe(1000);
        return AnytimeOutcome { rules: Vec::new(), truncated: false, coverage: 1.0 };
    }
    let consequents: Vec<Vec<Vec<usize>>> =
        cliques.iter().map(|q2| consequent_subsets(q2, config.max_consequent)).collect();

    let stride = coprime_stride(total);
    let start = Instant::now();
    let mut seen: BTreeSet<(Vec<usize>, Vec<usize>)> = BTreeSet::new();
    let mut rules: Vec<Dar> = Vec::new();
    let mut idx = 0usize;
    let mut processed = 0usize;
    for _ in 0..total {
        let (q2, q1) = (idx / len, idx % len);
        for dar in pair_candidates(&artifacts.graph, &cliques[q1], &consequents[q2], &config) {
            if seen.insert((dar.antecedent.clone(), dar.consequent.clone())) {
                rules.push(dar);
            }
        }
        processed += 1;
        idx = (idx + stride) % total;
        if processed < total && start.elapsed() >= budget {
            break;
        }
    }
    m.anytime_pairs.add(processed as u64);

    sort_rules(&mut rules);
    let mut truncated = processed < total;
    if query.max_rules != 0 && rules.len() > query.max_rules {
        rules.truncate(query.max_rules);
        truncated = true;
    }
    let coverage = processed as f64 / total as f64;
    m.anytime_coverage_permille.observe((coverage * 1000.0).round() as u64);
    AnytimeOutcome { rules, truncated, coverage }
}

/// A stride coprime with `total`, near the golden-ratio fraction of it, so
/// the walk `idx ← (idx + stride) mod total` visits every pair exactly
/// once with a well-spread prefix.
fn coprime_stride(total: usize) -> usize {
    if total <= 2 {
        return 1;
    }
    let mut stride = ((total as f64) * 0.618_033_988_749_894_9) as usize;
    stride = stride.max(1);
    while gcd(stride, total) != 1 {
        stride += 1;
    }
    stride
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_coprime_and_spread() {
        for total in [1usize, 2, 3, 4, 9, 16, 100, 1024, 3600] {
            let s = coprime_stride(total);
            assert_eq!(gcd(s, total), 1, "total={total} stride={s}");
            // The walk is a permutation of 0..total.
            let mut seen = vec![false; total];
            let mut idx = 0;
            for _ in 0..total {
                assert!(!seen[idx]);
                seen[idx] = true;
                idx = (idx + s) % total;
            }
        }
    }
}
