//! Global observability handles for the ranking layer (`dar_rank_*`).
//!
//! Handles are cached in a `OnceLock`; the whole family registers eagerly
//! on first use so every `dar_rank_*` series is visible in exposition (at
//! zero) before the first ranked query.

use dar_obs::{global, Counter, Histogram};
use std::sync::OnceLock;

/// The ranking metric family.
pub(crate) struct RankMetrics {
    /// `dar_rank_rank_ns`: wall-clock per ranking pass (evaluate + sort +
    /// prune + top-k).
    pub rank_ns: Histogram,
    /// `dar_rank_rules_in_total`: rules entering the ranking pipeline.
    pub rules_in: Counter,
    /// `dar_rank_rules_out_total`: rules surviving filter/prune/top-k.
    pub rules_out: Counter,
    /// `dar_rank_pruned_rules_total`: rules dropped as redundant.
    pub pruned_rules: Counter,
    /// `dar_rank_prune_clusters_total`: redundancy clusters that absorbed
    /// at least one duplicate rule.
    pub prune_clusters: Counter,
    /// `dar_rank_anytime_queries_total`: budgeted (sampled) mining passes.
    pub anytime_queries: Counter,
    /// `dar_rank_anytime_pairs_total`: clique pairs examined by the
    /// anytime sampler.
    pub anytime_pairs: Counter,
    /// `dar_rank_anytime_coverage_permille`: coverage fraction × 1000 per
    /// budgeted pass (1000 = the sampler saw every pair).
    pub anytime_coverage_permille: Histogram,
}

/// The cached handles.
pub(crate) fn metrics() -> &'static RankMetrics {
    static METRICS: OnceLock<RankMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = global();
        RankMetrics {
            rank_ns: r.histogram("dar_rank_rank_ns"),
            rules_in: r.counter("dar_rank_rules_in_total"),
            rules_out: r.counter("dar_rank_rules_out_total"),
            pruned_rules: r.counter("dar_rank_pruned_rules_total"),
            prune_clusters: r.counter("dar_rank_prune_clusters_total"),
            anytime_queries: r.counter("dar_rank_anytime_queries_total"),
            anytime_pairs: r.counter("dar_rank_anytime_pairs_total"),
            anytime_coverage_permille: r.histogram("dar_rank_anytime_coverage_permille"),
        }
    })
}
