//! Property tests for measure soundness.
//!
//! Two obligations: (1) every measure stays within its theoretical bounds
//! on arbitrary consistent statistics; (2) on exact counts derived from a
//! concrete relation via `mining::interest`'s classical support and
//! confidence, the measures satisfy their textbook identities.

use dar_rank::{evaluate, RuleStats, CONVICTION_CAP};
use mining::interest::{confidence, satisfying_rows, support, Predicate};
use mining::{Dar, Measure};

use dar_core::{RelationBuilder, Schema};
use proptest::prelude::*;

fn rule(joint: u64) -> Dar {
    Dar { antecedent: vec![0], consequent: vec![1], degree: 0.5, min_cluster_support: joint }
}

/// Bounds on arbitrary consistent statistics:
/// max(0, ant+cons−n) ≤ joint ≤ min(ant, cons) ≤ n.
#[test]
fn measures_stay_within_theoretical_bounds() {
    proptest!(|(
        n in 1u64..10_000,
        ant_frac in 0.0f64..1.0,
        cons_frac in 0.0f64..1.0,
        joint_frac in 0.0f64..1.0,
    )| {
        let ant = ((n as f64) * ant_frac) as u64;
        let cons = ((n as f64) * cons_frac) as u64;
        let lo = (ant + cons).saturating_sub(n);
        let hi = ant.min(cons);
        let joint = lo + (((hi - lo) as f64) * joint_frac) as u64;
        let stats = RuleStats { n, antecedent: ant, consequent: cons, joint };
        let r = rule(joint);

        // lift ≤ n/max(ant,cons) ≤ n, reached when ant = cons = joint.
        let lift = evaluate(Measure::Lift, &r, &stats);
        prop_assert!((0.0..=n as f64 + 1e-9).contains(&lift), "lift={}", lift);

        let conviction = evaluate(Measure::Conviction, &r, &stats);
        prop_assert!(
            (0.0..=CONVICTION_CAP).contains(&conviction),
            "conviction={}", conviction
        );

        // Piatetsky-Shapiro leverage lives in [−0.25, 0.25].
        let leverage = evaluate(Measure::Leverage, &r, &stats);
        prop_assert!(
            (-0.25 - 1e-9..=0.25 + 1e-9).contains(&leverage),
            "leverage={}", leverage
        );

        let jaccard = evaluate(Measure::Jaccard, &r, &stats);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&jaccard), "jaccard={}", jaccard);
    });
}

/// On exact counts from a real relation, the measures agree with the
/// classical support/confidence of `mining::interest`:
/// lift = conf / supp(Y), conviction = (1 − supp(Y)) / (1 − conf),
/// leverage = supp(XY) − supp(X)·supp(Y).
#[test]
fn measures_agree_with_classical_support_and_confidence() {
    proptest!(|(
        rows in prop::collection::vec((0u8..4, 0u8..4), 1..80),
        a_val in 0u8..4,
        b_val in 0u8..4,
    )| {
        let mut builder = RelationBuilder::new(Schema::interval_attrs(2));
        for (a, b) in &rows {
            builder.push_row(&[*a as f64, *b as f64]).unwrap();
        }
        let relation = builder.finish();
        let ant = [Predicate::Eq(0, a_val as f64)];
        let cons = [Predicate::Eq(1, b_val as f64)];

        let n = relation.len() as u64;
        let ant_count = satisfying_rows(&relation, &ant).len() as u64;
        let cons_count = satisfying_rows(&relation, &cons).len() as u64;
        let both: Vec<Predicate> = ant.iter().chain(cons.iter()).cloned().collect();
        let joint_count = satisfying_rows(&relation, &both).len() as u64;

        // Exact statistics: sides from exact extensions, exact joint via
        // `with_joint`.
        let stats = RuleStats { n, antecedent: ant_count, consequent: cons_count, joint: 0 }
            .with_joint(joint_count);
        let r = rule(joint_count);

        let supp_xy = support(&relation, &ant, &cons);
        let supp_y = support(&relation, &[], &cons);
        let conf = confidence(&relation, &ant, &cons);

        let leverage = evaluate(Measure::Leverage, &r, &stats);
        prop_assert!(
            (leverage - (supp_xy - (ant_count as f64 / n as f64) * supp_y)).abs() < 1e-12,
            "leverage disagrees with supp(XY) − supp(X)·supp(Y)"
        );

        match conf {
            None => {
                // Antecedent never satisfied: the measures report 0.
                prop_assert_eq!(evaluate(Measure::Lift, &r, &stats), 0.0);
            }
            Some(conf) => {
                if cons_count > 0 {
                    let lift = evaluate(Measure::Lift, &r, &stats);
                    prop_assert!(
                        (lift - conf / supp_y).abs() < 1e-9,
                        "lift disagrees with conf/supp(Y)"
                    );
                    let conviction = evaluate(Measure::Conviction, &r, &stats);
                    if conf < 1.0 {
                        prop_assert!(
                            (conviction - (1.0 - supp_y) / (1.0 - conf)).abs() < 1e-9,
                            "conviction disagrees with (1−supp(Y))/(1−conf)"
                        );
                    } else {
                        prop_assert_eq!(conviction, CONVICTION_CAP);
                    }
                }
            }
        }
    });
}
