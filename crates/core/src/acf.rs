//! Association Clustering Features (Section 6.1, Equation 7).
//!
//! An ACF extends the CF of a cluster `C_X` (kept on its *home* attribute set
//! `X`) with the moment pair `(Σ t_i[Y], Σ t_i[Y]²)` for **every other
//! attribute set** `Y` of the partitioning. With that, the *image* of the
//! cluster on any set — its centroid, diameter, and the inter-cluster
//! distances D1/D2 between images — can be computed from summaries alone.
//! This is the paper's ACF Representativity Theorem (Thm 6.1): the clustering
//! graph of Phase II never rescans the data.
//!
//! ACFs inherit CF additivity set-wise, so the BIRCH tree can merge and split
//! them exactly like CFs.

use crate::bbox::BoundingBox;
use crate::cf::Cf;
use crate::error::CoreError;
use crate::schema::{Partitioning, SetId};

/// The shape of the ACFs for one [`Partitioning`]: how many dimensions each
/// attribute set has. All ACFs in one mining run share a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcfLayout {
    dims: Vec<usize>,
}

impl AcfLayout {
    /// Derives the layout from a partitioning.
    pub fn from_partitioning(p: &Partitioning) -> Self {
        AcfLayout { dims: p.sets().iter().map(|s| s.dims()).collect() }
    }

    /// Builds a layout from explicit per-set dimensionalities.
    pub fn new(dims: Vec<usize>) -> Self {
        AcfLayout { dims }
    }

    /// Number of attribute sets.
    pub fn num_sets(&self) -> usize {
        self.dims.len()
    }

    /// Dimensionality of set `set`.
    pub fn dims_of(&self, set: SetId) -> usize {
        self.dims[set]
    }

    /// Total dimensions across all sets.
    pub fn total_dims(&self) -> usize {
        self.dims.iter().sum()
    }

    /// Approximate heap bytes one ACF of this layout occupies — used by the
    /// clustering engine's memory accounting.
    pub fn acf_heap_bytes(&self) -> usize {
        // Per set: one Cf = two Vec<f64> (ls, ss) + Vec headers, plus the
        // home bounding box. We charge 8 bytes per f64 plus 24 bytes per Vec
        // header (len/cap/ptr on 64-bit).
        let moment_bytes: usize = self.dims.iter().map(|d| 2 * 8 * d + 2 * 24).sum();
        let bbox_bytes = self.dims.iter().copied().max().unwrap_or(0) * 16 + 24;
        moment_bytes + bbox_bytes + std::mem::size_of::<Acf>()
    }
}

/// An association clustering feature: per-set CFs sharing one tuple count,
/// plus the smallest bounding box on the home set (used to describe clusters
/// to users, Section 7.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Acf {
    home: SetId,
    images: Vec<Cf>,
    bbox: BoundingBox,
}

impl Acf {
    /// An empty ACF clustered on `home`.
    pub fn empty(layout: &AcfLayout, home: SetId) -> Self {
        Acf {
            home,
            images: (0..layout.num_sets()).map(|s| Cf::empty(layout.dims_of(s))).collect(),
            bbox: BoundingBox::empty(layout.dims_of(home)),
        }
    }

    /// The ACF of a single tuple given its per-set projections.
    pub fn from_row(layout: &AcfLayout, home: SetId, projections: &[Vec<f64>]) -> Self {
        let mut acf = Acf::empty(layout, home);
        acf.add_row(projections);
        acf
    }

    /// Reassembles an ACF from its parts (the deserialization path).
    /// Every image must carry the same tuple count, and the bounding box
    /// must have the home set's dimensionality.
    pub fn from_parts(home: SetId, images: Vec<Cf>, bbox: BoundingBox) -> Result<Self, CoreError> {
        let Some(home_cf) = images.get(home) else {
            return Err(CoreError::LayoutMismatch(format!(
                "home set {home} outside the {} supplied images",
                images.len()
            )));
        };
        let n = home_cf.n();
        if let Some(bad) = images.iter().position(|cf| cf.n() != n) {
            return Err(CoreError::LayoutMismatch(format!(
                "image {bad} has n={} but home has n={n}",
                images[bad].n()
            )));
        }
        if bbox.dims() != home_cf.dims() {
            return Err(CoreError::LayoutMismatch(format!(
                "bbox has {} dims but the home set has {}",
                bbox.dims(),
                home_cf.dims()
            )));
        }
        Ok(Acf { home, images, bbox })
    }

    /// The home attribute set (the one this cluster is "defined on").
    pub fn home(&self) -> SetId {
        self.home
    }

    /// Number of tuples summarized (`|C_X|`).
    pub fn n(&self) -> u64 {
        self.images[self.home].n()
    }

    /// Whether no tuples have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.n() == 0
    }

    /// The CF of the cluster's image on `set` (`C[Y]` in the paper; for
    /// `set == home` this is the clustering CF itself).
    pub fn image(&self, set: SetId) -> &Cf {
        &self.images[set]
    }

    /// The clustering CF on the home set.
    pub fn home_cf(&self) -> &Cf {
        &self.images[self.home]
    }

    /// Smallest bounding box of the absorbed points on the home set.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Number of attribute sets in the layout.
    pub fn num_sets(&self) -> usize {
        self.images.len()
    }

    /// Absorbs one tuple, given its projection onto every set (indexed by
    /// [`SetId`]).
    pub fn add_row(&mut self, projections: &[Vec<f64>]) {
        debug_assert_eq!(projections.len(), self.images.len());
        for (cf, p) in self.images.iter_mut().zip(projections) {
            cf.add_point(p);
        }
        self.bbox.extend(&projections[self.home]);
    }

    /// ACF additivity (extension of the BIRCH Additivity Theorem): merges a
    /// disjoint cluster defined on the same home set.
    pub fn merge(&mut self, other: &Acf) -> Result<(), CoreError> {
        if self.home != other.home {
            return Err(CoreError::LayoutMismatch(format!(
                "cannot merge ACFs with different home sets ({} vs {})",
                self.home, other.home
            )));
        }
        if self.images.len() != other.images.len() {
            return Err(CoreError::LayoutMismatch(format!(
                "cannot merge ACFs over different partitionings ({} vs {} sets)",
                self.images.len(),
                other.images.len()
            )));
        }
        for (a, b) in self.images.iter_mut().zip(&other.images) {
            a.merge(b);
        }
        self.bbox.merge(&other.bbox);
        Ok(())
    }

    /// The inverse of [`merge`](Self::merge): removes a disjoint sub-cluster
    /// that was previously folded into this ACF, image by image (CF
    /// additivity runs both ways). The bounding box is left untouched — a
    /// bounding box cannot shrink from summaries alone, so subtraction is
    /// exact at the *moment* level (N, ΣY, ΣY², which is everything Phase II
    /// distances read) while the box stays a conservative cover.
    ///
    /// # Errors
    /// Rejects mismatched home sets or partitionings, and an `other` whose
    /// tuple count exceeds this cluster's (it cannot be a sub-cluster).
    pub fn unmerge(&mut self, other: &Acf) -> Result<(), CoreError> {
        if self.home != other.home {
            return Err(CoreError::LayoutMismatch(format!(
                "cannot unmerge ACFs with different home sets ({} vs {})",
                self.home, other.home
            )));
        }
        if self.images.len() != other.images.len() {
            return Err(CoreError::LayoutMismatch(format!(
                "cannot unmerge ACFs over different partitionings ({} vs {} sets)",
                self.images.len(),
                other.images.len()
            )));
        }
        if self.n() < other.n() {
            return Err(CoreError::LayoutMismatch(format!(
                "cannot unmerge {} tuples from a cluster of {}",
                other.n(),
                self.n()
            )));
        }
        for (a, b) in self.images.iter_mut().zip(&other.images) {
            a.unmerge(b);
        }
        Ok(())
    }

    /// Diameter (RMS average pairwise distance) of the home-set cluster —
    /// the density criterion `d(C_X[X]) ≤ d0^X` of Definition 4.2.
    pub fn diameter(&self) -> f64 {
        self.images[self.home].diameter()
    }

    /// Diameter of the cluster's image on an arbitrary set — used by the
    /// Phase II pruning heuristic ("image clusters with large diameters are
    /// unlikely to contribute edges", Section 6.2).
    pub fn diameter_on(&self, set: SetId) -> f64 {
        self.images[set].diameter()
    }

    /// Centroid of the image on `set` (Eq. 4 applied to `C[Y]`).
    pub fn centroid_on(&self, set: SetId) -> Result<Vec<f64>, CoreError> {
        self.images[set].centroid()
    }

    /// D1 (Eq. 5) between this cluster's image and `other`'s image on `set`.
    pub fn d1_on(&self, set: SetId, other: &Acf) -> Result<f64, CoreError> {
        self.images[set].d1(other.image(set))
    }

    /// D2 (Eq. 6, RMS form) between the two clusters' images on `set`.
    pub fn d2_on(&self, set: SetId, other: &Acf) -> Result<f64, CoreError> {
        self.images[set].d2(other.image(set))
    }

    /// D0 (centroid Euclidean) between the two clusters' images on `set`.
    pub fn d0_on(&self, set: SetId, other: &Acf) -> Result<f64, CoreError> {
        self.images[set].d0(other.image(set))
    }

    /// The home-set diameter the merged cluster would have — the threshold
    /// test used by the tree before absorbing a point or entry.
    pub fn merged_home_diameter_sq(&self, other: &Acf) -> f64 {
        self.images[self.home].merged_diameter_sq(other.home_cf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;
    use crate::schema::{AttrSet, Schema};

    fn layout2() -> AcfLayout {
        // Two sets: set 0 = {attr0} (1-D), set 1 = {attr1, attr2} (2-D).
        let schema = Schema::interval_attrs(3);
        let p = Partitioning::new(
            &schema,
            vec![
                AttrSet { attrs: vec![0], metric: Metric::Euclidean },
                AttrSet { attrs: vec![1, 2], metric: Metric::Euclidean },
            ],
        )
        .unwrap();
        AcfLayout::from_partitioning(&p)
    }

    fn proj(a: f64, b: f64, c: f64) -> Vec<Vec<f64>> {
        vec![vec![a], vec![b, c]]
    }

    #[test]
    fn layout_shape() {
        let l = layout2();
        assert_eq!(l.num_sets(), 2);
        assert_eq!(l.dims_of(0), 1);
        assert_eq!(l.dims_of(1), 2);
        assert_eq!(l.total_dims(), 3);
        assert!(l.acf_heap_bytes() > 0);
    }

    #[test]
    fn add_row_updates_all_images_and_bbox() {
        let l = layout2();
        let mut acf = Acf::empty(&l, 0);
        acf.add_row(&proj(1.0, 10.0, 100.0));
        acf.add_row(&proj(3.0, 20.0, 200.0));
        assert_eq!(acf.n(), 2);
        assert_eq!(acf.home(), 0);
        assert_eq!(acf.centroid_on(0).unwrap(), vec![2.0]);
        assert_eq!(acf.centroid_on(1).unwrap(), vec![15.0, 150.0]);
        assert_eq!(acf.bbox().interval(0).lo, 1.0);
        assert_eq!(acf.bbox().interval(0).hi, 3.0);
        // Home diameter of two points 1 and 3 is 2.
        assert!((acf.diameter() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_requires_same_home_and_layout() {
        let l = layout2();
        let a = Acf::from_row(&l, 0, &proj(1.0, 2.0, 3.0));
        let mut b = Acf::from_row(&l, 1, &proj(1.0, 2.0, 3.0));
        assert!(b.merge(&a).is_err());
        let other_layout = AcfLayout::new(vec![1]);
        let mut c = Acf::empty(&other_layout, 0);
        assert!(c.merge(&a).is_err());
    }

    #[test]
    fn merge_is_additive() {
        let l = layout2();
        let mut a = Acf::from_row(&l, 1, &proj(1.0, 0.0, 0.0));
        let b = Acf::from_row(&l, 1, &proj(3.0, 2.0, 2.0));
        a.merge(&b).unwrap();
        assert_eq!(a.n(), 2);
        assert_eq!(a.centroid_on(0).unwrap(), vec![2.0]);
        assert_eq!(a.centroid_on(1).unwrap(), vec![1.0, 1.0]);
        // Home bbox covers both points on set 1.
        assert_eq!(a.bbox().interval(0).hi, 2.0);
        assert_eq!(a.bbox().interval(1).hi, 2.0);
    }

    #[test]
    fn unmerge_inverts_merge_at_the_moment_level() {
        let l = layout2();
        let mut a = Acf::from_row(&l, 0, &proj(1.0, 10.0, 100.0));
        a.add_row(&proj(3.0, 20.0, 200.0));
        let before = a.clone();
        let b = Acf::from_row(&l, 0, &proj(7.0, 30.0, 300.0));
        a.merge(&b).unwrap();
        a.unmerge(&b).unwrap();
        assert_eq!(a.n(), before.n());
        for set in 0..2 {
            assert_eq!(a.image(set).linear_sum(), before.image(set).linear_sum());
            assert_eq!(a.image(set).square_sum(), before.image(set).square_sum());
        }
    }

    #[test]
    fn unmerge_rejects_mismatches_and_oversized_subtrahends() {
        let l = layout2();
        let mut a = Acf::from_row(&l, 0, &proj(1.0, 2.0, 3.0));
        let other_home = Acf::from_row(&l, 1, &proj(1.0, 2.0, 3.0));
        assert!(a.unmerge(&other_home).is_err());
        let other_layout = AcfLayout::new(vec![1]);
        assert!(a.unmerge(&Acf::empty(&other_layout, 0)).is_err());
        let mut big = Acf::from_row(&l, 0, &proj(1.0, 2.0, 3.0));
        big.add_row(&proj(2.0, 3.0, 4.0));
        assert!(a.unmerge(&big).is_err(), "subtrahend larger than the cluster");
    }

    #[test]
    fn image_distances_match_cf_distances() {
        let l = layout2();
        let a = Acf::from_row(&l, 0, &proj(0.0, 0.0, 0.0));
        let b = Acf::from_row(&l, 0, &proj(5.0, 3.0, 4.0));
        assert!((a.d0_on(1, &b).unwrap() - 5.0).abs() < 1e-12);
        assert!((a.d1_on(1, &b).unwrap() - 7.0).abs() < 1e-12);
        assert!((a.d2_on(0, &b).unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merged_home_diameter_predicts_merge() {
        let l = layout2();
        let mut a = Acf::from_row(&l, 0, &proj(0.0, 0.0, 0.0));
        let b = Acf::from_row(&l, 0, &proj(4.0, 0.0, 0.0));
        let predicted = a.merged_home_diameter_sq(&b);
        a.merge(&b).unwrap();
        assert!((predicted - a.home_cf().diameter_sq()).abs() < 1e-12);
    }
}
