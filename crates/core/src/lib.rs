//! # dar-core
//!
//! Core data model and statistical summaries for mining **distance-based
//! association rules** (DARs) over interval data, after Miller & Yang,
//! *Association Rules over Interval Data*, SIGMOD 1997.
//!
//! This crate provides the substrate shared by the clustering engine
//! ([`birch`](https://docs.rs/birch)), the baseline miners (`classic`) and the
//! two-phase DAR miner (`mining`):
//!
//! * a typed, column-major [`Relation`](relation::Relation) over a
//!   [`Schema`](schema::Schema) of interval / ordinal / nominal attributes;
//! * user-defined [`Partitioning`](schema::Partitioning)s of the attributes
//!   into disjoint sets, each with its own [`Metric`](distance::Metric)
//!   (the paper's `X_i` sets, Section 4.3);
//! * **Clustering Features** ([`Cf`](cf::Cf), Equation 3) with the BIRCH
//!   additivity property and the derived statistics the paper uses: centroid
//!   (Eq. 4), diameter (Eq. 2), centroid-Manhattan distance D1 (Eq. 5) and the
//!   moment-computable average inter-cluster distance D2 (Eq. 6);
//! * **Association Clustering Features** ([`Acf`](acf::Acf), Equation 7):
//!   a CF on the clustering attributes extended with `(ΣY, ΣY²)` for every
//!   other attribute set, so that every distance in Section 5 of the paper can
//!   be evaluated on cluster *images* without rescanning the data
//!   (Theorem 6.1, the "ACF Representativity Theorem");
//! * exact (tuple-level) counterparts of those statistics in [`exact`], used
//!   to validate the summary algebra and to state the paper's Theorems 5.1
//!   and 5.2 precisely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acf;
pub mod bbox;
pub mod cf;
pub mod cluster;
pub mod distance;
pub mod error;
pub mod exact;
pub mod interval;
pub mod relation;
pub mod schema;
pub mod standardize;
pub mod stats;

pub use acf::{Acf, AcfLayout};
pub use bbox::BoundingBox;
pub use cf::Cf;
pub use cluster::{ClusterId, ClusterSummary};
pub use distance::Metric;
pub use error::CoreError;
pub use interval::Interval;
pub use relation::{Relation, RelationBuilder};
pub use schema::{AttrId, AttrSet, Attribute, AttributeKind, Partitioning, Schema, SetId};
pub use standardize::{standardize_columns, FittedStandardization, Standardization};
pub use stats::{
    quantile, suggest_initial_thresholds, suggest_initial_thresholds_pooled, ColumnStats,
};
