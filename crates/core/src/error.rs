//! Error types shared across the workspace.

use std::fmt;

/// Errors produced by the core data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A row had a different number of values than the schema has attributes.
    ArityMismatch {
        /// Number of attributes the schema declares.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// An attribute id was out of range for the schema.
    UnknownAttribute(usize),
    /// A partitioning referenced the same attribute in two sets, or skipped
    /// validation in some other way.
    InvalidPartitioning(String),
    /// Two summaries with incompatible layouts (different partitionings or
    /// dimensionalities) were combined.
    LayoutMismatch(String),
    /// An operation required a non-empty cluster but got an empty one.
    EmptyCluster,
    /// A value failed domain validation (NaN or infinite).
    NonFiniteValue {
        /// Attribute the offending value belongs to.
        attr: usize,
        /// Row index of the offending value.
        row: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch { expected, got } => {
                write!(f, "row arity mismatch: schema has {expected} attributes, row has {got}")
            }
            CoreError::UnknownAttribute(a) => write!(f, "unknown attribute id {a}"),
            CoreError::InvalidPartitioning(msg) => write!(f, "invalid partitioning: {msg}"),
            CoreError::LayoutMismatch(msg) => write!(f, "summary layout mismatch: {msg}"),
            CoreError::EmptyCluster => write!(f, "operation requires a non-empty cluster"),
            CoreError::NonFiniteValue { attr, row } => {
                write!(f, "non-finite value at row {row}, attribute {attr}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = CoreError::ArityMismatch { expected: 3, got: 2 };
        assert_eq!(e.to_string(), "row arity mismatch: schema has 3 attributes, row has 2");
        let e = CoreError::UnknownAttribute(7);
        assert!(e.to_string().contains('7'));
        let e = CoreError::NonFiniteValue { attr: 1, row: 9 };
        assert!(e.to_string().contains("row 9"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::EmptyCluster);
        assert!(e.to_string().contains("non-empty"));
    }
}
