//! Axis-aligned bounding boxes used to *describe* clusters.
//!
//! Section 7.2: "we have chosen to describe a cluster by its smallest
//! bounding box" — centroids alone were found less meaningful to users.

use crate::interval::Interval;
use std::fmt;

/// The smallest axis-aligned box containing a set of points, one
/// [`Interval`] per dimension of the owning attribute set.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingBox {
    intervals: Vec<Interval>,
}

impl BoundingBox {
    /// An "empty" box of the given dimensionality, ready to absorb points.
    /// Until the first [`extend`](Self::extend) it contains nothing.
    pub fn empty(dims: usize) -> Self {
        BoundingBox { intervals: vec![Interval { lo: f64::INFINITY, hi: f64::NEG_INFINITY }; dims] }
    }

    /// A box built from explicit per-dimension intervals.
    pub fn from_intervals(intervals: Vec<Interval>) -> Self {
        BoundingBox { intervals }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.intervals.len()
    }

    /// Whether any point has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.intervals.first().is_none_or(|i| i.lo > i.hi)
    }

    /// Grows the box to include `point`.
    pub fn extend(&mut self, point: &[f64]) {
        debug_assert_eq!(point.len(), self.intervals.len());
        for (iv, &v) in self.intervals.iter_mut().zip(point) {
            iv.extend(v);
        }
    }

    /// Grows the box to include all of `other`.
    pub fn merge(&mut self, other: &BoundingBox) {
        debug_assert_eq!(self.dims(), other.dims());
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.intervals.clone_from(&other.intervals);
            return;
        }
        for (a, b) in self.intervals.iter_mut().zip(&other.intervals) {
            *a = a.hull(b);
        }
    }

    /// Whether `point` lies inside the box (closed on all sides).
    pub fn contains(&self, point: &[f64]) -> bool {
        !self.is_empty() && self.intervals.iter().zip(point).all(|(iv, &v)| iv.contains(v))
    }

    /// Per-dimension intervals.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The interval on dimension `d`.
    pub fn interval(&self, d: usize) -> Interval {
        self.intervals[d]
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_contains_nothing() {
        let b = BoundingBox::empty(2);
        assert!(b.is_empty());
        assert!(!b.contains(&[0.0, 0.0]));
    }

    #[test]
    fn extend_and_contains() {
        let mut b = BoundingBox::empty(2);
        b.extend(&[1.0, 5.0]);
        b.extend(&[3.0, 2.0]);
        assert!(!b.is_empty());
        assert!(b.contains(&[2.0, 3.0]));
        assert!(b.contains(&[1.0, 2.0]));
        assert!(!b.contains(&[0.0, 3.0]));
        assert_eq!(b.interval(0), Interval::new(1.0, 3.0));
        assert_eq!(b.interval(1), Interval::new(2.0, 5.0));
    }

    #[test]
    fn merge_handles_empties() {
        let mut a = BoundingBox::empty(1);
        let mut b = BoundingBox::empty(1);
        b.extend(&[2.0]);
        a.merge(&b);
        assert_eq!(a.interval(0), Interval::point(2.0));
        let c = BoundingBox::empty(1);
        a.merge(&c); // merging an empty box is a no-op
        assert_eq!(a.interval(0), Interval::point(2.0));
    }

    #[test]
    fn merge_takes_hull() {
        let mut a = BoundingBox::empty(2);
        a.extend(&[0.0, 0.0]);
        let mut b = BoundingBox::empty(2);
        b.extend(&[2.0, -1.0]);
        a.merge(&b);
        assert_eq!(a.interval(0), Interval::new(0.0, 2.0));
        assert_eq!(a.interval(1), Interval::new(-1.0, 0.0));
    }

    #[test]
    fn display() {
        let mut b = BoundingBox::empty(2);
        b.extend(&[1.0, 2.0]);
        b.extend(&[3.0, 2.0]);
        assert_eq!(b.to_string(), "[1, 3]×[2]");
        assert_eq!(BoundingBox::empty(1).to_string(), "∅");
    }
}
