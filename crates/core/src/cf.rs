//! Clustering Features (Equation 3) and the cluster statistics derived from
//! them.
//!
//! A CF summarizes a set of tuples projected onto one attribute set:
//! `CF(C_X) = (N, Σ t_i[X], Σ t_i[X]²)` where the square sum is kept
//! per-dimension. The *Additivity Theorem* (Zhang et al., BIRCH) makes CFs
//! closed under union — [`Cf::merge`] — which is what lets the tree cluster
//! incrementally and Phase II run entirely on summaries.
//!
//! From the moments we derive, without touching the data again:
//!
//! * the **centroid** (paper Eq. 4);
//! * the **diameter** — average pairwise distance (paper Eq. 2), in its
//!   moment-computable root-mean-square form;
//! * the **radius** — RMS distance to the centroid;
//! * inter-cluster distances **D0** (centroid Euclidean), **D1** (centroid
//!   Manhattan, paper Eq. 5), **D2** (average inter-cluster distance, paper
//!   Eq. 6, RMS form), **D3** (diameter of the union) and **D4** (variance
//!   increase), following BIRCH's numbering.
//!
//! ## RMS vs. arithmetic averages
//!
//! Equations 2 and 6 of the paper average *distances*; a `(N, LS, SS)` summary
//! can only produce the average of *squared* Euclidean distances, i.e. the
//! RMS average. This is the standard BIRCH reading (the paper adopts BIRCH's
//! metrics by reference, and Theorem 6.1 asserts all of them are computable
//! from ACFs — which is only true of the RMS forms). The exact arithmetic
//! averages over materialized tuple sets live in [`crate::exact`] and are used
//! in tests and in the statements of Theorems 5.1/5.2.

use crate::error::CoreError;

/// A clustering feature: tuple count plus per-dimension linear and square
/// sums.
///
/// ```
/// use dar_core::Cf;
/// let mut a = Cf::from_point(&[0.0, 0.0]);
/// a.add_point(&[2.0, 0.0]);
/// let b = Cf::from_point(&[2.0, 4.0]);
/// // Additivity: merging summaries equals summarizing the union.
/// let mut merged = a.clone();
/// merged.merge(&b);
/// assert_eq!(merged.n(), 3);
/// assert_eq!(merged.centroid().unwrap(), vec![4.0 / 3.0, 4.0 / 3.0]);
/// // Distances come straight from the moments (Theorem 6.1's substrate).
/// assert!((a.d0(&b).unwrap() - (1.0f64 + 16.0).sqrt()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cf {
    n: u64,
    ls: Vec<f64>,
    ss: Vec<f64>,
}

impl Cf {
    /// An empty CF of the given dimensionality.
    pub fn empty(dims: usize) -> Self {
        Cf { n: 0, ls: vec![0.0; dims], ss: vec![0.0; dims] }
    }

    /// The CF of a single point.
    pub fn from_point(p: &[f64]) -> Self {
        Cf { n: 1, ls: p.to_vec(), ss: p.iter().map(|v| v * v).collect() }
    }

    /// Builds a CF from raw moments. `ls` and `ss` must have equal lengths.
    pub fn from_moments(n: u64, ls: Vec<f64>, ss: Vec<f64>) -> Result<Self, CoreError> {
        if ls.len() != ss.len() {
            return Err(CoreError::LayoutMismatch(format!(
                "LS has {} dims but SS has {}",
                ls.len(),
                ss.len()
            )));
        }
        Ok(Cf { n, ls, ss })
    }

    /// Number of tuples summarized.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Whether the CF summarizes no tuples.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality of the summarized projection.
    pub fn dims(&self) -> usize {
        self.ls.len()
    }

    /// Per-dimension linear sum `Σ t_i`.
    pub fn linear_sum(&self) -> &[f64] {
        &self.ls
    }

    /// Per-dimension square sum `Σ t_i²`.
    pub fn square_sum(&self) -> &[f64] {
        &self.ss
    }

    /// Total square sum `Σ ‖t_i‖²`.
    pub fn square_sum_total(&self) -> f64 {
        self.ss.iter().sum()
    }

    /// Absorbs a single point (additivity with a singleton CF, minus the
    /// allocation).
    pub fn add_point(&mut self, p: &[f64]) {
        debug_assert_eq!(p.len(), self.dims());
        self.n += 1;
        for ((l, s), &v) in self.ls.iter_mut().zip(self.ss.iter_mut()).zip(p) {
            *l += v;
            *s += v * v;
        }
    }

    /// Additivity Theorem: `CF(C1 ∪ C2) = CF(C1) + CF(C2)` for disjoint
    /// clusters.
    pub fn merge(&mut self, other: &Cf) {
        debug_assert_eq!(self.dims(), other.dims());
        self.n += other.n;
        for (a, b) in self.ls.iter_mut().zip(&other.ls) {
            *a += b;
        }
        for (a, b) in self.ss.iter_mut().zip(&other.ss) {
            *a += b;
        }
    }

    /// Subtracts `other` from `self` (the inverse of [`merge`](Self::merge)),
    /// used when relocating a subtree's summary during rebuilds.
    pub fn unmerge(&mut self, other: &Cf) {
        debug_assert_eq!(self.dims(), other.dims());
        debug_assert!(self.n >= other.n);
        self.n -= other.n;
        for (a, b) in self.ls.iter_mut().zip(&other.ls) {
            *a -= b;
        }
        for (a, b) in self.ss.iter_mut().zip(&other.ss) {
            *a -= b;
        }
    }

    /// Writes the centroid (Eq. 4) into `out`.
    ///
    /// Returns [`CoreError::EmptyCluster`] for an empty CF.
    pub fn centroid_into(&self, out: &mut Vec<f64>) -> Result<(), CoreError> {
        if self.n == 0 {
            return Err(CoreError::EmptyCluster);
        }
        out.clear();
        let inv = 1.0 / self.n as f64;
        out.extend(self.ls.iter().map(|l| l * inv));
        Ok(())
    }

    /// The centroid (Eq. 4) as a fresh vector.
    pub fn centroid(&self) -> Result<Vec<f64>, CoreError> {
        let mut out = Vec::with_capacity(self.dims());
        self.centroid_into(&mut out)?;
        Ok(out)
    }

    /// Squared diameter: average pairwise squared Euclidean distance,
    /// `Σ_{i,j}‖t_i − t_j‖² / (N(N−1)) = (2N·SS − 2‖LS‖²) / (N(N−1))`.
    ///
    /// A singleton (or empty) cluster has diameter 0 by convention.
    pub fn diameter_sq(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let n = self.n as f64;
        let ss = self.square_sum_total();
        let ls2: f64 = self.ls.iter().map(|l| l * l).sum();
        // Floating-point cancellation can push the value a hair below zero.
        ((2.0 * n * ss - 2.0 * ls2) / (n * (n - 1.0))).max(0.0)
    }

    /// Diameter (RMS form of paper Eq. 2).
    pub fn diameter(&self) -> f64 {
        self.diameter_sq().sqrt()
    }

    /// Squared radius: average squared distance from the centroid,
    /// `SS/N − ‖LS/N‖²`.
    pub fn radius_sq(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let ss = self.square_sum_total();
        let ls2: f64 = self.ls.iter().map(|l| l * l).sum();
        (ss / n - ls2 / (n * n)).max(0.0)
    }

    /// Radius (RMS distance to centroid).
    pub fn radius(&self) -> f64 {
        self.radius_sq().sqrt()
    }

    /// The squared diameter the union of `self` and `other` *would* have —
    /// the merge test used during tree insertion, without materializing the
    /// merged CF.
    pub fn merged_diameter_sq(&self, other: &Cf) -> f64 {
        let n = (self.n + other.n) as f64;
        if n < 2.0 {
            return 0.0;
        }
        let ss = self.square_sum_total() + other.square_sum_total();
        let ls2: f64 = self
            .ls
            .iter()
            .zip(&other.ls)
            .map(|(a, b)| {
                let s = a + b;
                s * s
            })
            .sum();
        ((2.0 * n * ss - 2.0 * ls2) / (n * (n - 1.0))).max(0.0)
    }

    /// The squared diameter the cluster would have after absorbing a single
    /// point — the leaf threshold test of the CF-tree, allocation-free.
    pub fn merged_diameter_sq_with_point(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(p.len(), self.dims());
        let n = (self.n + 1) as f64;
        if n < 2.0 {
            return 0.0;
        }
        let ss = self.square_sum_total() + p.iter().map(|v| v * v).sum::<f64>();
        let ls2: f64 = self
            .ls
            .iter()
            .zip(p)
            .map(|(a, b)| {
                let s = a + b;
                s * s
            })
            .sum();
        ((2.0 * n * ss - 2.0 * ls2) / (n * (n - 1.0))).max(0.0)
    }

    /// Squared Euclidean distance from this cluster's centroid to a point —
    /// the descent criterion of the CF-tree, allocation-free.
    pub fn centroid_distance_sq_to_point(&self, p: &[f64]) -> Result<f64, CoreError> {
        if self.n == 0 {
            return Err(CoreError::EmptyCluster);
        }
        let n = self.n as f64;
        Ok(self
            .ls
            .iter()
            .zip(p)
            .map(|(l, v)| {
                let d = l / n - v;
                d * d
            })
            .sum())
    }

    /// D0: Euclidean distance between centroids.
    pub fn d0(&self, other: &Cf) -> Result<f64, CoreError> {
        if self.n == 0 || other.n == 0 {
            return Err(CoreError::EmptyCluster);
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        Ok(self
            .ls
            .iter()
            .zip(&other.ls)
            .map(|(a, b)| {
                let d = a / na - b / nb;
                d * d
            })
            .sum::<f64>()
            .sqrt())
    }

    /// D1 (paper Eq. 5): Manhattan distance between centroids.
    pub fn d1(&self, other: &Cf) -> Result<f64, CoreError> {
        if self.n == 0 || other.n == 0 {
            return Err(CoreError::EmptyCluster);
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        Ok(self.ls.iter().zip(&other.ls).map(|(a, b)| (a / na - b / nb).abs()).sum())
    }

    /// Squared D2 (paper Eq. 6, RMS form): average inter-cluster squared
    /// Euclidean distance
    /// `(N2·SS1 + N1·SS2 − 2·LS1·LS2) / (N1·N2)`.
    pub fn d2_sq(&self, other: &Cf) -> Result<f64, CoreError> {
        if self.n == 0 || other.n == 0 {
            return Err(CoreError::EmptyCluster);
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let dot: f64 = self.ls.iter().zip(&other.ls).map(|(a, b)| a * b).sum();
        Ok(((nb * self.square_sum_total() + na * other.square_sum_total() - 2.0 * dot) / (na * nb))
            .max(0.0))
    }

    /// D2: RMS average inter-cluster distance.
    pub fn d2(&self, other: &Cf) -> Result<f64, CoreError> {
        Ok(self.d2_sq(other)?.sqrt())
    }

    /// D3: diameter of the union of the two clusters.
    pub fn d3(&self, other: &Cf) -> f64 {
        self.merged_diameter_sq(other).sqrt()
    }

    /// D4: variance increase of merging —
    /// `Σ‖t − c_merged‖² − Σ‖t − c_1‖² − Σ‖t − c_2‖²`, all from moments.
    pub fn d4(&self, other: &Cf) -> Result<f64, CoreError> {
        if self.n == 0 || other.n == 0 {
            return Err(CoreError::EmptyCluster);
        }
        let sse = |cf: &Cf| -> f64 {
            let n = cf.n as f64;
            let ls2: f64 = cf.ls.iter().map(|l| l * l).sum();
            cf.square_sum_total() - ls2 / n
        };
        let mut merged = self.clone();
        merged.merge(other);
        Ok((sse(&merged) - sse(self) - sse(other)).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn singleton_statistics() {
        let cf = Cf::from_point(&[3.0, 4.0]);
        assert_eq!(cf.n(), 1);
        assert_eq!(cf.dims(), 2);
        assert_eq!(cf.centroid().unwrap(), vec![3.0, 4.0]);
        assert_eq!(cf.diameter(), 0.0);
        assert_eq!(cf.radius(), 0.0);
    }

    #[test]
    fn empty_cluster_errors() {
        let cf = Cf::empty(2);
        assert!(cf.is_empty());
        assert_eq!(cf.centroid(), Err(CoreError::EmptyCluster));
        assert_eq!(cf.d0(&Cf::from_point(&[0.0, 0.0])), Err(CoreError::EmptyCluster));
        assert_eq!(cf.diameter(), 0.0);
        assert_eq!(cf.radius(), 0.0);
    }

    #[test]
    fn from_moments_validates() {
        assert!(Cf::from_moments(2, vec![1.0, 2.0], vec![1.0]).is_err());
        let cf = Cf::from_moments(1, vec![2.0], vec![4.0]).unwrap();
        assert_eq!(cf.centroid().unwrap(), vec![2.0]);
    }

    #[test]
    fn two_point_diameter_is_their_distance() {
        // Points 0 and 6 on a line: diameter must be 6, radius 3.
        let mut cf = Cf::from_point(&[0.0]);
        cf.add_point(&[6.0]);
        assert!(close(cf.diameter(), 6.0));
        assert!(close(cf.radius(), 3.0));
        assert_eq!(cf.centroid().unwrap(), vec![3.0]);
    }

    #[test]
    fn additivity() {
        let pts_a = [[1.0, 2.0], [3.0, 1.0]];
        let pts_b = [[5.0, 5.0], [6.0, 4.0], [4.0, 6.0]];
        let mut a = Cf::empty(2);
        for p in &pts_a {
            a.add_point(p);
        }
        let mut b = Cf::empty(2);
        for p in &pts_b {
            b.add_point(p);
        }
        let mut all = Cf::empty(2);
        for p in pts_a.iter().chain(&pts_b) {
            all.add_point(p);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.n(), all.n());
        assert!(merged.linear_sum().iter().zip(all.linear_sum()).all(|(x, y)| close(*x, *y)));
        assert!(merged.square_sum().iter().zip(all.square_sum()).all(|(x, y)| close(*x, *y)));
        // unmerge restores the original.
        merged.unmerge(&b);
        assert_eq!(merged.n(), a.n());
        assert!(merged.linear_sum().iter().zip(a.linear_sum()).all(|(x, y)| close(*x, *y)));
    }

    #[test]
    fn merged_diameter_matches_materialized_merge() {
        let mut a = Cf::from_point(&[0.0, 0.0]);
        a.add_point(&[1.0, 1.0]);
        let mut b = Cf::from_point(&[5.0, 5.0]);
        b.add_point(&[6.0, 4.0]);
        let predicted = a.merged_diameter_sq(&b);
        let mut m = a.clone();
        m.merge(&b);
        assert!(close(predicted, m.diameter_sq()));
        assert!(close(a.d3(&b), m.diameter()));
    }

    #[test]
    fn centroid_distances() {
        let mut a = Cf::from_point(&[0.0, 0.0]);
        a.add_point(&[2.0, 0.0]); // centroid (1, 0)
        let b = Cf::from_point(&[4.0, 4.0]); // centroid (4, 4)
        assert!(close(a.d0(&b).unwrap(), 5.0));
        assert!(close(a.d1(&b).unwrap(), 7.0));
    }

    #[test]
    fn d2_matches_brute_force_rms() {
        let pa = [[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]];
        let pb = [[3.0, 3.0], [4.0, 2.0]];
        let mut a = Cf::empty(2);
        for p in &pa {
            a.add_point(p);
        }
        let mut b = Cf::empty(2);
        for p in &pb {
            b.add_point(p);
        }
        let mut acc = 0.0;
        for x in &pa {
            for y in &pb {
                acc += (x[0] - y[0]).powi(2) + (x[1] - y[1]).powi(2);
            }
        }
        let brute = acc / (pa.len() * pb.len()) as f64;
        assert!(close(a.d2_sq(&b).unwrap(), brute));
        assert!(close(a.d2(&b).unwrap(), brute.sqrt()));
    }

    #[test]
    fn d4_variance_increase_nonnegative_and_zero_for_identical_centroids() {
        let mut a = Cf::from_point(&[0.0]);
        a.add_point(&[2.0]);
        let mut b = Cf::from_point(&[0.0]);
        b.add_point(&[2.0]);
        // Same centroid & spread: merging adds no between-cluster variance.
        assert!(close(a.d4(&b).unwrap(), 0.0));
        let c = Cf::from_point(&[10.0]);
        assert!(a.d4(&c).unwrap() > 0.0);
    }

    #[test]
    fn point_variants_match_singleton_cf_variants() {
        let mut a = Cf::from_point(&[1.0, 2.0]);
        a.add_point(&[3.0, 0.0]);
        let p = [10.0, -4.0];
        let as_cf = Cf::from_point(&p);
        assert!(close(a.merged_diameter_sq_with_point(&p), a.merged_diameter_sq(&as_cf)));
        assert!(close(a.centroid_distance_sq_to_point(&p).unwrap(), a.d0(&as_cf).unwrap().powi(2)));
        assert!(Cf::empty(2).centroid_distance_sq_to_point(&p).is_err());
    }

    #[test]
    fn diameter_sq_never_negative_under_cancellation() {
        // Large offsets provoke catastrophic cancellation; the clamp holds.
        let mut cf = Cf::empty(1);
        for _ in 0..1000 {
            cf.add_point(&[1e9]);
        }
        assert!(cf.diameter_sq() >= 0.0);
        assert!(cf.radius_sq() >= 0.0);
    }
}
