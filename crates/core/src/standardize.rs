//! Attribute standardization for multi-attribute distance metrics.
//!
//! Section 5.2 of the paper: "To cluster over multiple attributes, the
//! scales must be standardized so that distances in the different
//! dimensions are comparable. ... The use of inappropriate standardization
//! techniques may completely distort or destroy the clustering properties
//! of the data." The paper therefore clusters multi-attribute sets only
//! when the user asserts a meaningful joint metric; this module provides
//! the standard transformations for exactly those cases (e.g. two Salary
//! attributes from different years, or latitude/longitude in comparable
//! units), each documented with its failure modes.

use crate::error::CoreError;
use crate::relation::Relation;
use crate::schema::AttrId;
use crate::stats::ColumnStats;

/// A standardization method for one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Standardization {
    /// `(v − mean) / std_dev`. Preserves shape; sensitive to outliers
    /// through both moments.
    ZScore,
    /// `(v − min) / (max − min)` onto `[0, 1]`. A single extreme value
    /// compresses the rest of the range.
    MinMax,
    /// Replace each value by its average rank in `[0, 1]`. Destroys the
    /// interval property (distances become rank gaps) — appropriate only
    /// for ordinal data, and listed here with that caveat.
    Rank,
}

/// The fitted parameters of a standardization, so the same transform can be
/// applied to new data or inverted for presentation.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedStandardization {
    method: Standardization,
    /// For ZScore: (mean, sd). For MinMax: (min, range). Unused for Rank.
    params: (f64, f64),
    /// For Rank: the sorted reference values.
    reference: Vec<f64>,
}

impl FittedStandardization {
    /// Fits the transform to one column of a relation.
    pub fn fit(
        relation: &Relation,
        attr: AttrId,
        method: Standardization,
    ) -> Result<Self, CoreError> {
        let values = relation.column(attr);
        let stats = ColumnStats::of(values)?;
        let params = match method {
            Standardization::ZScore => {
                // A constant column standardizes to 0 (sd floor of 1).
                (stats.mean, if stats.std_dev > 0.0 { stats.std_dev } else { 1.0 })
            }
            Standardization::MinMax => {
                (stats.min, if stats.range() > 0.0 { stats.range() } else { 1.0 })
            }
            Standardization::Rank => (0.0, 1.0),
        };
        let reference = if method == Standardization::Rank {
            let mut sorted = values.to_vec();
            sorted.sort_by(f64::total_cmp);
            sorted
        } else {
            Vec::new()
        };
        Ok(FittedStandardization { method, params, reference })
    }

    /// Applies the fitted transform to a single value.
    pub fn apply(&self, v: f64) -> f64 {
        match self.method {
            Standardization::ZScore => (v - self.params.0) / self.params.1,
            Standardization::MinMax => (v - self.params.0) / self.params.1,
            Standardization::Rank => {
                if self.reference.is_empty() {
                    return 0.0;
                }
                // Average rank of v among the reference values, in [0, 1].
                let below = self.reference.partition_point(|&x| x < v);
                let not_above = self.reference.partition_point(|&x| x <= v);
                let avg_rank = (below + not_above) as f64 / 2.0;
                avg_rank / self.reference.len() as f64
            }
        }
    }

    /// Inverts the transform (ZScore/MinMax only; Rank is not invertible).
    pub fn invert(&self, v: f64) -> Option<f64> {
        match self.method {
            Standardization::ZScore | Standardization::MinMax => {
                Some(v * self.params.1 + self.params.0)
            }
            Standardization::Rank => None,
        }
    }
}

/// Standardizes the given attributes of a relation in place of a copy:
/// returns a new relation where each listed attribute has been transformed
/// with its own fitted parameters; other attributes pass through.
pub fn standardize_columns(
    relation: &Relation,
    attrs: &[(AttrId, Standardization)],
) -> Result<Relation, CoreError> {
    let mut columns: Vec<Vec<f64>> =
        (0..relation.schema().arity()).map(|a| relation.column(a).to_vec()).collect();
    for &(attr, method) in attrs {
        if attr >= columns.len() {
            return Err(CoreError::UnknownAttribute(attr));
        }
        let fitted = FittedStandardization::fit(relation, attr, method)?;
        for v in &mut columns[attr] {
            *v = fitted.apply(*v);
        }
    }
    Relation::from_columns(relation.schema().clone(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationBuilder;
    use crate::schema::Schema;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    fn rel(values: &[f64]) -> Relation {
        let mut b = RelationBuilder::new(Schema::interval_attrs(1));
        for &v in values {
            b.push_row(&[v]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn zscore_has_zero_mean_unit_sd() {
        let r = rel(&[2.0, 4.0, 6.0, 8.0]);
        let f = FittedStandardization::fit(&r, 0, Standardization::ZScore).unwrap();
        let z: Vec<f64> = r.column(0).iter().map(|&v| f.apply(v)).collect();
        let mean = z.iter().sum::<f64>() / z.len() as f64;
        let var = z.iter().map(|v| v * v).sum::<f64>() / z.len() as f64;
        assert!(close(mean, 0.0));
        assert!(close(var, 1.0));
        // Round trip.
        assert!(close(f.invert(f.apply(6.0)).unwrap(), 6.0));
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let r = rel(&[10.0, 20.0, 30.0]);
        let f = FittedStandardization::fit(&r, 0, Standardization::MinMax).unwrap();
        assert!(close(f.apply(10.0), 0.0));
        assert!(close(f.apply(30.0), 1.0));
        assert!(close(f.apply(20.0), 0.5));
        assert!(close(f.invert(0.5).unwrap(), 20.0));
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let r = rel(&[5.0, 5.0]);
        let z = FittedStandardization::fit(&r, 0, Standardization::ZScore).unwrap();
        assert!(close(z.apply(5.0), 0.0));
        let m = FittedStandardization::fit(&r, 0, Standardization::MinMax).unwrap();
        assert!(close(m.apply(5.0), 0.0));
    }

    #[test]
    fn rank_is_order_preserving_and_tie_averaged() {
        let r = rel(&[10.0, 20.0, 20.0, 40.0]);
        let f = FittedStandardization::fit(&r, 0, Standardization::Rank).unwrap();
        let r10 = f.apply(10.0);
        let r20 = f.apply(20.0);
        let r40 = f.apply(40.0);
        assert!(r10 < r20 && r20 < r40);
        // Ties share the average of ranks 1 and 2 (0-indexed 1..3): (1+3)/2/4.
        assert!(close(r20, 0.5));
        assert!(f.invert(r20).is_none());
        // Rank destroys interval semantics: gap 10→20 equals gap 20→40.
        assert!(close(r20 - r10, r40 - r20));
    }

    #[test]
    fn standardize_columns_transforms_only_listed_attrs() {
        let mut b = RelationBuilder::new(Schema::interval_attrs(2));
        b.push_row(&[1.0, 100.0]).unwrap();
        b.push_row(&[3.0, 300.0]).unwrap();
        let r = b.finish();
        let out = standardize_columns(&r, &[(1, Standardization::MinMax)]).unwrap();
        assert_eq!(out.column(0), &[1.0, 3.0]);
        assert_eq!(out.column(1), &[0.0, 1.0]);
        assert!(standardize_columns(&r, &[(9, Standardization::MinMax)]).is_err());
    }
}
