//! Point-to-point distance metrics `δ_X` (Section 4.1 of the paper).
//!
//! The paper assumes each attribute set `X` comes with a meaningful metric
//! `δ_X` such as the Euclidean or Manhattan distance; nominal attributes use
//! the discrete 0/1 metric (Section 5.1), under which distance-based rules
//! collapse to classical association rules (Theorems 5.1 and 5.2).

/// A distance metric over value vectors of equal dimensionality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Metric {
    /// `sqrt(Σ (a_i - b_i)^2)` — the default for interval data.
    #[default]
    Euclidean,
    /// `Σ |a_i - b_i|` — city-block distance.
    Manhattan,
    /// `max_i |a_i - b_i|` — L∞ distance.
    Chebyshev,
    /// `0` if the vectors are identical, `1` otherwise — the metric under
    /// which DARs specialize to classical association rules (Section 5.1).
    Discrete,
}

impl Metric {
    /// Distance between two equal-length vectors.
    ///
    /// # Panics
    /// Panics in debug builds if the lengths differ.
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "metric operands must have equal dims");
        match self {
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| {
                    let d = x - y;
                    d * d
                })
                .sum::<f64>()
                .sqrt(),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Chebyshev => a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max),
            Metric::Discrete => {
                if a.iter().zip(b).all(|(x, y)| x == y) {
                    0.0
                } else {
                    1.0
                }
            }
        }
    }

    /// Squared distance; avoids the square root for Euclidean comparisons.
    pub fn distance_sq(self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| {
                    let d = x - y;
                    d * d
                })
                .sum::<f64>(),
            _ => {
                let d = self.distance(a, b);
                d * d
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [0.0, 3.0, -1.0];
    const B: [f64; 3] = [4.0, 0.0, -1.0];

    #[test]
    fn euclidean() {
        assert!((Metric::Euclidean.distance(&A, &B) - 5.0).abs() < 1e-12);
        assert!((Metric::Euclidean.distance_sq(&A, &B) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan() {
        assert!((Metric::Manhattan.distance(&A, &B) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev() {
        assert!((Metric::Chebyshev.distance(&A, &B) - 4.0).abs() < 1e-12);
        assert_eq!(Metric::Chebyshev.distance(&[], &[]), 0.0);
    }

    #[test]
    fn discrete() {
        assert_eq!(Metric::Discrete.distance(&A, &A), 0.0);
        assert_eq!(Metric::Discrete.distance(&A, &B), 1.0);
        // Discrete metric looks at the whole vector, not per-component.
        assert_eq!(Metric::Discrete.distance(&[1.0, 2.0], &[1.0, 3.0]), 1.0);
    }

    #[test]
    fn identity_of_indiscernibles() {
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev, Metric::Discrete] {
            assert_eq!(m.distance(&A, &A), 0.0, "{m:?}");
        }
    }

    #[test]
    fn symmetry() {
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev, Metric::Discrete] {
            assert_eq!(m.distance(&A, &B), m.distance(&B, &A), "{m:?}");
        }
    }
}
