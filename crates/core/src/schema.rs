//! Schemas, attribute kinds, and attribute partitionings.
//!
//! The paper's algorithms operate on "a single partitioning of the attributes
//! into disjoint sets `X_i` over which there is a meaningful distance metric"
//! (Section 4.3). [`Partitioning`] captures exactly that: each set carries the
//! attribute ids it covers and the [`Metric`] used to compare projections onto
//! it. Most often each set is a single attribute; multi-attribute sets (e.g.
//! latitude/longitude) are supported.

use crate::distance::Metric;
use crate::error::CoreError;

/// Index of an attribute within a [`Schema`].
pub type AttrId = usize;

/// Index of an attribute set within a [`Partitioning`].
pub type SetId = usize;

/// The measurement scale of an attribute, following Jain & Dubes' taxonomy
/// cited by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeKind {
    /// Ordered data where the separation between values has meaning
    /// (salaries, ages, sensor readings). The subject of the paper.
    Interval,
    /// Ordered data where only the relative order matters (rankings).
    Ordinal,
    /// Unordered names; values are category codes compared with the
    /// discrete 0/1 metric.
    Nominal,
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Human-readable name used when describing clusters and rules.
    pub name: String,
    /// Measurement scale.
    pub kind: AttributeKind,
}

impl Attribute {
    /// Convenience constructor for an interval-scaled attribute.
    pub fn interval(name: impl Into<String>) -> Self {
        Attribute { name: name.into(), kind: AttributeKind::Interval }
    }

    /// Convenience constructor for an ordinal attribute.
    pub fn ordinal(name: impl Into<String>) -> Self {
        Attribute { name: name.into(), kind: AttributeKind::Ordinal }
    }

    /// Convenience constructor for a nominal attribute.
    pub fn nominal(name: impl Into<String>) -> Self {
        Attribute { name: name.into(), kind: AttributeKind::Nominal }
    }
}

/// An ordered list of attributes describing the columns of a [`Relation`].
///
/// [`Relation`]: crate::relation::Relation
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema from a list of attributes.
    pub fn new(attributes: Vec<Attribute>) -> Self {
        Schema { attributes }
    }

    /// A schema of `n` interval attributes named `a0..a{n-1}`; handy in tests
    /// and generators.
    pub fn interval_attrs(n: usize) -> Self {
        Schema::new((0..n).map(|i| Attribute::interval(format!("a{i}"))).collect())
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The attribute at `id`.
    pub fn attribute(&self, id: AttrId) -> Result<&Attribute, CoreError> {
        self.attributes.get(id).ok_or(CoreError::UnknownAttribute(id))
    }

    /// Iterate over `(id, attribute)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attributes.iter().enumerate()
    }

    /// Finds an attribute id by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attributes.iter().position(|a| a.name == name)
    }
}

/// One disjoint attribute set `X_i` of a [`Partitioning`], together with the
/// distance metric `δ_{X_i}` that is meaningful over it.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrSet {
    /// Sorted, deduplicated attribute ids.
    pub attrs: Vec<AttrId>,
    /// Distance metric over projections onto this set.
    pub metric: Metric,
}

impl AttrSet {
    /// Number of dimensions in this set (`|X|` in the paper).
    pub fn dims(&self) -> usize {
        self.attrs.len()
    }
}

/// A user-supplied partitioning of a schema's attributes into disjoint sets,
/// each with a meaningful distance metric (Section 4.3 of the paper).
///
/// Attributes not mentioned in any set are simply not mined.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    sets: Vec<AttrSet>,
}

impl Partitioning {
    /// Builds a partitioning, validating disjointness and attribute ranges.
    pub fn new(schema: &Schema, sets: Vec<AttrSet>) -> Result<Self, CoreError> {
        let mut seen = vec![false; schema.arity()];
        let mut normalized = Vec::with_capacity(sets.len());
        for mut set in sets {
            if set.attrs.is_empty() {
                return Err(CoreError::InvalidPartitioning("empty attribute set".into()));
            }
            set.attrs.sort_unstable();
            set.attrs.dedup();
            for &a in &set.attrs {
                if a >= schema.arity() {
                    return Err(CoreError::UnknownAttribute(a));
                }
                if seen[a] {
                    return Err(CoreError::InvalidPartitioning(format!(
                        "attribute {a} appears in more than one set"
                    )));
                }
                seen[a] = true;
            }
            normalized.push(set);
        }
        Ok(Partitioning { sets: normalized })
    }

    /// One singleton set per attribute — the most common configuration, and
    /// the one the paper uses for the WBCD experiments ("a separate tree is
    /// maintained for each attribute").
    ///
    /// Interval/ordinal attributes get the `metric` supplied; nominal
    /// attributes get [`Metric::Discrete`].
    pub fn per_attribute(schema: &Schema, metric: Metric) -> Self {
        let sets = schema
            .iter()
            .map(|(id, attr)| AttrSet {
                attrs: vec![id],
                metric: match attr.kind {
                    AttributeKind::Nominal => Metric::Discrete,
                    _ => metric,
                },
            })
            .collect();
        // Per-attribute singleton sets are disjoint by construction.
        Partitioning { sets }
    }

    /// Number of attribute sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// The set at index `id`.
    pub fn set(&self, id: SetId) -> &AttrSet {
        &self.sets[id]
    }

    /// All sets in order.
    pub fn sets(&self) -> &[AttrSet] {
        &self.sets
    }

    /// Total number of dimensions across all sets.
    pub fn total_dims(&self) -> usize {
        self.sets.iter().map(AttrSet::dims).sum()
    }

    /// The set containing attribute `attr`, if any.
    pub fn set_of_attr(&self, attr: AttrId) -> Option<SetId> {
        self.sets.iter().position(|s| s.attrs.contains(&attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema3() -> Schema {
        Schema::new(vec![
            Attribute::nominal("job"),
            Attribute::interval("age"),
            Attribute::interval("salary"),
        ])
    }

    #[test]
    fn schema_lookup() {
        let s = schema3();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_by_name("salary"), Some(2));
        assert_eq!(s.attr_by_name("nope"), None);
        assert_eq!(s.attribute(1).unwrap().kind, AttributeKind::Interval);
        assert_eq!(s.attribute(9), Err(CoreError::UnknownAttribute(9)));
    }

    #[test]
    fn per_attribute_partitioning_uses_discrete_for_nominal() {
        let s = schema3();
        let p = Partitioning::per_attribute(&s, Metric::Euclidean);
        assert_eq!(p.num_sets(), 3);
        assert_eq!(p.set(0).metric, Metric::Discrete);
        assert_eq!(p.set(1).metric, Metric::Euclidean);
        assert_eq!(p.total_dims(), 3);
        assert_eq!(p.set_of_attr(2), Some(2));
    }

    #[test]
    fn partitioning_rejects_overlap() {
        let s = schema3();
        let sets = vec![
            AttrSet { attrs: vec![0, 1], metric: Metric::Euclidean },
            AttrSet { attrs: vec![1, 2], metric: Metric::Euclidean },
        ];
        assert!(matches!(Partitioning::new(&s, sets), Err(CoreError::InvalidPartitioning(_))));
    }

    #[test]
    fn partitioning_rejects_unknown_attr_and_empty_set() {
        let s = schema3();
        let sets = vec![AttrSet { attrs: vec![5], metric: Metric::Euclidean }];
        assert_eq!(Partitioning::new(&s, sets).unwrap_err(), CoreError::UnknownAttribute(5));
        let sets = vec![AttrSet { attrs: vec![], metric: Metric::Euclidean }];
        assert!(matches!(Partitioning::new(&s, sets), Err(CoreError::InvalidPartitioning(_))));
    }

    #[test]
    fn partitioning_sorts_and_dedups() {
        let s = schema3();
        let sets = vec![AttrSet { attrs: vec![2, 0, 2], metric: Metric::Manhattan }];
        let p = Partitioning::new(&s, sets).unwrap();
        assert_eq!(p.set(0).attrs, vec![0, 2]);
        // Attribute 1 is not covered; that's allowed.
        assert_eq!(p.set_of_attr(1), None);
    }

    #[test]
    fn subset_partitionings_are_allowed() {
        let s = schema3();
        let sets = vec![AttrSet { attrs: vec![1], metric: Metric::Euclidean }];
        let p = Partitioning::new(&s, sets).unwrap();
        assert_eq!(p.num_sets(), 1);
    }
}
