//! Column statistics over relations — the small descriptive-statistics
//! toolkit the miner's threshold heuristics and the CLI build on.

use crate::error::CoreError;
use crate::relation::Relation;
use crate::schema::{AttrId, Partitioning, SetId};

/// Summary statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of values.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Number of distinct values.
    pub distinct: usize,
}

impl ColumnStats {
    /// Computes statistics over a column.
    pub fn of(values: &[f64]) -> Result<Self, CoreError> {
        if values.is_empty() {
            return Err(CoreError::EmptyCluster);
        }
        let count = values.len();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum / count as f64;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut distinct = 1;
        for w in sorted.windows(2) {
            if w[0] != w[1] {
                distinct += 1;
            }
        }
        Ok(ColumnStats { count, min, max, mean, std_dev: var.sqrt(), distinct })
    }

    /// Statistics of one attribute of a relation.
    pub fn of_column(relation: &Relation, attr: AttrId) -> Result<Self, CoreError> {
        Self::of(relation.column(attr))
    }

    /// The value range (`max − min`).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) of a column, by linear interpolation over
/// the sorted values.
pub fn quantile(values: &[f64], q: f64) -> Result<f64, CoreError> {
    if values.is_empty() {
        return Err(CoreError::EmptyCluster);
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Suggests per-set initial diameter thresholds for the Phase I trees:
/// `frac ×` the RMS spread of each set's columns (a scale-aware default for
/// the per-`X_i` threshold selection of Section 4.3.1). `frac` around
/// 0.02–0.1 works well; 0 reproduces the fully precise setting.
pub fn suggest_initial_thresholds(
    relation: &Relation,
    partitioning: &Partitioning,
    frac: f64,
) -> Result<Vec<f64>, CoreError> {
    suggest_initial_thresholds_pooled(relation, partitioning, frac, &dar_par::ThreadPool::serial())
}

/// [`suggest_initial_thresholds`] with the per-column statistics scans fanned
/// out across `pool`. Each column's statistics are computed independently
/// (no cross-column reduction), duplicate attribute references are scanned
/// once, and the per-set variance sum runs serially in declaration order —
/// so the result is bit-identical to the serial path at any worker count.
pub fn suggest_initial_thresholds_pooled(
    relation: &Relation,
    partitioning: &Partitioning,
    frac: f64,
    pool: &dar_par::ThreadPool,
) -> Result<Vec<f64>, CoreError> {
    let mut attrs: Vec<AttrId> =
        partitioning.sets().iter().flat_map(|s| s.attrs.iter().copied()).collect();
    attrs.sort_unstable();
    attrs.dedup();
    let per_attr: Vec<Result<f64, CoreError>> =
        pool.map_indexed("threshold_sample", attrs.len(), 1, |i| {
            ColumnStats::of_column(relation, attrs[i]).map(|s| s.std_dev * s.std_dev)
        });
    let width = attrs.iter().copied().max().map_or(0, |m| m + 1);
    let mut variance = vec![0.0f64; width];
    for (attr, var) in attrs.iter().zip(per_attr) {
        variance[*attr] = var?;
    }
    (0..partitioning.num_sets())
        .map(|set: SetId| {
            let spread_sq: f64 = partitioning.set(set).attrs.iter().map(|&a| variance[a]).sum();
            Ok(frac * spread_sq.sqrt())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;
    use crate::relation::RelationBuilder;
    use crate::schema::Schema;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn basic_stats() {
        let s = ColumnStats::of(&[1.0, 2.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(close(s.mean, 2.0));
        assert!(close(s.std_dev, (0.5f64).sqrt()));
        assert_eq!(s.distinct, 3);
        assert!(close(s.range(), 2.0));
        assert!(ColumnStats::of(&[]).is_err());
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert!(close(quantile(&v, 0.0).unwrap(), 10.0));
        assert!(close(quantile(&v, 1.0).unwrap(), 40.0));
        assert!(close(quantile(&v, 0.5).unwrap(), 25.0));
        // Out-of-range q clamps.
        assert!(close(quantile(&v, 2.0).unwrap(), 40.0));
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn threshold_suggestion_is_scale_aware() {
        let mut b = RelationBuilder::new(Schema::interval_attrs(2));
        for i in 0..100 {
            // attr0 spans ~1 unit, attr1 spans ~1000 units.
            b.push_row(&[(i % 10) as f64 * 0.1, (i % 10) as f64 * 100.0]).unwrap();
        }
        let r = b.finish();
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let t = suggest_initial_thresholds(&r, &p, 0.1).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t[1] / t[0] > 900.0, "thresholds must track scale: {t:?}");
        let zero = suggest_initial_thresholds(&r, &p, 0.0).unwrap();
        assert!(zero.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pooled_threshold_suggestion_is_bit_identical_at_any_worker_count() {
        let mut b = RelationBuilder::new(Schema::interval_attrs(5));
        for i in 0..500 {
            b.push_row(&[
                (i % 13) as f64 * 0.37,
                (i % 7) as f64 * 41.5,
                ((i * 31) % 101) as f64,
                (i % 3) as f64 * 0.001,
                (i % 29) as f64 * 1234.5,
            ])
            .unwrap();
        }
        let r = b.finish();
        let p = Partitioning::per_attribute(r.schema(), Metric::Euclidean);
        let serial = suggest_initial_thresholds(&r, &p, 0.05).unwrap();
        for workers in [1, 2, 4, 8] {
            let pool = dar_par::ThreadPool::new(workers);
            let pooled = suggest_initial_thresholds_pooled(&r, &p, 0.05, &pool).unwrap();
            assert_eq!(
                pooled.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "workers={workers}"
            );
        }
    }
}
