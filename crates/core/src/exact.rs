//! Exact (tuple-level) cluster statistics.
//!
//! These are the *literal* Definitions 4.1 and Equations 4–6 of the paper,
//! evaluated over materialized point sets with an arbitrary [`Metric`]. They
//! are O(N²)/O(N₁N₂) and exist for three reasons:
//!
//! 1. to state and test Theorems 5.1 and 5.2, which are phrased over exact
//!    averages under the discrete metric;
//! 2. to validate the moment-based (RMS) forms in [`crate::cf`] against
//!    ground truth in tests;
//! 3. to let small examples (Figures 1, 2, 4 of the paper) be reproduced with
//!    the paper's own arithmetic.

use crate::distance::Metric;
use crate::error::CoreError;

/// A set of points, each a row of `dims` values. Thin wrapper so the exact
/// statistics read like the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    points: Vec<Vec<f64>>,
    dims: usize,
}

impl PointSet {
    /// Builds a point set; all points must share a dimensionality.
    pub fn new(points: Vec<Vec<f64>>) -> Result<Self, CoreError> {
        let dims = points.first().map_or(0, Vec::len);
        if let Some(bad) = points.iter().find(|p| p.len() != dims) {
            return Err(CoreError::LayoutMismatch(format!(
                "point with {} dims in a {}-dim set",
                bad.len(),
                dims
            )));
        }
        Ok(PointSet { points, dims })
    }

    /// Builds a 1-D point set from scalars.
    pub fn from_scalars(values: &[f64]) -> Self {
        PointSet { points: values.iter().map(|&v| vec![v]).collect(), dims: 1 }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Exact diameter (Dfn 4.1): the average pairwise distance
    /// `Σ_i Σ_j δ(t_i, t_j) / (N(N−1))` under `metric`.
    ///
    /// Singletons and empty sets have diameter 0 by convention.
    pub fn diameter(&self, metric: Metric) -> f64 {
        let n = self.points.len();
        if n < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                acc += metric.distance(&self.points[i], &self.points[j]);
            }
        }
        // The double sum in Dfn 4.1 counts each unordered pair twice and the
        // denominator is N(N−1), so the mean over unordered pairs with
        // denominator N(N−1)/2 is identical.
        2.0 * acc / (n as f64 * (n as f64 - 1.0))
    }

    /// Exact centroid (Eq. 4).
    pub fn centroid(&self) -> Result<Vec<f64>, CoreError> {
        if self.points.is_empty() {
            return Err(CoreError::EmptyCluster);
        }
        let mut c = vec![0.0; self.dims];
        for p in &self.points {
            for (ci, &v) in c.iter_mut().zip(p) {
                *ci += v;
            }
        }
        let inv = 1.0 / self.points.len() as f64;
        for ci in &mut c {
            *ci *= inv;
        }
        Ok(c)
    }

    /// Exact D1 (Eq. 5): Manhattan distance between centroids.
    pub fn d1(&self, other: &PointSet) -> Result<f64, CoreError> {
        let a = self.centroid()?;
        let b = other.centroid()?;
        Ok(Metric::Manhattan.distance(&a, &b))
    }

    /// Exact D2 (Eq. 6): the average inter-cluster distance
    /// `Σ_i Σ_j δ(t_i¹, t_j²) / (N₁N₂)` under `metric`.
    pub fn d2(&self, other: &PointSet, metric: Metric) -> Result<f64, CoreError> {
        if self.points.is_empty() || other.points.is_empty() {
            return Err(CoreError::EmptyCluster);
        }
        let mut acc = 0.0;
        for a in &self.points {
            for b in &other.points {
                acc += metric.distance(a, b);
            }
        }
        Ok(acc / (self.points.len() * other.points.len()) as f64)
    }

    /// RMS D2 — the moment-computable form used by the summaries; provided
    /// here for direct comparison in tests.
    pub fn d2_rms(&self, other: &PointSet) -> Result<f64, CoreError> {
        if self.points.is_empty() || other.points.is_empty() {
            return Err(CoreError::EmptyCluster);
        }
        let mut acc = 0.0;
        for a in &self.points {
            for b in &other.points {
                acc += Metric::Euclidean.distance_sq(a, b);
            }
        }
        Ok((acc / (self.points.len() * other.points.len()) as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cf::Cf;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn rejects_ragged_points() {
        assert!(PointSet::new(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn diameter_of_pair_is_distance() {
        let s = PointSet::from_scalars(&[0.0, 6.0]);
        assert!(close(s.diameter(Metric::Euclidean), 6.0));
        assert_eq!(PointSet::from_scalars(&[3.0]).diameter(Metric::Euclidean), 0.0);
        assert_eq!(PointSet::from_scalars(&[]).diameter(Metric::Euclidean), 0.0);
    }

    #[test]
    fn diameter_discrete_counts_distinct_pairs() {
        // {a,a,b}: 3 unordered pairs, 2 of them distinct → 2·2/(3·2) = 2/3.
        let s = PointSet::from_scalars(&[1.0, 1.0, 2.0]);
        assert!(close(s.diameter(Metric::Discrete), 2.0 / 3.0));
        // All identical → 0 (Theorem 5.1 forward direction).
        let t = PointSet::from_scalars(&[5.0, 5.0, 5.0]);
        assert_eq!(t.diameter(Metric::Discrete), 0.0);
    }

    #[test]
    fn centroid_and_d1() {
        let a = PointSet::new(vec![vec![0.0, 0.0], vec![2.0, 2.0]]).unwrap();
        let b = PointSet::new(vec![vec![4.0, 5.0]]).unwrap();
        assert_eq!(a.centroid().unwrap(), vec![1.0, 1.0]);
        assert!(close(a.d1(&b).unwrap(), 3.0 + 4.0));
        assert!(PointSet::new(vec![]).unwrap().centroid().is_err());
    }

    #[test]
    fn exact_d2_euclidean_vs_manhattan() {
        let a = PointSet::from_scalars(&[0.0, 2.0]);
        let b = PointSet::from_scalars(&[10.0]);
        // Distances 10 and 8 → mean 9 under both metrics in 1-D.
        assert!(close(a.d2(&b, Metric::Euclidean).unwrap(), 9.0));
        assert!(close(a.d2(&b, Metric::Manhattan).unwrap(), 9.0));
    }

    #[test]
    fn rms_d2_matches_cf_d2() {
        let pa = vec![vec![0.0, 1.0], vec![2.0, 3.0], vec![1.0, 1.0]];
        let pb = vec![vec![5.0, 5.0], vec![7.0, 2.0]];
        let sa = PointSet::new(pa.clone()).unwrap();
        let sb = PointSet::new(pb.clone()).unwrap();
        let mut ca = Cf::empty(2);
        for p in &pa {
            ca.add_point(p);
        }
        let mut cb = Cf::empty(2);
        for p in &pb {
            cb.add_point(p);
        }
        assert!(close(sa.d2_rms(&sb).unwrap(), ca.d2(&cb).unwrap()));
    }

    #[test]
    fn rms_diameter_matches_cf_diameter() {
        let pts = vec![vec![0.0], vec![1.0], vec![5.0], vec![2.5]];
        let s = PointSet::new(pts.clone()).unwrap();
        let mut cf = Cf::empty(1);
        for p in &pts {
            cf.add_point(p);
        }
        // Exact average pairwise *squared* distance equals cf.diameter_sq().
        let n = pts.len();
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                acc += (pts[i][0] - pts[j][0]).powi(2);
            }
        }
        let exact_sq = acc / (n as f64 * (n as f64 - 1.0));
        assert!(close(exact_sq, cf.diameter_sq()));
        // RMS diameter ≥ arithmetic diameter (Jensen).
        assert!(cf.diameter() >= s.diameter(Metric::Euclidean) - 1e-12);
    }
}
